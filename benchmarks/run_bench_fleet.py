#!/usr/bin/env python3
"""Fleet-runtime benchmark: event-driven serving at datacenter scale.

Exercises :mod:`repro.fleet` well past the single-SoC serving runtime
and writes ``BENCH_fleet.json`` at the repository root:

* a fleet-size scaling curve (4 -> 256 SoCs) over one overloaded trace,
* the headline capacity run — 100k jobs on a 256-SoC fleet — with its
  wall-clock time *asserted* under 60 seconds,
* a shed-rate-vs-SLO-target sweep under sustained overload,
* autoscaling on a diurnal trace: static energy with and without
  power gating.

Two correctness properties are asserted in-harness, not just reported:
every balancer's completed payloads are bit-identical to a naive serial
execution of the same trace, and job conservation
(submitted == completed + rejected + shed) holds on every run.

Run with:  python benchmarks/run_bench_fleet.py [--output BENCH_fleet.json]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from bench_record import new_record, traced, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 2004
HEADLINE_JOBS = 100_000
HEADLINE_SOCS = 256
HEADLINE_BUDGET_SECONDS = 60.0
SCALING_FLEETS = (4, 16, 64, 256)
SLO_TARGETS = (None, 500_000, 200_000, 100_000, 50_000)


def _run(jobs, library, **kwargs):
    from repro.fleet import FleetSettings, simulate_fleet

    started = time.perf_counter()
    report = simulate_fleet(jobs, FleetSettings(**kwargs), library=library)
    elapsed = time.perf_counter() - started
    assert report.conserved, "job conservation violated"
    return report, elapsed


def _row(report, elapsed):
    summary = report.summary()
    summary["wall_seconds"] = round(elapsed, 3)
    summary["events"] = report.events_processed
    return summary


def scaling_curve(library) -> list:
    from repro.fleet import synthetic_trace

    jobs = synthetic_trace("flash_crowd", 20_000, seed=SEED, mean_gap=25)
    rows = []
    for soc_count in SCALING_FLEETS:
        report, elapsed = _run(jobs, library, soc_count=soc_count,
                               balancer="jsq", steal=True, autoscale=True,
                               idle_timeout=50_000, queue_capacity=256)
        rows.append(_row(report, elapsed))
    # Under overload small fleets bounce jobs off full queues; growing
    # the fleet must convert rejections into goodput, monotonically.
    for before, after in zip(rows, rows[1:]):
        assert after["completed"] >= before["completed"], \
            "scaling curve lost its slope — more SoCs stopped helping"
    assert rows[-1]["completed"] == len(jobs)
    assert rows[-1]["throughput_jobs_per_mcycle"] > \
        5 * rows[0]["throughput_jobs_per_mcycle"]
    return rows


def headline_capacity_run(library) -> dict:
    from repro.fleet import synthetic_trace

    generation_started = time.perf_counter()
    jobs = synthetic_trace("flash_crowd", HEADLINE_JOBS, seed=SEED,
                           mean_gap=500)
    generation = time.perf_counter() - generation_started
    report, elapsed = _run(jobs, library, soc_count=HEADLINE_SOCS,
                           balancer="jsq", steal=True, autoscale=True,
                           idle_timeout=100_000, queue_capacity=128)
    assert elapsed < HEADLINE_BUDGET_SECONDS, (
        f"{HEADLINE_JOBS} jobs x {HEADLINE_SOCS} SoCs took {elapsed:.1f}s "
        f"(budget {HEADLINE_BUDGET_SECONDS:.0f}s)")
    assert report.completed == HEADLINE_JOBS
    row = _row(report, elapsed)
    row["trace_generation_seconds"] = round(generation, 3)
    row["wall_budget_seconds"] = HEADLINE_BUDGET_SECONDS
    return row


def bit_identity_check(library) -> dict:
    from repro.fleet import BALANCERS, execute_fleet_serial, synthetic_trace

    jobs = synthetic_trace("diurnal", 3_000, seed=SEED, mean_gap=400)
    serial = {result.job_id: result.digest
              for result in execute_fleet_serial(jobs)}
    checked = {}
    for balancer in sorted(BALANCERS):
        report, elapsed = _run(jobs, library, soc_count=16,
                               balancer=balancer, steal=True,
                               policy="affinity")
        for job_id, digest in report.digests.items():
            assert digest == serial[job_id], \
                f"{balancer}: job {job_id} diverged from serial execution"
        row = _row(report, elapsed)
        row["bit_identical_to_serial"] = True
        checked[balancer] = row
    return {"job_count": len(jobs), "balancers": checked}


def slo_sweep(library) -> list:
    from repro.fleet import synthetic_trace

    jobs = synthetic_trace("flash_crowd", 10_000, seed=SEED, mean_gap=40)
    rows = []
    for target in SLO_TARGETS:
        report, elapsed = _run(jobs, library, soc_count=16, balancer="jsq",
                               steal=True, slo_target_p99=target,
                               queue_capacity=256)
        row = _row(report, elapsed)
        row["slo_target_p99"] = target
        row["shed_rate"] = round(report.shed / report.submitted, 4)
        rows.append(row)
    relaxed, tightest = rows[0], rows[-1]
    assert tightest["shed"] > relaxed["shed"], \
        "tightening the SLO target did not shed more load"
    assert tightest["latency_p99"] < relaxed["latency_p99"], \
        "shedding did not improve completed-job p99"
    return rows


def autoscale_savings(library) -> dict:
    from repro.fleet import synthetic_trace

    jobs = synthetic_trace("diurnal", 8_000, seed=SEED, mean_gap=2_000)
    gated, gated_wall = _run(jobs, library, soc_count=32, balancer="jsq",
                             autoscale=True, idle_timeout=50_000,
                             wake_latency=5_000)
    always_on, on_wall = _run(jobs, library, soc_count=32, balancer="jsq")
    assert gated.digests == always_on.digests, \
        "power gating changed job payloads"
    assert gated.autoscale["saved"] > 0, "diurnal troughs saved no energy"
    return {
        "job_count": len(jobs),
        "gated": {**_row(gated, gated_wall), **gated.autoscale},
        "always_on": {**_row(always_on, on_wall), **always_on.autoscale},
        "static_energy_saved": round(gated.autoscale["saved"], 1),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_fleet.json"))
    arguments = parser.parse_args()

    from repro.serve import KernelLibrary

    library = KernelLibrary()
    sections = {}
    trace_digests = {}
    for name, section in (
            ("scaling_curve", lambda: scaling_curve(library)),
            ("headline_capacity_run",
             lambda: headline_capacity_run(library)),
            ("bit_identity", lambda: bit_identity_check(library)),
            ("slo_sweep", lambda: slo_sweep(library)),
            ("autoscale", lambda: autoscale_savings(library))):
        sections[name], trace_digests[name] = traced(section)
    scaling = sections["scaling_curve"]
    headline = sections["headline_capacity_run"]
    sweep = sections["slo_sweep"]
    autoscale = sections["autoscale"]

    record = new_record("fleet", seed=SEED, trace_digests=trace_digests,
                        **sections)
    output = write_record(arguments.output, record, sort_keys=True)

    print("\nfleet-size scaling (20k jobs, overloaded):")
    for row in scaling:
        print(f"  {row['socs']:>4} SoCs  completed={row['completed']:>6,}"
              f"  rejected={row['rejected']:>6,}"
              f"  makespan={row['makespan_cycles']:>9,}"
              f"  wall={row['wall_seconds']:>6.2f}s")
    print(f"\nheadline: {HEADLINE_JOBS:,} jobs x {HEADLINE_SOCS} SoCs in "
          f"{headline['wall_seconds']:.2f}s "
          f"({headline['events']:,} events, budget "
          f"{HEADLINE_BUDGET_SECONDS:.0f}s)")
    print("\nshed rate vs SLO target (10k jobs, 16 SoCs, overloaded):")
    for row in sweep:
        target = row["slo_target_p99"] or "none"
        print(f"  target={target!s:>8}  shed={row['shed']:>5} "
              f"({row['shed_rate']:>6.1%})  p99={row['latency_p99']:>9,.0f}")
    print(f"\nautoscale on the diurnal trace: "
          f"{autoscale['gated']['gatings']} gatings, "
          f"{autoscale['static_energy_saved']:,} static energy saved")


if __name__ == "__main__":
    main()
