"""Fig. 9 — Li's algorithm in direct form: larger LUTs, no input adders.

Checks the 16x ROM growth against Fig. 8 and the absence of any input
adders/subtracters, and benchmarks accuracy.
"""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.reference import dct_1d
from repro.dct.scc_dct import FIG8_ROM_WORDS, FIG9_ROM_WORDS, SCCDirectDCT


@pytest.mark.benchmark(group="fig9")
def test_fig9_scc_direct_dct(benchmark, input_vectors):
    transform = SCCDirectDCT()

    def run():
        return np.array([transform.forward(vector) for vector in input_vectors])

    outputs = benchmark(run)

    reference = np.array([dct_1d(vector) for vector in input_vectors])
    worst = float(np.max(np.abs(outputs - reference)))
    bound = 8 * 2048 * transform.quantisation.output_scale + 1.0
    print(f"\nFig. 9 SCC direct DCT: worst-case error {worst:.3f} (bound {bound:.1f})")
    assert worst <= bound

    netlist = transform.build_netlist()
    usage = netlist.cluster_usage()
    # "The implementation requires 256 words ROM which is 16 times more than
    # the previous implementation but does not require adder/subtracters."
    assert FIG9_ROM_WORDS == 16 * FIG8_ROM_WORDS
    assert usage.adders == 0 and usage.subtracters == 0
    assert all(node.depth_words == FIG9_ROM_WORDS
               for node in netlist.nodes_of_kind(ClusterKind.MEMORY))
    assert usage.as_table_row() == PAPER_TABLE1["scc_direct"]
    # It is also the smallest Table 1 mapping in cluster count.
    assert usage.total_clusters == min(row["total_clusters"]
                                       for row in PAPER_TABLE1.values())
