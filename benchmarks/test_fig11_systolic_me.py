"""Fig. 11 — the 4x16-PE 2-D systolic full-search motion estimation array.

Checks the claims attached to the figure: 64 PEs organised as 4 modules of
16, the first SAD ready after 16 clock cycles, four candidates matched per
round, motion vectors identical to the exhaustive software search, and the
memory-bandwidth saving of the broadcast / register-mux network.  The
benchmark times a full macroblock search on the cycle-based array model.
"""

import pytest

from repro.flow import Flow
from repro.me.full_search import full_search
from repro.me.systolic import SystolicArray


@pytest.mark.benchmark(group="fig11")
def test_fig11_systolic_full_search(benchmark, me_frames):
    reference_frame, current_frame, true_vector = me_frames
    top, left = 32, 32
    search_range = 4        # 64 candidates keeps the cycle-accurate model quick

    def run():
        array = SystolicArray()
        return array.search(current_frame, reference_frame, top, left,
                            block_size=16, search_range=search_range)

    result = benchmark.pedantic(run, rounds=3, iterations=1)

    software = full_search(current_frame, reference_frame, top, left, 16, search_range)
    print(f"\nFig. 11 systolic ME: mv {result.motion_vector} "
          f"(software {software.motion_vector}, ground truth {true_vector}), "
          f"first SAD after {result.first_sad_cycle} cycles, "
          f"{result.cycles} cycles total, "
          f"bandwidth reduction {result.memory_bandwidth_reduction:.1%}")

    # Identical results to exhaustive software search.
    assert result.motion_vector == software.motion_vector
    assert result.best.sad == software.best.sad
    assert result.motion_vector == true_vector

    # "The first round of SAD calculations would take 16 clock cycles."
    assert result.first_sad_cycle == 16
    # Four candidate blocks are matched per round on the 4 PE modules.
    assert result.rounds == -(-result.candidates_evaluated // 4)
    assert result.cycles == result.rounds * 16
    # The broadcast search-area feed cuts reference-memory traffic sharply.
    assert result.memory_bandwidth_reduction > 0.9

    # The 64-PE engine (plus comparator) maps onto the ME array.
    mapped = Flow.estimate().compile(SystolicArray())
    assert mapped.usage.register_mux == 64
    assert mapped.usage.abs_diff == 64
    assert mapped.usage.add_acc == 64
    assert mapped.usage.comparators == 1
