"""Sec. 5 — dynamic reconfiguration between implementations at run time.

"The arrays have the ability to be dynamically reconfigured to support
different implementations of the same algorithms for different run-time
constraints, such as low-battery conditions and noisy channels in mobile
devices."  This benchmark encodes a short synthetic sequence while
switching the DCT implementation and the search algorithm mid-stream
through the SoC, measuring the reconfiguration traffic and checking that
quality is maintained while the energy/work profile changes.
"""

import pytest

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.dct import CordicDCT1, SCCDirectDCT
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence


@pytest.mark.benchmark(group="reconfiguration")
def test_dynamic_reconfiguration_under_runtime_constraints(benchmark):
    sequence = panning_sequence(height=48, width=48, pan=(1, 1), seed=33)
    frames = [sequence.frame(i) for i in range(4)]

    def run():
        soc = ReconfigurableSoC()
        soc.attach_array(build_da_array())
        soc.attach_array(build_me_array())

        # Normal operating point: high-precision CORDIC DCT + full search.
        high_quality = CordicDCT1()
        soc.compile_and_load(high_quality)
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3,
                                                    dct_transform=high_quality,
                                                    search_name="full"))
        statistics = [encoder.encode_frame(frames[0], 0),
                      encoder.encode_frame(frames[1], 1)]

        # Low-battery condition: swap in the smallest DCT mapping and a
        # reduced search — one SoC reconfiguration of the DA array.
        low_power = SCCDirectDCT()
        soc.compile_and_load(low_power)
        encoder.reconfigure(dct_transform=low_power, search_name="three_step")
        statistics.append(encoder.encode_frame(frames[2], 2))
        statistics.append(encoder.encode_frame(frames[3], 3))
        return soc, statistics

    soc, statistics = benchmark.pedantic(run, rounds=3, iterations=1)

    print(f"\nDynamic reconfiguration: {soc.reconfiguration_count('da_array')} DA-array "
          f"loads, {soc.total_reconfiguration_bits()} configuration bits, "
          f"{soc.total_reconfiguration_cycles()} bus cycles; "
          f"PSNR per frame {[round(s.psnr_db, 1) for s in statistics]}")

    # Two configurations were streamed into the DA array.
    assert soc.reconfiguration_count("da_array") == 2
    assert soc.total_reconfiguration_cycles() > 0

    # Quality stays usable across the switch...
    assert all(s.psnr_db > 28.0 for s in statistics)
    # ...while the low-power operating point does measurably less SAD work.
    assert statistics[3].sad_operations < statistics[1].sad_operations
    # The low-power DCT mapping is smaller than the high-quality one, which
    # is exactly why it is the right target under battery pressure.
    assert (SCCDirectDCT().build_netlist().cluster_usage().total_clusters
            < CordicDCT1().build_netlist().cluster_usage().total_clusters)
