"""Fig. 4 — plain Distributed-Arithmetic DCT datapath.

Checks the structure shown in the figure (eight 12-bit shift registers,
eight 256-word / 8-bit ROMs, eight 16-bit shift-accumulators, broadcast
address bus) and benchmarks the bit-serial transform against the floating
point reference on a batch of vectors.
"""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.da_dct import FIG4_ROM_WORDS, DistributedArithmeticDCT
from repro.dct.reference import dct_1d


@pytest.mark.benchmark(group="fig4")
def test_fig4_plain_da_dct(benchmark, input_vectors):
    transform = DistributedArithmeticDCT()

    def run():
        return np.array([transform.forward(vector) for vector in input_vectors])

    outputs = benchmark(run)

    reference = np.array([dct_1d(vector) for vector in input_vectors])
    worst = float(np.max(np.abs(outputs - reference)))
    bound = 8 * 2048 * transform.quantisation.output_scale + 1.0
    print(f"\nFig. 4 plain DA DCT: worst-case error {worst:.3f} "
          f"(quantisation bound {bound:.1f})")
    assert worst <= bound

    # Structure of the datapath as drawn in the figure.
    netlist = transform.build_netlist()
    usage = netlist.cluster_usage()
    assert usage.shift_registers == 8
    assert usage.accumulators == 8
    assert usage.memory_clusters == 8
    assert all(node.depth_words == FIG4_ROM_WORDS
               for node in netlist.nodes_of_kind(ClusterKind.MEMORY))
    assert transform.cycles_per_transform == 12
