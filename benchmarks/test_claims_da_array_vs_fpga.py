"""Sec. 1 claim ([2]) — DA array vs generic FPGA: -38% power, -14% area, -54% fmax.

Maps the Distributed-Arithmetic DCT onto the DA array and compares it with
the generic-FPGA technology mapping of the same netlist.  Unlike the ME
array, the DA array trades clock speed for its bit-serial datapath, so the
maximum-frequency change is negative.
"""

import pytest

from repro.arrays import build_da_array
from repro.dct import SCCDirectDCT
from repro.flow import compile as flow_compile
from repro.power import compare_to_fpga

PAPER = {"power_reduction": 0.38, "area_reduction": 0.14, "max_frequency_change": -0.54}


@pytest.mark.benchmark(group="claims")
def test_da_array_versus_generic_fpga(benchmark):
    def run():
        mapped = flow_compile(SCCDirectDCT(), cache=None)
        return compare_to_fpga(mapped.netlist, build_da_array(), activity=0.25,
                               routing=mapped.routing)

    comparison = benchmark.pedantic(run, rounds=3, iterations=1)

    print(f"\nDA array vs FPGA: measured {comparison.summary()}; "
          f"paper: -38% power, -14% area, -54% max frequency")

    assert comparison.power_reduction == pytest.approx(PAPER["power_reduction"], abs=0.05)
    assert comparison.area_reduction == pytest.approx(PAPER["area_reduction"], abs=0.05)
    assert comparison.max_frequency_change == pytest.approx(
        PAPER["max_frequency_change"], abs=0.05)
    # Shape: power and area favour the array, clock frequency favours the FPGA.
    assert comparison.power_reduction > 0
    assert comparison.area_reduction > 0
    assert comparison.max_frequency_change < 0
