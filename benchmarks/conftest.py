"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one of
the claims the paper carries over from its companion papers) and checks
the reproduced *shape* — which implementation wins, by roughly what
factor — while pytest-benchmark records the wall-clock cost of the
underlying computation.  Printed tables appear with ``pytest benchmarks/
--benchmark-only -s``; EXPERIMENTS.md records the paper-vs-measured
comparison produced by these runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.video import panning_sequence


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic generator shared by the whole benchmark session."""
    return np.random.default_rng(2004)


@pytest.fixture(scope="session")
def pixel_block(rng) -> np.ndarray:
    """One 8x8 luminance block with natural-image-like smoothness."""
    base = rng.integers(64, 192, (8, 8)).astype(float)
    smooth = (base + np.roll(base, 1, axis=0) + np.roll(base, 1, axis=1)) / 3.0
    return np.clip(np.rint(smooth), 0, 255).astype(np.int64)


@pytest.fixture(scope="session")
def input_vectors(rng) -> np.ndarray:
    """A batch of 12-bit input vectors for the 1-D DCT benchmarks."""
    return rng.integers(-2048, 2048, (16, 8))


@pytest.fixture(scope="session")
def me_frames():
    """A (reference, current) QCIF-quarter frame pair with known pan."""
    sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=42)
    return sequence.frame(0), sequence.frame(1), sequence.ground_truth_background_vector()
