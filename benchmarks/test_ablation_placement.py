"""Ablation — greedy vs simulated-annealing placement.

DESIGN.md calls out the placer as a design choice worth ablating: the
annealing refinement should reduce width-weighted wirelength (and hence
routed hops / interconnect energy) relative to the constructive greedy
placement, at a wall-clock cost this benchmark makes visible.  In the
unified flow the placer is a pass choice — the two benchmarks run the
identical pipeline with only the placement pass swapped.
"""

import pytest

from repro.core.mapper import wirelength
from repro.dct import CordicDCT1
from repro.flow import AnnealingPlacePass, Flow


@pytest.mark.benchmark(group="ablation-placement")
def test_greedy_placement_baseline(benchmark):
    transform = CordicDCT1()
    flow = Flow.default(placer="greedy")

    def run():
        result = flow.compile(transform)
        return (wirelength(result.netlist, result.placement),
                result.routing.total_hops)

    greedy_wirelength, greedy_hops = benchmark(run)
    print(f"\nGreedy placement: wirelength {greedy_wirelength:.0f}, hops {greedy_hops}")
    assert greedy_wirelength > 0


@pytest.mark.benchmark(group="ablation-placement")
def test_annealing_placement_improves_wirelength(benchmark):
    transform = CordicDCT1()

    greedy = Flow.default(placer="greedy").compile(transform, cache=None)
    greedy_cost = wirelength(greedy.netlist, greedy.placement)

    annealing_flow = Flow.default(
        placer=AnnealingPlacePass(seed=7, moves_per_temperature=48))

    def run():
        result = annealing_flow.compile(transform, cache=None)
        return (wirelength(result.netlist, result.placement),
                result.routing.total_hops)

    annealed_cost, annealed_hops = benchmark.pedantic(run, rounds=2, iterations=1)
    improvement = 1.0 - annealed_cost / greedy_cost
    print(f"\nAnnealing placement: wirelength {annealed_cost:.0f} "
          f"({improvement:.1%} better than greedy), hops {annealed_hops}")
    # The refinement must never be meaningfully worse than its own seed.
    assert annealed_cost <= greedy_cost * 1.02
