"""Ablation — greedy vs simulated-annealing placement.

DESIGN.md calls out the placer as a design choice worth ablating: the
annealing refinement should reduce width-weighted wirelength (and hence
routed hops / interconnect energy) relative to the constructive greedy
placement, at a wall-clock cost this benchmark makes visible.
"""

import pytest

from repro.arrays import build_da_array
from repro.core.mapper import AnnealingPlacer, GreedyPlacer, wirelength
from repro.core.router import MeshRouter
from repro.dct import CordicDCT1


@pytest.mark.benchmark(group="ablation-placement")
def test_greedy_placement_baseline(benchmark):
    netlist = CordicDCT1().build_netlist()

    def run():
        fabric = build_da_array()
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        return wirelength(netlist, placement), routing.total_hops

    greedy_wirelength, greedy_hops = benchmark(run)
    print(f"\nGreedy placement: wirelength {greedy_wirelength:.0f}, hops {greedy_hops}")
    assert greedy_wirelength > 0


@pytest.mark.benchmark(group="ablation-placement")
def test_annealing_placement_improves_wirelength(benchmark):
    netlist = CordicDCT1().build_netlist()

    greedy_fabric = build_da_array()
    greedy = GreedyPlacer(greedy_fabric).place(netlist)
    greedy_cost = wirelength(netlist, greedy)

    def run():
        fabric = build_da_array()
        placement = AnnealingPlacer(fabric, seed=7,
                                    moves_per_temperature=48).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        return wirelength(netlist, placement), routing.total_hops

    annealed_cost, annealed_hops = benchmark.pedantic(run, rounds=2, iterations=1)
    improvement = 1.0 - annealed_cost / greedy_cost
    print(f"\nAnnealing placement: wirelength {annealed_cost:.0f} "
          f"({improvement:.1%} better than greedy), hops {annealed_hops}")
    # The refinement must never be meaningfully worse than its own seed.
    assert annealed_cost <= greedy_cost * 1.02
