"""GOP-parallel encoding benchmark: strategy equivalence and throughput.

The system-level extension of the paper's workload: the per-frame encoder
becomes a GOP-sharded pipeline (see ``repro.video.gop``).  This benchmark
checks that every scheduling strategy produces the serial stream bit for
bit while pytest-benchmark records the lockstep (cross-GOP batched)
throughput; the committed ``BENCH_gop.json`` from ``run_bench_gop.py``
tracks the serial-vs-parallel speedup PR over PR.
"""

import numpy as np
import pytest

from repro.video import EncoderConfiguration
from repro.video.gop import encode_sequence_parallel
from repro.video.rate_control import RateController, RateControlSettings


@pytest.fixture(scope="module")
def sequence_frames():
    from repro.video import panning_sequence

    sequence = panning_sequence(height=96, width=112, pan=(1, 2), seed=2004)
    return [sequence.frame(index) for index in range(16)]


@pytest.mark.benchmark(group="gop")
def test_lockstep_matches_serial_bit_for_bit(benchmark, sequence_frames):
    configuration = EncoderConfiguration()
    serial = encode_sequence_parallel(sequence_frames, configuration,
                                      gop_size=4, workers=4,
                                      strategy="serial")

    outcome = benchmark.pedantic(
        lambda: encode_sequence_parallel(sequence_frames, configuration,
                                         gop_size=4, workers=4,
                                         strategy="lockstep"),
        rounds=3, iterations=1)

    assert len(outcome.statistics) == len(serial.statistics)
    for stats_a, stats_b in zip(serial.statistics, outcome.statistics):
        assert stats_a.psnr_db == stats_b.psnr_db
        assert stats_a.estimated_bits == stats_b.estimated_bits
        for mb_a, mb_b in zip(stats_a.macroblocks, stats_b.macroblocks):
            assert mb_a.motion_vector == mb_b.motion_vector
            assert all(np.array_equal(x, y) for x, y
                       in zip(mb_a.level_blocks, mb_b.level_blocks))
    print(f"\nGOP-parallel: {len(outcome.gops)} GOPs, strategy "
          f"{outcome.strategy}, mean PSNR {outcome.mean_psnr_db:.2f} dB")


@pytest.mark.benchmark(group="gop")
def test_rate_control_tracks_target(benchmark, sequence_frames):
    configuration = EncoderConfiguration()
    fixed = encode_sequence_parallel(sequence_frames, configuration,
                                     gop_size=4, workers=4)
    fixed_bits = fixed.total_estimated_bits / len(sequence_frames)
    target = int(fixed_bits * 0.6)
    controller = RateController(RateControlSettings(
        target_bits_per_frame=target, base_qp=configuration.qp, gain=4.0))

    outcome = benchmark.pedantic(
        lambda: encode_sequence_parallel(sequence_frames, configuration,
                                         gop_size=4, workers=4,
                                         rate_controller=controller),
        rounds=3, iterations=1)

    controlled_bits = outcome.total_estimated_bits / len(sequence_frames)
    # The controller lands materially closer to the target than fixed QP.
    assert abs(controlled_bits - target) < abs(fixed_bits - target)
    print(f"\nRate control: fixed {fixed_bits:.0f} b/frame, target {target}, "
          f"controlled {controlled_bits:.0f} b/frame")
