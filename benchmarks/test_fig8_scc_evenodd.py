"""Fig. 8 — Li's skew-circular-convolution DCT, even/odd split.

Checks the reordered-kernel construction (the SCC matrix coincides with the
direct odd matrix), the 16-word ROM geometry, and benchmarks accuracy.
"""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.mixed_rom import odd_matrix
from repro.dct.reference import dct_1d
from repro.dct.scc_dct import FIG8_ROM_WORDS, SCCEvenOddDCT, generator_exponents, odd_scc_matrix


@pytest.mark.benchmark(group="fig8")
def test_fig8_scc_even_odd_dct(benchmark, input_vectors):
    transform = SCCEvenOddDCT()

    def run():
        return np.array([transform.forward(vector) for vector in input_vectors])

    outputs = benchmark(run)

    reference = np.array([dct_1d(vector) for vector in input_vectors])
    worst = float(np.max(np.abs(outputs - reference)))
    bound = 8 * 4096 * transform.quantisation.output_scale + 1.0
    print(f"\nFig. 8 SCC even/odd DCT: worst-case error {worst:.3f} "
          f"(bound {bound:.1f}); generator exponents {generator_exponents(8)}")
    assert worst <= bound

    # Li's reordering: the skew-circular-convolution matrix must equal the
    # direct odd-output matrix value for value.
    assert np.allclose(odd_scc_matrix(8), odd_matrix(8))

    netlist = transform.build_netlist()
    assert netlist.cluster_usage().as_table_row() == PAPER_TABLE1["scc_even_odd"]
    # "Only a 16 words ROM is required as DCT components are separated into
    # odd and even."
    assert all(node.depth_words == FIG8_ROM_WORDS
               for node in netlist.nodes_of_kind(ClusterKind.MEMORY))
