"""Shared plumbing for the ``run_bench_*`` harnesses.

Every runner used to hand-roll the same three things: a best-of timing
loop, a JSON record stamped with the generation time and environment,
and the final write-plus-print.  They live here once now — and every
benchmarked section additionally runs under :mod:`repro.obs` tracing so
its virtual-time ``trace_digest`` lands in the record, tying each
benchmark number to the exact deterministic schedule that produced it.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, Iterable, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent


def best_of(workload: Callable[[], object], repeats: int) -> float:
    """Minimum wall seconds of ``workload`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - started)
    return best


def new_record(benchmark: str, **extra) -> Dict:
    """A fresh benchmark record with the environment stamp every runner
    used to assemble by hand."""
    import numpy as np

    record: Dict = {
        "benchmark": benchmark,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    record.update(extra)
    return record


def traced(workload: Callable[[], object]) -> Tuple[object, str]:
    """Run ``workload`` under a fresh tracer; return ``(result, digest)``.

    The digest covers only the virtual clock domain, so it identifies
    the deterministic schedule the benchmark exercised — identical
    across repeats, backends, and machines.
    """
    from repro import obs

    with obs.tracing() as tracer:
        result = workload()
    return result, obs.trace_digest(tracer)


def run_sections(record: Dict,
                 sections: Iterable[Tuple[str, Callable[[], Dict]]]) -> Dict:
    """Run named benchmark sections into ``record["benchmarks"]``, each
    traced and stamped with its ``trace_digest``."""
    benchmarks = record.setdefault("benchmarks", {})
    for name, bench in sections:
        print(f"running {name} ...", flush=True)
        section, digest = traced(bench)
        if isinstance(section, dict):
            section.setdefault("trace_digest", digest)
        benchmarks[name] = section
    return record


def write_record(path, record: Dict, sort_keys: bool = False) -> Path:
    """Write the record as indented JSON and announce the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=sort_keys) + "\n")
    print(f"wrote {path}")
    return path
