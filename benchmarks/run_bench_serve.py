#!/usr/bin/env python3
"""Serving-runtime benchmark: scheduling policies across traffic mixes.

Replays the three seeded traffic mixes of :mod:`repro.serve.workload`
against a serving fleet under every scheduling policy and writes
``BENCH_serve.json`` at the repository root, recording per policy and mix:
throughput, p50/p95/p99 latency, energy per job, rejections and the
reconfiguration traffic (count, bits, cycles, energy).

Two properties are *asserted*, not just reported:

* every policy's completed payloads are bit-identical to a naive serial
  execution of the same jobs (batching and scheduling change nothing),
* the reconfiguration-cost-aware ``affinity`` policy beats ``fifo`` on
  latency or energy for at least one mix.

Run with:  python benchmarks/run_bench_serve.py [--output BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from bench_record import new_record, traced, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent

JOB_COUNT = 36
SEED = 2004
MEAN_GAP = 6_000
POLICY_NAMES = ("fifo", "sjf", "affinity", "round_robin")

#: Per-mix serving settings: the churn mix runs a deeper queue so the
#: affinity policy has real choices; the bursty mix keeps a small queue
#: to exercise admission control.
MIX_SETTINGS = {
    "steady_encode": dict(queue_capacity=24, max_batch=6, soc_count=1),
    "kernel_churn": dict(queue_capacity=24, max_batch=4, soc_count=1),
    "bursty_mixed": dict(queue_capacity=12, max_batch=6, soc_count=2),
}


def run_mix(mix: str, library, serial_digests: dict) -> dict:
    from repro.engine.sharding import group_by_key
    from repro.serve import ServeSettings, generate_jobs, serve

    jobs = generate_jobs(mix, job_count=JOB_COUNT, seed=SEED,
                         mean_gap=MEAN_GAP,
                         sequence_frames=8 if mix == "steady_encode" else None)
    # The mix's batching opportunity: how the trace partitions into
    # compatible groups (an upper bound on what any scheduler can fuse).
    compatible = group_by_key(jobs, lambda job: job.batch_key)
    rows = {}
    for policy in POLICY_NAMES:
        started = time.perf_counter()
        report = serve(jobs, ServeSettings(policy=policy,
                                           **MIX_SETTINGS[mix]),
                       library=library)
        elapsed = time.perf_counter() - started
        for job_id, digest in report.digests.items():
            assert digest == serial_digests[(mix, job_id)], \
                f"{mix}/{policy}: job {job_id} diverged from serial execution"
        assert report.completed + report.rejected == len(jobs)
        summary = report.summary()
        summary.update({
            "wall_seconds": round(elapsed, 3),
            "reconfiguration_cycles": report.reconfiguration_cycles,
            "reconfiguration_energy": round(report.reconfiguration_energy, 1),
            "total_energy": round(report.total_energy, 1),
            "bit_identical_to_serial": True,
        })
        rows[policy] = summary
    return {"job_count": len(jobs), "settings": MIX_SETTINGS[mix],
            "compatible_group_sizes": sorted((len(group) for group in
                                              compatible), reverse=True),
            "policies": rows}


def serial_reference() -> dict:
    """Digest every mix's jobs under naive serial execution."""
    from repro.serve import execute_serial, generate_jobs

    digests = {}
    for mix in MIX_SETTINGS:
        jobs = generate_jobs(mix, job_count=JOB_COUNT, seed=SEED,
                             mean_gap=MEAN_GAP,
                             sequence_frames=8 if mix == "steady_encode"
                             else None)
        for result in execute_serial(jobs):
            digests[(mix, result.job_id)] = result.digest
    return digests


def affinity_wins(mixes: dict) -> list:
    """Mixes where affinity beats FIFO on p95 latency or energy per job."""
    wins = []
    for mix, data in mixes.items():
        fifo = data["policies"]["fifo"]
        affinity = data["policies"]["affinity"]
        if (affinity["latency_p95"] < fifo["latency_p95"]
                or affinity["energy_per_job"] < fifo["energy_per_job"]):
            wins.append(mix)
    return wins


def kernel_table(library) -> dict:
    """Measured bitstream bits of every serving kernel."""
    from repro.serve.kernels import KERNEL_BUILDERS

    return {kernel: library.bitstream_bits(kernel)
            for kernel in sorted(KERNEL_BUILDERS)}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_serve.json"))
    arguments = parser.parse_args()

    from repro.serve import KernelLibrary

    library = KernelLibrary()
    digests = serial_reference()
    mixes = {}
    for mix in MIX_SETTINGS:
        mixes[mix], trace_digest = traced(
            lambda m=mix: run_mix(m, library, digests))
        mixes[mix]["trace_digest"] = trace_digest

    wins = affinity_wins(mixes)
    assert wins, ("the reconfiguration-aware policy beat FIFO on no mix — "
                  "the serving model lost its residency sensitivity")

    record = new_record(
        "serve",
        job_count_per_mix=JOB_COUNT,
        seed=SEED,
        kernel_bitstream_bits=kernel_table(library),
        mixes=mixes,
        affinity_beats_fifo_on=wins,
    )
    output = write_record(arguments.output, record, sort_keys=True)
    for mix, data in mixes.items():
        print(f"\n{mix}:")
        for policy, summary in data["policies"].items():
            print(f"  {policy:12s} p95={summary['latency_p95']:>9} "
                  f"energy/job={summary['energy_per_job']:>9} "
                  f"reconf={summary['reconfigurations']:>3} "
                  f"rejected={summary['rejected']}")
    print(f"\naffinity beats fifo on: {', '.join(wins)}")


if __name__ == "__main__":
    main()
