"""Ablation — 1-D systolic array vs the paper's 4x16 2-D systolic array.

Sec. 4: 1-D array architectures "require high operating frequencies in
order to fulfill the data-flow requirements" of full-search ME, which is
why the paper maps a 2-D array.  This ablation runs both models on the
same macroblock search and compares cycle counts, the clock needed for
real-time QCIF and the PE cost.
"""

import pytest

from repro.me.full_search import full_search
from repro.me.systolic import SystolicArray
from repro.me.systolic_1d import Systolic1DArray, required_frequency
from repro.reporting import format_table

SEARCH_RANGE = 4


@pytest.mark.benchmark(group="ablation-systolic")
def test_1d_versus_2d_systolic_array(benchmark, me_frames):
    reference_frame, current_frame, _ = me_frames
    top, left = 32, 32

    def run():
        one_d = Systolic1DArray().search(current_frame, reference_frame, top, left,
                                         block_size=16, search_range=SEARCH_RANGE)
        two_d = SystolicArray().search(current_frame, reference_frame, top, left,
                                       block_size=16, search_range=SEARCH_RANGE)
        return one_d, two_d

    one_d, two_d = benchmark.pedantic(run, rounds=3, iterations=1)
    software = full_search(current_frame, reference_frame, top, left, 16, SEARCH_RANGE)

    rows = []
    for name, result, pe_count in (("systolic_1d", one_d, Systolic1DArray().pe_total),
                                   ("systolic_2d", two_d, SystolicArray().pe_count)):
        requirement = required_frequency(result.cycles, architecture=name)
        rows.append({
            "architecture": name,
            "pes": pe_count,
            "cycles_per_macroblock": result.cycles,
            "required_mhz_qcif30": round(requirement.required_frequency_hz / 1e6, 2),
        })
    print()
    print(format_table(rows, title=f"1-D vs 2-D systolic arrays (+-{SEARCH_RANGE} window)"))

    # Both produce the optimal full-search result.
    assert one_d.motion_vector == software.motion_vector == two_d.motion_vector
    # The 1-D array uses a quarter of the PEs but needs 4x the cycles, hence
    # 4x the clock for the same throughput — the paper's motivation for 2-D.
    assert one_d.cycles == 4 * two_d.cycles
    assert rows[0]["required_mhz_qcif30"] == pytest.approx(
        4 * rows[1]["required_mhz_qcif30"], rel=0.01)
