"""Sec. 1 claim ([1]) — ME array vs generic FPGA: -75% power, -45% area, +23% timing.

Maps the Fig. 11 systolic engine onto the ME array, technology-maps the
same netlist onto the generic-FPGA baseline, and compares power, area and
critical path.  The benchmark times the full mapping + comparison flow.
"""

import pytest

from repro.arrays import build_me_array
from repro.flow import compile as flow_compile
from repro.me import SystolicArray
from repro.power import compare_to_fpga

PAPER = {"power_reduction": 0.75, "area_reduction": 0.45, "timing_improvement": 0.23}


@pytest.mark.benchmark(group="claims")
def test_me_array_versus_generic_fpga(benchmark):
    def run():
        mapped = flow_compile(SystolicArray(), fabric=build_me_array(), cache=None)
        return compare_to_fpga(mapped.netlist, build_me_array(), activity=0.25,
                               routing=mapped.routing)

    comparison = benchmark.pedantic(run, rounds=3, iterations=1)

    measured = comparison.summary()
    print(f"\nME array vs FPGA: measured {measured}; "
          f"paper: -75% power, -45% area, +23% timing")

    assert comparison.power_reduction == pytest.approx(PAPER["power_reduction"], abs=0.05)
    assert comparison.area_reduction == pytest.approx(PAPER["area_reduction"], abs=0.05)
    assert comparison.timing_improvement == pytest.approx(PAPER["timing_improvement"], abs=0.05)
    # Shape: the ME array wins on every axis against the FPGA.
    assert comparison.power_reduction > 0
    assert comparison.area_reduction > 0
    assert comparison.timing_improvement > 0
