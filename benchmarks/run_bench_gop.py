#!/usr/bin/env python3
"""GOP-parallel encoding benchmark: serial vs threads vs lockstep.

Encodes a 32-frame QCIF synthetic sequence (textured pan with a moving
object — the live-camera workload of the paper's introduction) as four
closed GOPs with every scheduling strategy of :mod:`repro.video.gop`,
asserts the streams are bit-identical, and writes ``BENCH_gop.json`` at
the repository root so the parallel-encode trajectory is tracked PR over
PR.  Also records a rate-controlled encode (buffer-model QP control
toward a bits/frame target) and the scene-suite coverage.

The headline ``speedup`` compares the serial closed-GOP encode against
the ``auto`` strategy (lockstep here: cross-GOP batched kernels), which
accelerates even on a single core; the ``threads`` number additionally
reflects whatever real cores the host has.

Run with:  python benchmarks/run_bench_gop.py [--output BENCH_gop.json]
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from bench_record import best_of as _best_of
from bench_record import new_record, run_sections, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent

FRAME_COUNT = 32
GOP_SIZE = 8
WORKERS = 4


def benchmark_sequence():
    """The 32-frame QCIF workload: textured pan plus a tracked object."""
    from repro.video.frames import (
        QCIF_HEIGHT,
        QCIF_WIDTH,
        MovingObject,
        SyntheticSequence,
    )

    sequence = SyntheticSequence(
        height=QCIF_HEIGHT, width=QCIF_WIDTH, global_motion=(1, 2),
        objects=[MovingObject(top=48, left=40, height=24, width=24,
                              velocity=(1, 1))],
        seed=2004)
    return [sequence.frame(index) for index in range(FRAME_COUNT)]


def bench_gop_parallel(repeats: int) -> dict:
    """Serial vs threads vs lockstep vs processes on the 4-GOP sequence."""
    from repro.par import ProcessBackend
    from repro.video import EncoderConfiguration
    from repro.video.gop import encode_sequence_parallel

    frames = benchmark_sequence()
    configuration = EncoderConfiguration()
    backend = ProcessBackend(workers=WORKERS)

    def run(strategy):
        return encode_sequence_parallel(frames, configuration,
                                        gop_size=GOP_SIZE, workers=WORKERS,
                                        strategy=strategy, backend=backend)

    with backend:
        outcomes = {strategy: run(strategy)
                    for strategy in ("serial", "threads", "lockstep",
                                     "processes", "auto")}
        reference = outcomes["serial"].statistics
        for strategy, outcome in outcomes.items():
            identical = all(
                a.psnr_db == b.psnr_db and a.estimated_bits == b.estimated_bits
                and a.frame_type == b.frame_type
                for a, b in zip(reference, outcome.statistics))
            if not identical:
                raise AssertionError(f"{strategy} diverged from serial output")

        seconds = {strategy: _best_of(lambda s=strategy: run(s), repeats)
                   for strategy in ("serial", "threads", "lockstep",
                                    "processes")}
    auto_strategy = outcomes["auto"].strategy
    auto_seconds = seconds[auto_strategy]
    return {
        "description": f"{FRAME_COUNT} frames QCIF pan + moving object, "
                       f"gop {GOP_SIZE} -> {len(outcomes['serial'].gops)} "
                       f"closed GOPs, {WORKERS} workers, full search +-8, "
                       f"qp {configuration.qp}",
        "cpu_count": os.cpu_count(),
        "gops": len(outcomes["serial"].gops),
        "workers": WORKERS,
        "bit_identical": True,
        "serial_seconds": round(seconds["serial"], 4),
        "threads_seconds": round(seconds["threads"], 4),
        "lockstep_seconds": round(seconds["lockstep"], 4),
        "processes_seconds": round(seconds["processes"], 4),
        "auto_strategy": auto_strategy,
        "speedup": round(seconds["serial"] / auto_seconds, 2),
        "threads_speedup": round(seconds["serial"] / seconds["threads"], 2),
        "lockstep_speedup": round(seconds["serial"] / seconds["lockstep"], 2),
        "processes_speedup": round(
            seconds["serial"] / seconds["processes"], 2),
        "mean_psnr_db": round(outcomes["serial"].mean_psnr_db, 2),
    }


def bench_rate_control(repeats: int) -> dict:
    """Rate-controlled GOP-parallel encode vs the fixed-QP spend."""
    from repro.video import EncoderConfiguration
    from repro.video.gop import encode_sequence_parallel
    from repro.video.rate_control import RateController, RateControlSettings

    frames = benchmark_sequence()
    configuration = EncoderConfiguration()
    fixed = encode_sequence_parallel(frames, configuration, gop_size=GOP_SIZE,
                                     workers=WORKERS)
    fixed_bits = fixed.total_estimated_bits / FRAME_COUNT
    target = int(fixed_bits * 0.6)
    controller = RateController(RateControlSettings(
        target_bits_per_frame=target, base_qp=configuration.qp, gain=4.0))

    def run():
        return encode_sequence_parallel(frames, configuration,
                                        gop_size=GOP_SIZE, workers=WORKERS,
                                        rate_controller=controller)

    controlled = run()
    controlled_bits = controlled.total_estimated_bits / FRAME_COUNT
    seconds = _best_of(run, repeats)
    return {
        "description": f"buffer-model QP control toward {target} bits/frame "
                       f"(fixed qp spends {fixed_bits:.0f})",
        "target_bits_per_frame": target,
        "fixed_qp_bits_per_frame": round(fixed_bits, 1),
        "controlled_bits_per_frame": round(controlled_bits, 1),
        "relative_error_vs_target": round(
            abs(controlled_bits - target) / target, 3),
        "qp_range": [int(min(min(t) for t in controlled.qp_trajectories if t)),
                     int(max(max(t) for t in controlled.qp_trajectories if t))],
        "mean_psnr_db": round(controlled.mean_psnr_db, 2),
        "seconds": round(seconds, 4),
    }


def bench_scene_suite(repeats: int) -> dict:
    """Every scene kind through the parallel encoder (with cut detection)."""
    from repro.video import EncoderConfiguration
    from repro.video.gop import DEFAULT_SCENE_CUT_THRESHOLD, encode_sequence_parallel
    from repro.video.scenes import SCENE_KINDS, scene_frames

    configuration = EncoderConfiguration(search_range=4)
    report = {}
    for kind in SCENE_KINDS:
        frames = scene_frames(kind, count=16, height=96, width=112, seed=2004)
        outcome = encode_sequence_parallel(
            frames, configuration, gop_size=8,
            scene_cut_threshold=DEFAULT_SCENE_CUT_THRESHOLD, workers=WORKERS)
        seconds = _best_of(
            lambda f=frames: encode_sequence_parallel(
                f, configuration, gop_size=8,
                scene_cut_threshold=DEFAULT_SCENE_CUT_THRESHOLD,
                workers=WORKERS), repeats)
        report[kind] = {
            "gops": len(outcome.gops),
            "mean_psnr_db": round(outcome.mean_psnr_db, 2),
            "bits_per_frame": round(outcome.total_estimated_bits / 16, 0),
            "seconds": round(seconds, 4),
        }
    return {
        "description": "16-frame 96x112 sequences, gop 8 + scene-cut "
                       "detection, auto strategy",
        "scenes": report,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_gop.json",
                        help="where to write the benchmark record")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per measurement (best-of)")
    arguments = parser.parse_args()

    record = new_record("gop")
    run_sections(record, (
        ("gop_parallel_encode",
         lambda: bench_gop_parallel(arguments.repeats)),
        ("rate_control", lambda: bench_rate_control(arguments.repeats)),
        ("scene_suite", lambda: bench_scene_suite(arguments.repeats)),
    ))
    headline = record["benchmarks"]["gop_parallel_encode"]
    print(f"  serial {headline['serial_seconds']}s -> "
          f"{headline['auto_strategy']} "
          f"{headline[headline['auto_strategy'] + '_seconds']}s "
          f"({headline['speedup']}x), threads {headline['threads_seconds']}s")

    write_record(arguments.output, record)


if __name__ == "__main__":
    main()
