"""Fleet-runtime benchmark: event-driven scheduling with bit-exactness.

The datacenter counterpart of the serving-scheduler benchmark:
pytest-benchmark records a full event-driven fleet run (work stealing,
autoscaling and SLO shedding all on) after asserting that the scheduled
execution is bit-identical to the naive serial reference and that job
conservation holds; the committed ``BENCH_fleet.json`` from
``run_bench_fleet.py`` tracks the scaling curve PR over PR.
"""

import pytest

from repro.fleet import (
    BALANCERS,
    FleetSettings,
    execute_fleet_serial,
    simulate_fleet,
    synthetic_trace,
)
from repro.serve import KernelLibrary

LIBRARY = KernelLibrary()


@pytest.fixture(scope="module")
def crowd_trace():
    return synthetic_trace("flash_crowd", 400, seed=7, mean_gap=300)


@pytest.fixture(scope="module")
def serial_digests(crowd_trace):
    return {result.job_id: result.digest
            for result in execute_fleet_serial(crowd_trace)}


@pytest.mark.benchmark(group="fleet")
def test_full_stack_run_is_bit_exact_and_conserving(benchmark, crowd_trace,
                                                    serial_digests):
    settings = FleetSettings(soc_count=8, balancer="jsq", steal=True,
                             autoscale=True, idle_timeout=20_000,
                             slo_target_p99=500_000)
    report = benchmark.pedantic(
        lambda: simulate_fleet(crowd_trace, settings, library=LIBRARY),
        rounds=3, iterations=1)

    assert report.conserved
    for job_id, digest in report.digests.items():
        assert digest == serial_digests[job_id]
    print(f"\njsq fleet: {report.completed} jobs, {report.steals} steals, "
          f"{report.gatings} gatings, "
          f"p95 latency {report.latency_percentiles()['p95']:.0f} cycles")


@pytest.mark.benchmark(group="fleet")
def test_balancer_sweep_agrees_on_bits(benchmark, crowd_trace,
                                       serial_digests):
    def sweep():
        return {balancer: simulate_fleet(
                    crowd_trace,
                    FleetSettings(soc_count=8, balancer=balancer,
                                  policy="affinity"),
                    library=LIBRARY)
                for balancer in sorted(BALANCERS)}

    reports = benchmark.pedantic(sweep, rounds=2, iterations=1)
    for balancer, report in reports.items():
        assert report.conserved
        for job_id, digest in report.digests.items():
            assert digest == serial_digests[job_id], (balancer, job_id)
