"""Serving-scheduler benchmark: policy sweep with bit-exactness asserted.

The multi-tenant counterpart of the GOP and NoC benchmarks:
pytest-benchmark records a full virtual-time serving run of the
kernel-churn mix (the policy-sensitive workload) after asserting that
the scheduled, batched execution is bit-identical to the naive serial
reference and that job conservation holds; the committed
``BENCH_serve.json`` from ``run_bench_serve.py`` tracks the
policy-vs-policy latency/energy picture PR over PR.
"""

import pytest

from repro.serve import (
    KernelLibrary,
    ServeSettings,
    execute_serial,
    generate_jobs,
    serve,
)

LIBRARY = KernelLibrary()


@pytest.fixture(scope="module")
def churn_trace():
    return generate_jobs("kernel_churn", job_count=24, seed=7,
                         mean_gap=6_000)


@pytest.fixture(scope="module")
def serial_digests(churn_trace):
    return {result.job_id: result.digest
            for result in execute_serial(churn_trace)}


@pytest.mark.benchmark(group="serve")
def test_affinity_run_is_bit_exact_and_conserving(benchmark, churn_trace,
                                                  serial_digests):
    report = benchmark.pedantic(
        lambda: serve(churn_trace,
                      ServeSettings(policy="affinity", queue_capacity=24,
                                    max_batch=4),
                      library=LIBRARY),
        rounds=3, iterations=1)

    assert report.completed + report.rejected == len(churn_trace)
    for job_id, digest in report.digests.items():
        assert digest == serial_digests[job_id]
    print(f"\naffinity: {report.completed} jobs, "
          f"{report.reconfigurations} reconfigurations, "
          f"p95 latency {report.latency_percentiles()['p95']:.0f} cycles")


@pytest.mark.benchmark(group="serve")
def test_policy_sweep_agrees_on_bits(benchmark, churn_trace, serial_digests):
    def sweep():
        return {policy: serve(churn_trace,
                              ServeSettings(policy=policy, queue_capacity=24,
                                            max_batch=4),
                              library=LIBRARY)
                for policy in ("fifo", "sjf", "affinity", "round_robin")}

    reports = benchmark.pedantic(sweep, rounds=2, iterations=1)
    for policy, report in reports.items():
        for job_id, digest in report.digests.items():
            assert digest == serial_digests[job_id], (policy, job_id)
    affinity = reports["affinity"]
    fifo = reports["fifo"]
    assert affinity.reconfigurations <= fifo.reconfigurations
