"""Fig. 7 — scaled CORDIC DCT (implementation #2).

Checks the two differences the paper lists against implementation #1
(20 butterfly adders instead of 16, 3 rotators instead of 6), the folding
of the scale factors into the quantiser, and benchmarks accuracy.
"""

import numpy as np
import pytest

from repro.dct.cordic_dct1 import CordicDCT1
from repro.dct.cordic_dct2 import CordicDCT2
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.quantization import fold_scale_factors, quantisation_matrix, quantise_with_matrix
from repro.dct.reference import dct_1d


@pytest.mark.benchmark(group="fig7")
def test_fig7_scaled_cordic_dct_2(benchmark, input_vectors):
    transform = CordicDCT2()

    def run():
        return np.array([transform.forward_normalised(vector)
                         for vector in input_vectors])

    outputs = benchmark(run)

    reference = np.array([dct_1d(vector) for vector in input_vectors])
    worst = float(np.max(np.abs(outputs - reference)))
    print(f"\nFig. 7 scaled CORDIC DCT: worst-case error {worst:.4f}, "
          f"{transform.rotator_count} rotators, "
          f"{transform.butterfly_adder_count} butterfly adders")
    assert worst <= 1.5

    first = CordicDCT1()
    # "Uses 20 butterfly adders instead of 16; uses 3 CORDIC rotators
    # instead of 6."
    assert transform.butterfly_adder_count == 20
    assert first.butterfly_adder_count == 16
    assert transform.rotator_count == 3
    assert first.rotator_count == 6

    assert transform.build_netlist().cluster_usage().as_table_row() \
        == PAPER_TABLE1["cordic_2"]

    # "The constant scale factor ... can be combined with the quantization
    # constants without requiring any extra hardware": the folded step
    # matrix quantises the scaled coefficients to the same levels.
    vector = input_vectors[0]
    true_row = dct_1d(vector)
    scaled_row = transform.forward(vector)
    steps = np.full(8, 16.0)
    folded = steps / transform.scale_factors
    assert np.array_equal(np.trunc(true_row / steps), np.trunc(scaled_row / folded))
