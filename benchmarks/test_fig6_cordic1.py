"""Fig. 6 — CORDIC-rotator-based 8-point DCT (implementation #1).

Checks the 6-rotator / 16-butterfly structure, the fixed 4-word rotator
ROMs, and benchmarks accuracy of the shift-add rotation datapath.
"""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.cordic_dct1 import CordicDCT1
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.reference import dct_1d


@pytest.mark.benchmark(group="fig6")
def test_fig6_cordic_dct_1(benchmark, input_vectors):
    transform = CordicDCT1()

    def run():
        return np.array([transform.forward(vector) for vector in input_vectors])

    outputs = benchmark(run)

    reference = np.array([dct_1d(vector) for vector in input_vectors])
    worst = float(np.max(np.abs(outputs - reference)))
    print(f"\nFig. 6 CORDIC DCT #1: worst-case error {worst:.4f}, "
          f"{transform.rotator_count} rotators, "
          f"{transform.butterfly_adder_count} butterfly adders")
    assert worst <= 1.5

    # "This CORDIC based implementation requires 6-CORDIC and 16 butterfly
    # adders for an 8 point 1D DCT."
    assert transform.rotator_count == 6
    assert transform.butterfly_adder_count == 16

    netlist = transform.build_netlist()
    assert netlist.cluster_usage().as_table_row() == PAPER_TABLE1["cordic_1"]
    # "the ROM size is reduced to a fix size of 4 words, independent of the
    # bandwidth of the input data".
    assert all(node.depth_words == 4
               for node in netlist.nodes_of_kind(ClusterKind.MEMORY))
