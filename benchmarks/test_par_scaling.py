"""Multiprocess-backend benchmark: bit-identity under pytest-benchmark.

The committed ``BENCH_par.json`` from ``run_bench_par.py`` is the
scaling record (1/2/4-worker sweeps per layer); this module keeps the
same claims alive in the ordinary benchmark run — the processes backend
reproduces the serial bits on every layer while pytest-benchmark tracks
its wall-clock cost.  One warm two-worker pool serves all three tests,
so the spawn cost is paid once per session.
"""

import numpy as np
import pytest

from repro.fleet import (
    FleetSettings,
    execute_fleet_serial,
    simulate_fleet_partitioned,
    synthetic_trace,
)
from repro.flow import compile_many
from repro.par import ProcessBackend, leaked_segments
from repro.video import EncoderConfiguration, panning_sequence
from repro.video.gop import encode_sequence_parallel, stream_digest


@pytest.fixture(scope="module")
def backend():
    with ProcessBackend(workers=2) as pool:
        yield pool
    assert leaked_segments() == []


@pytest.fixture(scope="module")
def sequence_frames():
    sequence = panning_sequence(height=96, width=112, pan=(1, 2), seed=2004)
    return [sequence.frame(index) for index in range(16)]


@pytest.mark.benchmark(group="par")
def test_processes_encode_matches_serial_bit_for_bit(benchmark,
                                                     sequence_frames,
                                                     backend):
    configuration = EncoderConfiguration()
    serial = encode_sequence_parallel(sequence_frames, configuration,
                                      gop_size=4, strategy="serial")

    outcome = benchmark.pedantic(
        lambda: encode_sequence_parallel(sequence_frames, configuration,
                                         gop_size=4, workers=2,
                                         strategy="processes",
                                         backend=backend),
        rounds=3, iterations=1)

    assert outcome.strategy == "processes"
    assert stream_digest(outcome.statistics) \
        == stream_digest(serial.statistics)
    assert np.array_equal(outcome.final_reference, serial.final_reference)
    print(f"\nprocesses encode: {len(outcome.gops)} GOPs over 2 workers, "
          f"mean PSNR {outcome.mean_psnr_db:.2f} dB, bit-identical")


@pytest.mark.benchmark(group="par")
def test_partitioned_fleet_matches_naive_serial(benchmark, backend):
    jobs = synthetic_trace("diurnal", 160, seed=2026, mean_gap=900)
    settings = FleetSettings(soc_count=4, queue_capacity=128)
    naive = {result.job_id: result.digest
             for result in execute_fleet_serial(jobs)}

    report = benchmark.pedantic(
        lambda: simulate_fleet_partitioned(jobs, settings, partitions=2,
                                           parallel="processes",
                                           backend=backend),
        rounds=3, iterations=1)

    digests = report.digests
    assert digests == {job_id: naive[job_id] for job_id in digests}
    assert report.conserved
    print(f"\npartitioned fleet: {report.completed} jobs over 2 partitions, "
          f"makespan {report.makespan_cycles} cycles, payloads bit-identical")


@pytest.mark.benchmark(group="par")
def test_processes_compile_matches_serial(benchmark, backend):
    from repro.dct import CordicDCT1, MixedRomDCT, SCCDirectDCT

    factories = (MixedRomDCT, SCCDirectDCT, CordicDCT1)
    serial = compile_many([factory() for factory in factories],
                          cache=None, parallel="serial")

    results = benchmark.pedantic(
        lambda: compile_many([factory() for factory in factories],
                             cache=None, parallel="processes",
                             backend=backend),
        rounds=3, iterations=1)

    assert [result.bitstream.serialize() for result in results] \
        == [result.bitstream.serialize() for result in serial]
    print(f"\nprocesses compile: {len(results)} designs, "
          f"bitstreams identical to serial")
