"""Table 1 — area usage (cluster counts) of the five DCT implementations.

Regenerates every row of Table 1 by building each implementation's netlist
and mapping it onto the DA array, then compares the cluster counts with the
published values.  The benchmark timing covers the full mapping flow
(netlist construction, placement, routing, metrics) for all five
implementations.
"""

import pytest

from repro.dct.mapping import PAPER_TABLE1, TABLE1_ORDER, dct_implementations, table1_as_rows
from repro.flow import compile_many
from repro.reporting import format_table


def run_table1():
    results = compile_many(dct_implementations(), cache=None)
    return {result.design_name: result for result in results}


@pytest.mark.benchmark(group="table1")
def test_table1_cluster_usage_matches_paper(benchmark):
    results = benchmark(run_table1)

    rows = table1_as_rows(results)
    print()
    print(format_table(rows, title="Table 1: area usage of the DCT implementations"))

    for name in TABLE1_ORDER:
        assert results[name].table_row() == PAPER_TABLE1[name], name

    totals = {name: results[name].usage.total_clusters for name in TABLE1_ORDER}
    # Shape of the comparison: CORDIC 1 is the largest mapping, the direct
    # SCC implementation the smallest, and the ratio between them is 2x.
    assert totals["cordic_1"] == max(totals.values())
    assert totals["scc_direct"] == min(totals.values())
    assert totals["cordic_1"] == 2 * totals["scc_direct"]
    # MIX ROM and SCC even/odd tie at 32 clusters as in the paper.
    assert totals["mixed_rom"] == totals["scc_even_odd"] == 32
