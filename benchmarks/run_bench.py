#!/usr/bin/env python3
"""Engine benchmark harness: legacy per-node execution vs `repro.engine`.

Times the three headline workloads of the paper on both runtimes and
writes ``BENCH_engine.json`` at the repository root so the performance
trajectory is tracked PR over PR:

1. **Table-1 DCT compile + simulate** — compile all five DCT designs
   through the flow, then execute the Mixed-ROM netlist for a batch of
   input streams on the legacy ``DataflowSimulator`` (one stream at a
   time) versus one batched ``VectorEngine`` run.
2. **Full-search motion estimation** — every macroblock of a frame,
   scored by the per-node systolic-array model versus the batched
   candidate-window evaluation (plus the scalar-vs-vectorized software
   full search for reference).
3. **5-frame hybrid encode** — the video encoder with
   ``vectorized=False`` (per-block DCT loop, per-candidate SAD loop)
   versus the batched engine path.  Both produce bit-identical streams.

Run with:  python benchmarks/run_bench.py [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from bench_record import best_of as _best_of
from bench_record import new_record, run_sections, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_dct_flow(repeats: int) -> dict:
    """Compile the Table-1 designs; simulate one on both runtimes."""
    from repro.core.simulator import DataflowSimulator
    from repro.dct import MixedRomDCT, dct_implementations
    from repro.engine import default_op_for, program_for_netlist
    from repro.flow import FlowCache, compile_many

    compile_seconds = _best_of(
        lambda: compile_many(dct_implementations(), cache=None), repeats)

    # The same workload through a FlowCache: the second pass must be all
    # hits, and the stats land in the record (cache-health trend line).
    cache = FlowCache()
    compile_many(dct_implementations(), cache=cache)
    warm_seconds = _best_of(
        lambda: compile_many(dct_implementations(), cache=cache), repeats)

    netlist = MixedRomDCT().build_netlist()
    inputs = [node.name for node in netlist.nodes
              if not netlist.fanin(node.name)]
    rng = np.random.default_rng(2004)
    cycles, streams = 64, 16
    stimulus = rng.integers(0, 256, (cycles, len(inputs), streams))

    def run_legacy() -> None:
        for stream in range(streams):
            simulator = DataflowSimulator(netlist)
            for node in netlist.nodes:
                op = default_op_for(node)
                simulator.bind(node.name, op.as_behaviour(),
                               registered=op.registered)
            for cycle in range(cycles):
                for column, name in enumerate(inputs):
                    simulator.drive(name, int(stimulus[cycle, column, stream]))
                simulator.step()

    def run_engine() -> None:
        engine = program_for_netlist(netlist, batch=streams)
        engine.run({name: stimulus[:, column, :]
                    for column, name in enumerate(inputs)})

    legacy_seconds = _best_of(run_legacy, repeats)
    engine_seconds = _best_of(run_engine, repeats)
    return {
        "description": f"compile 5 DCT designs; simulate mixed_rom netlist, "
                       f"{streams} streams x {cycles} cycles",
        "compile_seconds": round(compile_seconds, 4),
        "cached_compile_seconds": round(warm_seconds, 4),
        "cache_stats": cache.stats(),
        "legacy_seconds": round(legacy_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(legacy_seconds / engine_seconds, 2),
    }


def bench_full_search_me(repeats: int) -> dict:
    """Per-node systolic full search vs batched engine, whole frame."""
    from repro.me.full_search import (
        full_search_frame,
        full_search_scalar,
    )
    from repro.me.systolic import SystolicArray
    from repro.video import panning_sequence
    from repro.video.blocks import macroblock_positions

    sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=2004)
    reference, current = sequence.frame(0), sequence.frame(1)
    positions = macroblock_positions(current, 16)
    search_range = 4

    def run_per_node() -> None:
        array = SystolicArray()
        for top, left in positions:
            array.search(current, reference, top, left, 16, search_range)

    def run_batched() -> None:
        array = SystolicArray()
        for top, left in positions:
            array.search_batched(current, reference, top, left, 16,
                                 search_range)

    def run_scalar_software() -> None:
        for top, left in positions:
            full_search_scalar(current, reference, top, left, 16, search_range)

    def run_vectorized_software() -> None:
        full_search_frame(current, reference, 16, search_range)

    legacy_seconds = _best_of(run_per_node, repeats)
    engine_seconds = _best_of(run_batched, repeats)
    scalar_seconds = _best_of(run_scalar_software, repeats)
    vectorized_seconds = _best_of(run_vectorized_software, repeats)
    return {
        "description": f"{len(positions)} macroblocks, +-{search_range} "
                       f"window, 64x80 frame",
        "legacy_seconds": round(legacy_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(legacy_seconds / engine_seconds, 2),
        "software_scalar_seconds": round(scalar_seconds, 4),
        "software_vectorized_seconds": round(vectorized_seconds, 4),
        "software_speedup": round(scalar_seconds / vectorized_seconds, 2),
    }


def bench_encode(repeats: int) -> dict:
    """5-frame QCIF encode: legacy scalar loop vs batched engine path."""
    from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence
    from repro.video.frames import QCIF_HEIGHT, QCIF_WIDTH

    sequence = panning_sequence(height=QCIF_HEIGHT, width=QCIF_WIDTH,
                                pan=(1, 2), seed=17)
    frames = [sequence.frame(index) for index in range(5)]

    def run(vectorized: bool):
        encoder = VideoEncoder(EncoderConfiguration(vectorized=vectorized))
        return encoder.encode_sequence(frames)

    legacy_seconds = _best_of(lambda: run(False), repeats)
    engine_seconds = _best_of(lambda: run(True), repeats)
    psnr = [round(s.psnr_db, 2) for s in run(True)]
    return {
        "description": f"5 frames {QCIF_WIDTH}x{QCIF_HEIGHT}, full search "
                       f"+-8, qp 8",
        "legacy_seconds": round(legacy_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(legacy_seconds / engine_seconds, 2),
        "psnr_db": psnr,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="where to write the benchmark record")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per measurement (best-of)")
    arguments = parser.parse_args()

    record = new_record("engine")
    run_sections(record, (
        ("dct_flow", lambda: bench_dct_flow(arguments.repeats)),
        ("full_search_me", lambda: bench_full_search_me(arguments.repeats)),
        ("encode_5_frames", lambda: bench_encode(arguments.repeats)),
    ))
    for result in record["benchmarks"].values():
        print(f"  legacy {result['legacy_seconds']}s -> engine "
              f"{result['engine_seconds']}s ({result['speedup']}x)")
    cache_stats = record["benchmarks"]["dct_flow"]["cache_stats"]
    print(f"  flow cache: {cache_stats['hits']} hits / "
          f"{cache_stats['misses']} misses / "
          f"{cache_stats['evictions']} evictions")

    write_record(arguments.output, record)


if __name__ == "__main__":
    main()
