"""NoC exploration benchmark: batched simulator throughput and sweeps.

The SoC-level counterpart of the engine benchmarks: pytest-benchmark
records the batched analytic simulator evaluating a fleet of traffic
matrices (the explorer's inner loop) after asserting it matches the
scalar reference flit for flit; the committed ``BENCH_noc.json`` from
``run_bench_noc.py`` tracks the Pareto fronts and speedups PR over PR.
"""

import numpy as np
import pytest

from repro.noc import (
    Mesh2D,
    TrafficMatrix,
    clustered_traffic,
    default_grid,
    grid_sweep,
    pareto_by_workload,
    pareto_front,
    pareto_front_reference,
    simulate,
    simulate_batched,
    sweep,
    uniform_traffic,
)


@pytest.fixture(scope="module")
def traffic_fleet():
    rng = np.random.default_rng(2004)
    agents = tuple(f"n{i}" for i in range(16))
    fleet = []
    for index in range(24):
        flits = rng.integers(0, 8, (16, 16))
        np.fill_diagonal(flits, 0)
        fleet.append(TrafficMatrix(agents, flits.astype(np.int64),
                                   name=f"t{index}"))
    return fleet


@pytest.mark.benchmark(group="noc")
def test_batched_analytic_matches_scalar(benchmark, traffic_fleet):
    topology = Mesh2D(4, 4)
    results = benchmark.pedantic(
        lambda: simulate_batched(topology, traffic_fleet), rounds=3,
        iterations=1)

    for traffic, batched in zip(traffic_fleet, results):
        scalar = simulate(topology, traffic)
        assert np.array_equal(scalar.per_flow_latency,
                              batched.per_flow_latency)
        assert np.array_equal(scalar.link_loads, batched.link_loads)
        assert scalar.energy == batched.energy
    print(f"\nNoC batched analytic: {len(results)} matrices on "
          f"{topology.name}, worst latency "
          f"{max(result.max_latency_cycles for result in results)} cycles")


@pytest.mark.benchmark(group="noc")
def test_sweep_produces_a_front_per_workload(benchmark):
    workloads = {"uniform": uniform_traffic(9, 4),
                 "hotspot": uniform_traffic(9, 1)}
    points = benchmark.pedantic(
        lambda: sweep(workloads, placements=("linear", "spread")), rounds=3,
        iterations=1)
    fronts = pareto_by_workload(points)
    assert set(fronts) == set(workloads)
    assert all(front for front in fronts.values())


@pytest.mark.benchmark(group="noc")
def test_grid_sweep_scales_to_the_knob_grid(benchmark):
    workloads = {"uniform": uniform_traffic(16, 2),
                 "clustered": clustered_traffic(16, cluster_size=4)}
    specs = list(default_grid(16))
    points = benchmark.pedantic(
        lambda: grid_sweep(workloads, specs=specs,
                           placements=("linear", "spread")),
        rounds=3, iterations=1)
    assert len(points) == len(specs) * 2 * 2
    front = pareto_front(points)
    assert front == pareto_front_reference(points)
    print(f"\nNoC grid sweep: {len(specs)} specs -> {len(points)} points, "
          f"front of {len(front)}")
