"""Sec. 3.6 — power discussion: the implementations trade area, activity and cycles.

The paper performs no power measurements ("at these initial stages no power
estimation was performed") but argues that the implementations "can have
different power consumption due to the different area usage and different
signal activities".  This benchmark quantifies that argument with the
activity-based model: per-cycle switched capacitance, cycles per transform
and the resulting energy per 8-point transform for every Table 1
implementation, using the signal activity of a real pixel workload.
"""

import numpy as np
import pytest

from repro.arrays import build_da_array
from repro.dct.mapping import TABLE1_ORDER, dct_implementations
from repro.flow import compile_many
from repro.power import domain_specific_cost, power_per_block
from repro.power.activity import block_activity
from repro.reporting import format_table


@pytest.mark.benchmark(group="power")
def test_dct_implementation_energy_comparison(benchmark, pixel_block):
    implementations = {impl.name: impl for impl in dct_implementations()}
    activity = block_activity(pixel_block)

    def run():
        results = compile_many(dct_implementations(), cache=None)
        table1 = {result.design_name: result for result in results}
        fabric = build_da_array()
        rows = []
        for name in TABLE1_ORDER:
            mapped = table1[name]
            cost = domain_specific_cost(mapped.netlist, fabric, activity=activity,
                                        routing=mapped.routing)
            cycles = implementations[name].cycles_per_transform
            rows.append({
                "implementation": name,
                "clusters": mapped.usage.total_clusters,
                "cap_per_cycle": round(cost.switched_capacitance_per_cycle, 1),
                "cycles_per_transform": cycles,
                "energy_per_transform": round(power_per_block(cost, cycles), 1),
            })
        return rows

    rows = benchmark(run)
    print()
    print(format_table(rows, title=f"Energy per 8-point transform "
                                   f"(workload activity {activity:.2f})"))

    by_name = {row["implementation"]: row for row in rows}
    # Area usage and energy do not rank the implementations identically:
    # CORDIC 2 uses fewer clusters than CORDIC 1 but pays a longer schedule
    # for its time-shared rotators.
    assert by_name["cordic_2"]["clusters"] < by_name["cordic_1"]["clusters"]
    assert (by_name["cordic_2"]["cycles_per_transform"]
            > by_name["cordic_1"]["cycles_per_transform"])
    area_order = [row["implementation"] for row in
                  sorted(rows, key=lambda r: r["clusters"])]
    energy_order = [row["implementation"] for row in
                    sorted(rows, key=lambda r: r["energy_per_transform"])]
    assert area_order != energy_order
    # Every implementation consumes some energy and the spread is real
    # (largest at least 1.5x the smallest), which is what makes the choice
    # an operating-point decision rather than a wash.
    energies = [row["energy_per_transform"] for row in rows]
    assert min(energies) > 0
    assert max(energies) >= 1.5 * min(energies)
