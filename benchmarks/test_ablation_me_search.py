"""Ablation — full search vs three-step vs diamond search.

The flexibility argument of the paper rests on different implementations
of the same computation having different cost/quality trade-offs.  For
motion estimation this benchmark measures SAD-operation counts and match
quality of the three search strategies on the same synthetic pan, the
trade-off an encoder exploits when it reconfigures under battery pressure.
"""

import pytest

from repro.me.fast_search import diamond_search, three_step_search
from repro.me.full_search import full_search
from repro.reporting import format_table

SEARCH_RANGE = 8
BLOCKS = ((16, 16), (16, 32), (32, 16), (32, 32))


def run_strategy(search, current, reference):
    total_operations = 0
    total_sad = 0
    vectors = []
    for top, left in BLOCKS:
        result = search(current, reference, top, left, 16, SEARCH_RANGE)
        total_operations += result.sad_operations
        total_sad += result.best.sad
        vectors.append(result.motion_vector)
    return {"operations": total_operations, "total_sad": total_sad,
            "vectors": vectors}


@pytest.mark.benchmark(group="ablation-search")
def test_search_strategy_tradeoff(benchmark, me_frames):
    reference_frame, current_frame, true_vector = me_frames

    def run():
        return {
            "full": run_strategy(full_search, current_frame, reference_frame),
            "three_step": run_strategy(three_step_search, current_frame, reference_frame),
            "diamond": run_strategy(diamond_search, current_frame, reference_frame),
        }

    results = benchmark(run)

    rows = [{"search": name,
             "sad_operations": data["operations"],
             "total_best_sad": data["total_sad"]}
            for name, data in results.items()]
    print()
    print(format_table(rows, title="ME search ablation (4 macroblocks, +-8 window)"))

    full_result = results["full"]
    for name in ("three_step", "diamond"):
        fast = results[name]
        # Fast searches do a small fraction of the SAD work...
        assert fast["operations"] < 0.25 * full_result["operations"]
        # ...and can never beat the exhaustive minimum.
        assert fast["total_sad"] >= full_result["total_sad"]
    # On a clean global pan all strategies find the true vector.
    assert all(vector == true_vector for vector in full_result["vectors"])
    assert results["three_step"]["vectors"][0] == true_vector
