"""Fig. 5 — Mixed-ROM DCT using two 4x4 matrices.

Checks the 16x ROM reduction relative to Fig. 4, the adder/subtracter
overhead the paper mentions, and benchmarks the transform accuracy.
"""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.da_dct import FIG4_ROM_WORDS
from repro.dct.mixed_rom import FIG5_ROM_WORDS, MixedRomDCT
from repro.dct.reference import dct_1d


@pytest.mark.benchmark(group="fig5")
def test_fig5_mixed_rom_dct(benchmark, input_vectors):
    transform = MixedRomDCT()

    def run():
        return np.array([transform.forward(vector) for vector in input_vectors])

    outputs = benchmark(run)

    reference = np.array([dct_1d(vector) for vector in input_vectors])
    worst = float(np.max(np.abs(outputs - reference)))
    bound = 8 * 4096 * transform.quantisation.output_scale + 1.0
    print(f"\nFig. 5 Mixed-ROM DCT: worst-case error {worst:.3f} "
          f"(quantisation bound {bound:.1f})")
    assert worst <= bound

    netlist = transform.build_netlist()
    usage = netlist.cluster_usage()
    # "the number of words per ROM is reduced to only 16 which is 16 times
    # less than the previous implementation but some overhead has been
    # incurred in the form of adders".
    assert FIG4_ROM_WORDS // FIG5_ROM_WORDS == 16
    assert all(node.depth_words == FIG5_ROM_WORDS
               for node in netlist.nodes_of_kind(ClusterKind.MEMORY))
    assert usage.adders == 4 and usage.subtracters == 4
    assert usage.memory_clusters == 8
