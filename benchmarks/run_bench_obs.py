#!/usr/bin/env python3
"""Observability overhead benchmark: the cost of the tracer, measured.

Runs an instrumented smoke of the gop + serve + fleet stack three ways —
tracer disabled (twice, interleaved) and enabled — via
:func:`repro.obs.measure_overhead`, and *asserts* the repo's overhead
budgets: the disabled tracer must cost < 5% (measured as the ratio
between the two disabled passes, which bounds measurement noise and the
``enabled``-guard cost together) and enabling it must cost < 15%.

Also exercises the headline acceptance path: one traced fleet run,
serial and process-partitioned, must produce the identical
``trace_digest()``, and the merged trace is exported as Chrome
trace-event JSON (the CI artifact — load it at ``chrome://tracing`` or
https://ui.perfetto.dev).

Run with:  python benchmarks/run_bench_obs.py [--output BENCH_obs.json]
                                              [--trace-output trace_obs.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from bench_record import new_record, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent

#: CI-asserted overhead budgets (ratios over the disabled baseline).
DISABLED_BUDGET = 1.05
ENABLED_BUDGET = 1.15

FLEET_JOBS = 400
FLEET_SOCS = 4


def stack_smoke() -> None:
    """One pass through the instrumented gop + serve + fleet stack."""
    import numpy as np

    from repro.fleet import FleetSettings, simulate_fleet, synthetic_trace
    from repro.serve import ServeSettings, generate_jobs, serve
    from repro.video.gop import encode_sequence_parallel
    from repro.video.scenes import scene_frames

    frames = scene_frames("pan", count=8, height=48, width=48, seed=2026)
    encode_sequence_parallel(frames, strategy="lockstep", gop_size=4)

    jobs = generate_jobs("bursty_mixed", job_count=24, seed=2026)
    serve(jobs, ServeSettings(queue_capacity=16, max_batch=4))

    trace = synthetic_trace("flash_crowd", FLEET_JOBS, seed=2026)
    simulate_fleet(trace, FleetSettings(soc_count=FLEET_SOCS, steal=True,
                                        autoscale=True))


def traced_fleet_export(trace_path: Path) -> dict:
    """Serial vs partitioned fleet digests + the Chrome-trace artifact."""
    from repro import obs
    from repro.fleet import (
        FleetSettings,
        simulate_fleet_partitioned,
        synthetic_trace,
    )

    jobs = synthetic_trace("flash_crowd", FLEET_JOBS, seed=2026)
    settings = FleetSettings(soc_count=FLEET_SOCS, steal=True)

    with obs.tracing() as serial_tracer:
        simulate_fleet_partitioned(jobs, settings, partitions=2,
                                   parallel="serial")
    serial_digest = obs.trace_digest(serial_tracer)

    with obs.tracing() as partitioned_tracer:
        simulate_fleet_partitioned(jobs, settings, partitions=2,
                                   parallel="processes")
    partitioned_digest = obs.trace_digest(partitioned_tracer)

    assert serial_digest == partitioned_digest, (
        "partitioned fleet trace diverged from serial: "
        f"{serial_digest} != {partitioned_digest}")

    obs.write_chrome_trace(trace_path, partitioned_tracer)
    document = json.loads(trace_path.read_text())
    phases = {event["ph"] for event in document["traceEvents"]}
    assert phases <= {"X", "i", "M"}, f"unexpected trace phases {phases}"

    return {
        "jobs": FLEET_JOBS,
        "socs": FLEET_SOCS,
        "partitions": 2,
        "trace_digest": serial_digest,
        "digest_identical_serial_vs_partitioned": True,
        "trace_events": len(document["traceEvents"]),
        "trace_file": trace_path.name,
        "metrics": obs.metrics_snapshot(partitioned_tracer)["counters"],
    }


def main() -> None:
    from repro.obs import measure_overhead

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_obs.json",
                        help="where to write the benchmark record")
    parser.add_argument("--trace-output", type=Path,
                        default=REPO_ROOT / "trace_obs.json",
                        help="where to write the Chrome trace artifact")
    parser.add_argument("--repeats", type=int, default=5,
                        help="repetitions per measurement (best-of)")
    arguments = parser.parse_args()

    print("measuring tracer overhead (gop + serve + fleet smoke) ...",
          flush=True)
    overhead = measure_overhead(stack_smoke, repeats=arguments.repeats)
    print(f"  disabled {overhead['disabled_seconds']}s "
          f"(ratio {overhead['disabled_ratio']}, budget {DISABLED_BUDGET}), "
          f"enabled {overhead['enabled_seconds']}s "
          f"(ratio {overhead['enabled_ratio']}, budget {ENABLED_BUDGET}), "
          f"{overhead['events_per_run']} events/run")
    assert overhead["disabled_ratio"] < DISABLED_BUDGET, (
        f"disabled-tracer overhead {overhead['disabled_ratio']} exceeds "
        f"the {DISABLED_BUDGET} budget")
    assert overhead["enabled_ratio"] < ENABLED_BUDGET, (
        f"enabled-tracer overhead {overhead['enabled_ratio']} exceeds "
        f"the {ENABLED_BUDGET} budget")

    print("exporting the traced fleet run ...", flush=True)
    export = traced_fleet_export(arguments.trace_output)
    print(f"  {export['trace_events']} trace events, digest "
          f"{export['trace_digest'][:16]}… identical serial vs partitioned")

    record = new_record(
        "obs",
        budgets={"disabled_ratio": DISABLED_BUDGET,
                 "enabled_ratio": ENABLED_BUDGET},
        overhead=overhead,
        fleet_trace=export,
    )
    write_record(arguments.output, record)


if __name__ == "__main__":
    main()
