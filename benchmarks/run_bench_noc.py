#!/usr/bin/env python3
"""NoC topology-exploration benchmark: Pareto sweeps of real workloads.

Extracts traffic matrices from the repository's real workloads — the
routed Table-1 DCT netlist, a GOP-parallel video encode (sharded frames
plus the per-frame pipeline streams) and a scene-cut reconfiguration
plan — sweeps every topology family x placement over them, and writes
``BENCH_noc.json`` at the repository root with the per-workload Pareto
fronts so the communication-cost trajectory is tracked PR over PR.

Also records the batched-vs-scalar simulator speedup (the fleet of
topology/traffic pairs the explorer evaluates per sweep) after asserting
the two implementations agree flit for flit, an adaptive-vs-static
routing comparison at matched injection on the adversarial pattern set,
and latency-vs-injection-level saturation curves with their knees.

Run with:  python benchmarks/run_bench_noc.py [--output BENCH_noc.json]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from bench_record import best_of as _best_of
from bench_record import new_record, run_sections, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent

FRAME_COUNT = 16
FRAME_HEIGHT = 96
FRAME_WIDTH = 112
GOP_SIZE = 8
WORKERS = 4


def extract_workloads() -> dict:
    """Traffic matrices from the real workload stack."""
    from repro.dct import MixedRomDCT
    from repro.flow import compile as flow_compile
    from repro.noc import (
        traffic_from_gop_shards,
        traffic_from_reconfiguration,
        traffic_from_routing,
        traffic_from_video,
    )
    from repro.video import EncoderConfiguration
    from repro.video.gop import encode_sequence_parallel
    from repro.video.scenes import plan_reconfiguration, scene_frames

    compiled = flow_compile(MixedRomDCT())
    netlist_traffic = traffic_from_routing(
        compiled.routing, compiled.fabric.rows, compiled.fabric.cols,
        tiles=(3, 3))

    frames = scene_frames("pan", count=FRAME_COUNT, height=FRAME_HEIGHT,
                          width=FRAME_WIDTH, seed=2004)
    outcome = encode_sequence_parallel(
        frames, EncoderConfiguration(search_range=4), gop_size=GOP_SIZE,
        workers=WORKERS)
    shape = (FRAME_HEIGHT, FRAME_WIDTH)
    gop_traffic = traffic_from_gop_shards(
        FRAME_COUNT, WORKERS, shape,
        encoded_bits_per_frame=[stats.estimated_bits
                                for stats in outcome.statistics])
    video_traffic = traffic_from_video(outcome.statistics, shape)

    cut_frames = scene_frames("cut", count=FRAME_COUNT, height=FRAME_HEIGHT,
                              width=FRAME_WIDTH, seed=2004)
    reconf_traffic = traffic_from_reconfiguration(
        plan_reconfiguration(cut_frames))

    return {
        "dct_netlist_routed": netlist_traffic,
        "gop_parallel_video": gop_traffic,
        "video_pipeline": video_traffic,
        "reconfiguration": reconf_traffic,
    }


def bench_pareto_sweep() -> dict:
    """Topology x placement x workload sweep reduced to Pareto fronts."""
    from repro.noc import pareto_by_workload, sweep

    workloads = extract_workloads()
    started = time.perf_counter()
    points = sweep(workloads, placements=("linear", "spread", "hub"))
    sweep_seconds = time.perf_counter() - started
    fronts = pareto_by_workload(points)
    return {
        "description": "all topology families x linear/spread/hub placement "
                       "on traffic extracted from the routed mixed-ROM DCT, "
                       f"a {FRAME_COUNT}-frame GOP-parallel encode "
                       f"({WORKERS} workers), the per-frame video pipeline "
                       "and a scene-cut reconfiguration plan",
        "workloads": {name: {"agents": len(traffic.agents),
                             "flows": traffic.flow_count,
                             "flits": traffic.total_flits}
                      for name, traffic in workloads.items()},
        "points_evaluated": len(points),
        "sweep_seconds": round(sweep_seconds, 4),
        "pareto_fronts": {name: [point.summary() for point in front]
                          for name, front in fronts.items()},
    }


def bench_simulator(repeats: int) -> dict:
    """Batched vs scalar simulation over the explorer's evaluation fleet."""
    from repro.noc import Mesh2D, simulate, simulate_batched
    from repro.noc.traffic import TrafficMatrix

    rng = np.random.default_rng(2004)
    topology = Mesh2D(4, 4)
    agents = tuple(f"n{i}" for i in range(16))
    batch = []
    for index in range(32):
        flits = rng.integers(0, 8, (16, 16))
        np.fill_diagonal(flits, 0)
        batch.append(TrafficMatrix(agents, flits.astype(np.int64),
                                   name=f"t{index}"))

    report = {"description": "32 random 16-agent matrices on a 4x4 mesh, "
                             "batched evaluation vs a scalar loop"}
    for model in ("analytic", "wormhole", "wormhole_adaptive"):
        batched = simulate_batched(topology, batch, model=model)
        for traffic, result in zip(batch, batched):
            scalar = simulate(topology, traffic, model=model)
            if not (np.array_equal(scalar.per_flow_latency,
                                   result.per_flow_latency)
                    and scalar.energy == result.energy
                    and scalar.delivered_flits == result.delivered_flits):
                raise AssertionError(
                    f"batched {model} diverged from the scalar reference")
        scalar_seconds = _best_of(
            lambda m=model: [simulate(topology, traffic, model=m)
                             for traffic in batch], repeats)
        batched_seconds = _best_of(
            lambda m=model: simulate_batched(topology, batch, model=m),
            repeats)
        report[model] = {
            "parity": True,
            "scalar_seconds": round(scalar_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(scalar_seconds / batched_seconds, 2),
        }
    return report


def bench_adaptive_routing() -> dict:
    """Adaptive vs static wormhole at matched injection, adversarial set."""
    from repro.noc import (
        ADVERSARIAL_PATTERNS,
        Mesh2D,
        Torus2D,
        adversarial_traffic,
        simulate,
    )

    flits_per_flow = 16
    rows = {}
    for topology in (Mesh2D(3, 3), Torus2D(3, 4)):
        for pattern in ADVERSARIAL_PATTERNS:
            traffic = adversarial_traffic(pattern, topology.node_count,
                                          flits_per_flow=flits_per_flow)
            static = simulate(topology, traffic, model="wormhole")
            adaptive = simulate(topology, traffic,
                                model="wormhole_adaptive")
            rows[f"{topology.name}/{pattern}"] = {
                "static_delivered_mean_latency":
                    round(static.delivered_mean_latency_cycles, 2),
                "adaptive_delivered_mean_latency":
                    round(adaptive.delivered_mean_latency_cycles, 2),
                "static_cycles": static.cycles,
                "adaptive_cycles": adaptive.cycles,
                "adaptive_wins": bool(
                    adaptive.delivered_mean_latency_cycles
                    < static.delivered_mean_latency_cycles),
            }
    return {
        "description": "credit-based minimal-adaptive routing with escape "
                       "channels vs deterministic shortest-path wormhole, "
                       f"{flits_per_flow} flits per flow injected "
                       "back-to-back (matched one-flit-per-link bandwidth)",
        "patterns": rows,
    }


def bench_saturation_curves() -> dict:
    """Latency-vs-injection-level curves with their knees."""
    from repro.noc import (
        ADVERSARIAL_PATTERNS,
        Mesh2D,
        Torus2D,
        burst_traffic,
        saturation_curve,
    )

    levels = (1, 2, 4, 8, 16, 32)
    curves = {}
    for topology in (Mesh2D(3, 3), Torus2D(3, 4)):
        for pattern in ADVERSARIAL_PATTERNS:
            traffic = burst_traffic(pattern, topology.node_count,
                                    flits_per_flow=64, burst_on=1,
                                    burst_off=7)
            for model in ("wormhole", "wormhole_adaptive"):
                curve = saturation_curve(topology, traffic, levels=levels,
                                         model=model)
                curves[f"{topology.name}/{pattern}/{model}"] = curve.summary()
    return {
        "description": "delivered latency vs scaled_peak injection level "
                       "(the peak flow rescaled to exactly each level, up "
                       "or down) for the adversarial patterns on a 1/8 duty "
                       "cycle; the knee is the largest level absorbed "
                       "without saturating",
        "levels": list(levels),
        "curves": curves,
    }


def bench_hierarchical_grid() -> dict:
    """Thousand-point hierarchical topology grid with Pareto fronts."""
    from repro.noc import (
        ADVERSARIAL_PATTERNS,
        adversarial_traffic,
        clustered_traffic,
        default_grid,
        grid_sweep,
        pareto_by_workload,
        uniform_traffic,
    )

    agent_count = 16
    workloads = {pattern: adversarial_traffic(pattern, agent_count,
                                              flits_per_flow=4)
                 for pattern in ADVERSARIAL_PATTERNS}
    workloads["uniform"] = uniform_traffic(agent_count, 2)
    workloads["uniform_light"] = uniform_traffic(agent_count, 1)
    workloads["clustered4"] = clustered_traffic(agent_count, cluster_size=4)
    workloads["clustered2"] = clustered_traffic(agent_count, cluster_size=2,
                                                local_flits=4)

    # The widened knob grid: cluster geometry x hub clocking, pillar
    # density x TSV pricing, express stride and IO-column pricing.
    specs = list(default_grid(agent_count,
                              cluster_sides=(2, 3),
                              hub_speedups=(1, 2, 3),
                              pillar_strides=(1, 2, 3, 4),
                              tsv_latencies=(2, 3, 4),
                              express_strides=(2, 3, 4, 5),
                              io_latencies=(1, 2, 3),
                              hub_counts=(1, 2, 3)))
    placements = ("linear", "spread", "hub")

    started = time.perf_counter()
    serial = grid_sweep(workloads, specs=specs, placements=placements)
    serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    parallel = grid_sweep(workloads, specs=specs, placements=placements,
                          parallel="processes")
    parallel_seconds = time.perf_counter() - started
    if parallel != serial:
        raise AssertionError(
            "process-parallel grid sweep diverged from the serial sweep")

    fronts = pareto_by_workload(serial)
    return {
        "description": "hierarchical knob grid (cluster side x hub speedup, "
                       "pillar stride x TSV latency, express stride, IO "
                       "pricing) x linear/spread/hub placement over the "
                       "adversarial set plus uniform and clustered traffic; "
                       "process-parallel sweep asserted bit-identical to "
                       "serial",
        "specs": len(specs),
        "placements": list(placements),
        "workloads": {name: {"agents": len(traffic.agents),
                             "flows": traffic.flow_count,
                             "flits": traffic.total_flits}
                      for name, traffic in workloads.items()},
        "points_evaluated": len(serial),
        "serial_seconds": round(serial_seconds, 4),
        "processes_seconds": round(parallel_seconds, 4),
        "processes_identical": True,
        "pareto_front_sizes": {name: len(front)
                               for name, front in fronts.items()},
        "pareto_fronts": {name: [point.summary() for point in front]
                          for name, front in fronts.items()},
    }


def bench_flow_integration(repeats: int) -> dict:
    """Communication metrics through ``Flow.with_noc`` on Table-1 kernels."""
    from repro.flow import Flow
    from repro.video.scenes import dct_implementation_by_name

    rows = {}
    for name in ("mixed_rom", "cordic2", "scc_direct"):
        result = Flow.with_noc(tiles=(3, 3)).compile(
            dct_implementation_by_name(name), cache=None)
        rows[name] = {
            "noc_latency_cycles": result.metrics.noc_latency_cycles,
            "noc_energy": round(result.metrics.noc_energy, 2),
            "noc_flows": result.noc.flow_count,
            "routed_hops": result.metrics.routed_hops,
        }
    seconds = _best_of(
        lambda: Flow.with_noc(tiles=(3, 3)).compile(
            dct_implementation_by_name("mixed_rom"), cache=None), repeats)
    return {
        "description": "Flow.with_noc on Table-1 DCT kernels: communication "
                       "latency/energy reported beside area and timing "
                       "(3x3 tile grid over the DA array)",
        "kernels": rows,
        "compile_seconds": round(seconds, 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_noc.json",
                        help="where to write the benchmark record")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per measurement (best-of)")
    arguments = parser.parse_args()

    record = new_record("noc")
    run_sections(record, (
        ("pareto_sweep", bench_pareto_sweep),
        ("simulator", lambda: bench_simulator(arguments.repeats)),
        ("adaptive_routing", bench_adaptive_routing),
        ("saturation_curves", bench_saturation_curves),
        ("hierarchical_grid", bench_hierarchical_grid),
        ("flow_integration",
         lambda: bench_flow_integration(arguments.repeats)),
    ))

    sweep_record = record["benchmarks"]["pareto_sweep"]
    simulator = record["benchmarks"]["simulator"]
    adaptive = record["benchmarks"]["adaptive_routing"]["patterns"]
    grid = record["benchmarks"]["hierarchical_grid"]
    wins = sum(1 for row in adaptive.values() if row["adaptive_wins"])
    print(f"  {sweep_record['points_evaluated']} design points in "
          f"{sweep_record['sweep_seconds']}s; batched analytic "
          f"{simulator['analytic']['speedup']}x, wormhole "
          f"{simulator['wormhole']['speedup']}x, adaptive "
          f"{simulator['wormhole_adaptive']['speedup']}x vs scalar; "
          f"adaptive routing wins {wins}/{len(adaptive)} adversarial cases; "
          f"hierarchical grid {grid['points_evaluated']} points "
          f"(serial {grid['serial_seconds']}s, processes "
          f"{grid['processes_seconds']}s, identical)")

    write_record(arguments.output, record)


if __name__ == "__main__":
    main()
