"""Ablation — array sizing: spatial mapping vs time-multiplexed folding.

The DA array of Fig. 3 is sized so that every Table 1 implementation fits
spatially.  A smaller array instance can still run the same kernels by
time-sharing its clusters (the mechanism the scaled CORDIC architecture
already uses for its rotators); the price is schedule length.  This
ablation sweeps DA-array instances of decreasing size and reports, for the
largest DCT mapping (CORDIC #1), the fold factor of the scarcest resource
and the resulting schedule length from the resource-constrained list
scheduler — the area/throughput trade-off an SoC integrator would tune.
"""

import pytest

from repro.arrays.da_array import DAArrayGeometry, build_da_array
from repro.core.clusters import ClusterKind
from repro.core.scheduler import ListScheduler, fold_factor
from repro.dct import CordicDCT1
from repro.reporting import format_table

GEOMETRIES = (
    ("full (10x8)", DAArrayGeometry(rows=10, add_shift_columns=6, memory_columns=2)),
    ("half (5x8)", DAArrayGeometry(rows=5, add_shift_columns=6, memory_columns=2)),
    ("quarter (5x4)", DAArrayGeometry(rows=5, add_shift_columns=3, memory_columns=1)),
    ("eighth (3x3)", DAArrayGeometry(rows=3, add_shift_columns=2, memory_columns=1)),
)


@pytest.mark.benchmark(group="ablation-sizing")
def test_array_sizing_versus_schedule_length(benchmark):
    netlist = CordicDCT1().build_netlist()

    def run():
        rows = []
        for label, geometry in GEOMETRIES:
            fabric = build_da_array(geometry)
            capacity = fabric.capacity()
            schedule = ListScheduler.for_fabric(fabric).schedule(netlist)
            rows.append({
                "array_instance": label,
                "add_shift_sites": capacity[ClusterKind.ADD_SHIFT],
                "memory_sites": capacity[ClusterKind.MEMORY],
                "fold_factor": round(fold_factor(netlist, capacity), 2),
                "schedule_cycles": schedule.length_cycles,
                "utilisation_pct": round(100 * schedule.utilisation(capacity), 1),
            })
        return rows

    rows = benchmark(run)
    print()
    print(format_table(rows, title="CORDIC #1 DCT on shrinking DA-array instances"))

    # Shape: smaller arrays fold more and need longer schedules; the full
    # array runs the kernel at its dependency-limited length.
    cycles = [row["schedule_cycles"] for row in rows]
    folds = [row["fold_factor"] for row in rows]
    assert cycles == sorted(cycles)
    assert folds == sorted(folds)
    assert folds[0] == 1.0
    assert cycles[-1] > cycles[0]
    # Utilisation improves as the array shrinks (fewer idle clusters).
    assert rows[-1]["utilisation_pct"] > rows[0]["utilisation_pct"]
