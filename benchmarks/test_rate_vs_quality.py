"""Sec. 5 operating points — rate vs quality when the quantiser changes.

The conclusion's "noisy channel" scenario spends fewer bits by quantising
harder while the arrays keep running the same kernels.  This benchmark
encodes the same short sequence at several quantiser settings and reports
the estimated bit budget (zig-zag + run-length + universal-code model) and
PSNR, checking the monotone rate/quality trade-off the operating-point
switch relies on.
"""

import numpy as np
import pytest

from repro.reporting import format_table
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence

QPS = (2, 6, 12, 24)
FRAME_COUNT = 3


@pytest.mark.benchmark(group="rate")
def test_rate_quality_tradeoff_across_quantiser_settings(benchmark):
    sequence = panning_sequence(height=64, width=64, pan=(1, 1), seed=29)
    frames = [sequence.frame(i) for i in range(FRAME_COUNT)]

    def run():
        rows = []
        for qp in QPS:
            encoder = VideoEncoder(EncoderConfiguration(qp=qp, search_range=3))
            statistics = encoder.encode_sequence(frames)
            rows.append({
                "qp": qp,
                "mean_psnr_db": round(float(np.mean([s.psnr_db for s in statistics])), 2),
                "total_bits": sum(s.estimated_bits for s in statistics),
                "bits_per_p_frame": statistics[-1].estimated_bits,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(format_table(rows, title=f"Rate / quality over {FRAME_COUNT} frames "
                                   f"(64x64 pan, full search)"))

    psnrs = [row["mean_psnr_db"] for row in rows]
    bits = [row["total_bits"] for row in rows]
    # Coarser quantisation must cost fewer bits and less quality, monotonically.
    assert bits == sorted(bits, reverse=True)
    assert psnrs == sorted(psnrs, reverse=True)
    # The knob is powerful enough to matter: at least 2x rate range across
    # the sweep, with the lowest setting still above 30 dB.
    assert bits[0] > 2 * bits[-1]
    assert psnrs[-1] > 25.0
    assert psnrs[0] > 35.0
