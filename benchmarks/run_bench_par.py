#!/usr/bin/env python3
"""Multiprocess-backend scaling benchmark: gop / fleet / compile sections.

Measures the three ``repro.par`` integration points against their serial
references at 1, 2 and 4 workers, asserting bit-identity in-harness
before any timing is recorded:

* **gop** — an 8-GOP QCIF encode, serial vs ``strategy="processes"``
  (frames through shared memory, one warm pool per worker count);
* **fleet** — a 600-job synthetic trace over 8 SoCs, single-process
  ``simulate_fleet`` vs ``simulate_fleet_partitioned``;
* **compile** — six DCT designs through ``compile_many``, serial vs
  ``parallel="processes"`` with a cold cache per run.

Writes ``BENCH_par.json`` at the repository root.  Speedup targets
(>= 1.7x at 2 workers, >= 3.0x at 4 workers for the 8-GOP encode) are
asserted only when the host actually has that many cores — a single-core
container records honest sub-1x numbers instead of failing, since the
harness exists to catch regressions on multicore CI runners.

Run with:  python benchmarks/run_bench_par.py [--output BENCH_par.json]
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from bench_record import best_of as _best_of
from bench_record import new_record, run_sections, write_record

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKER_SWEEP = (1, 2, 4)
GOP_FRAME_COUNT = 32
GOP_SIZE = 4  # 32 frames -> 8 closed GOPs, the scaling target's workload
FLEET_JOBS = 600
FLEET_SOCS = 8

#: Scaling floors asserted when the host has at least this many cores.
SPEEDUP_TARGETS = {2: 1.7, 4: 3.0}


def _assert_scaling(section: str, speedups: dict) -> None:
    cores = os.cpu_count() or 1
    for workers, floor in SPEEDUP_TARGETS.items():
        if cores >= workers and speedups.get(workers, 0.0) < floor:
            raise AssertionError(
                f"{section}: {speedups[workers]}x at {workers} workers on a "
                f"{cores}-core host, expected >= {floor}x")


def bench_gop(repeats: int) -> dict:
    """The 8-GOP QCIF encode: serial vs processes at each worker count."""
    from repro.par import ProcessBackend, leaked_segments
    from repro.video.frames import (
        QCIF_HEIGHT,
        QCIF_WIDTH,
        MovingObject,
        SyntheticSequence,
    )
    from repro.video.gop import encode_sequence_parallel, stream_digest

    sequence = SyntheticSequence(
        height=QCIF_HEIGHT, width=QCIF_WIDTH, global_motion=(1, 2),
        objects=[MovingObject(top=48, left=40, height=24, width=24,
                              velocity=(1, 1))],
        seed=2004)
    frames = [sequence.frame(index) for index in range(GOP_FRAME_COUNT)]
    from repro.video import EncoderConfiguration

    configuration = EncoderConfiguration()
    serial = encode_sequence_parallel(frames, configuration,
                                      gop_size=GOP_SIZE, strategy="serial")
    reference_digest = stream_digest(serial.statistics)
    serial_seconds = _best_of(
        lambda: encode_sequence_parallel(frames, configuration,
                                         gop_size=GOP_SIZE,
                                         strategy="serial"), repeats)

    sweep, speedups = {}, {}
    for workers in WORKER_SWEEP:
        with ProcessBackend(workers=workers) as backend:
            def run():
                return encode_sequence_parallel(
                    frames, configuration, gop_size=GOP_SIZE,
                    strategy="processes", workers=workers, backend=backend)
            outcome = run()
            if stream_digest(outcome.statistics) != reference_digest:
                raise AssertionError(
                    f"processes encode at {workers} workers diverged "
                    f"from the serial stream")
            seconds = _best_of(run, repeats)
        if leaked_segments():
            raise AssertionError(f"leaked /dev/shm segments: "
                                 f"{leaked_segments()}")
        speedups[workers] = round(serial_seconds / seconds, 2)
        sweep[str(workers)] = {"seconds": round(seconds, 4),
                               "speedup": speedups[workers]}
    _assert_scaling("gop", speedups)
    return {
        "description": f"{GOP_FRAME_COUNT} frames QCIF pan + moving object, "
                       f"gop {GOP_SIZE} -> {len(serial.gops)} closed GOPs, "
                       f"serial vs strategy='processes'",
        "gops": len(serial.gops),
        "bit_identical": True,
        "serial_seconds": round(serial_seconds, 4),
        "workers": sweep,
    }


def bench_fleet(repeats: int) -> dict:
    """The 600-job fleet trace: one event loop vs partitioned processes."""
    from repro.fleet import (
        FleetSettings,
        execute_fleet_serial,
        simulate_fleet,
        simulate_fleet_partitioned,
        synthetic_trace,
    )
    from repro.par import ProcessBackend
    from repro.serve.kernels import KernelLibrary

    jobs = synthetic_trace("diurnal", FLEET_JOBS, seed=2026, mean_gap=900)
    settings = FleetSettings(soc_count=FLEET_SOCS, queue_capacity=256)
    naive = {result.job_id: result.digest
             for result in execute_fleet_serial(jobs)}
    whole = simulate_fleet(jobs, settings, library=KernelLibrary())
    serial_seconds = _best_of(
        lambda: simulate_fleet(jobs, settings, library=KernelLibrary()),
        repeats)

    sweep, speedups = {}, {}
    for workers in WORKER_SWEEP:
        with ProcessBackend(workers=workers) as backend:
            def run():
                return simulate_fleet_partitioned(
                    jobs, settings, partitions=workers,
                    parallel="processes" if workers > 1 else "serial",
                    backend=backend)
            report = run()
            digests = report.digests
            if digests != {job_id: naive[job_id] for job_id in digests}:
                raise AssertionError(
                    f"partitioned fleet at {workers} workers changed a "
                    f"payload digest")
            if not report.conserved:
                raise AssertionError(
                    f"partitioned fleet at {workers} workers lost a job")
            seconds = _best_of(run, repeats)
        speedups[workers] = round(serial_seconds / seconds, 2)
        sweep[str(workers)] = {"seconds": round(seconds, 4),
                               "speedup": speedups[workers],
                               "completed": report.completed}
    return {
        "description": f"{FLEET_JOBS} diurnal jobs over {FLEET_SOCS} SoCs, "
                       f"simulate_fleet vs simulate_fleet_partitioned",
        "bit_identical": True,
        "whole_fleet_completed": whole.completed,
        "serial_seconds": round(serial_seconds, 4),
        "workers": sweep,
    }


def bench_compile(repeats: int) -> dict:
    """Six DCT designs through compile_many: serial vs processes."""
    from repro.dct import (
        CordicDCT1,
        CordicDCT2,
        DistributedArithmeticDCT,
        MixedRomDCT,
        SCCDirectDCT,
        SCCEvenOddDCT,
    )
    from repro.flow import compile_many
    from repro.par import ProcessBackend

    factories = (MixedRomDCT, SCCDirectDCT, SCCEvenOddDCT,
                 CordicDCT1, CordicDCT2, DistributedArithmeticDCT)

    def designs():
        return [factory() for factory in factories]

    serial_results = compile_many(designs(), cache=None, parallel="serial")
    reference = [result.bitstream.serialize() for result in serial_results]
    serial_seconds = _best_of(
        lambda: compile_many(designs(), cache=None, parallel="serial"),
        repeats)

    sweep, speedups = {}, {}
    for workers in WORKER_SWEEP:
        with ProcessBackend(workers=workers) as backend:
            def run():
                return compile_many(designs(), cache=None,
                                    parallel="processes",
                                    max_workers=workers, backend=backend)
            results = run()
            if [result.bitstream.serialize() for result in results] \
                    != reference:
                raise AssertionError(
                    f"processes compile at {workers} workers diverged "
                    f"from serial bitstreams")
            seconds = _best_of(run, repeats)
        speedups[workers] = round(serial_seconds / seconds, 2)
        sweep[str(workers)] = {"seconds": round(seconds, 4),
                               "speedup": speedups[workers]}
    return {
        "description": f"{len(factories)} DCT designs through compile_many, "
                       f"cold cache, serial vs parallel='processes'",
        "designs": len(factories),
        "bit_identical": True,
        "serial_seconds": round(serial_seconds, 4),
        "workers": sweep,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_par.json",
                        help="where to write the benchmark record")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per measurement (best-of)")
    arguments = parser.parse_args()

    record = new_record("par", worker_sweep=list(WORKER_SWEEP))
    run_sections(record, (
        ("gop", lambda: bench_gop(arguments.repeats)),
        ("fleet", lambda: bench_fleet(arguments.repeats)),
        ("compile", lambda: bench_compile(arguments.repeats)),
    ))
    for section in record["benchmarks"].values():
        sweep = ", ".join(
            f"{workers}w {entry['speedup']}x"
            for workers, entry in section["workers"].items())
        print(f"  serial {section['serial_seconds']}s | {sweep}")

    write_record(arguments.output, record)


if __name__ == "__main__":
    main()
