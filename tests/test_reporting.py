"""Tests of the plain-text reporting helpers."""

from repro.reporting import format_comparison, format_table


class TestFormatTable:
    def test_header_and_rows_rendered(self):
        rows = [{"name": "a", "value": 1}, {"name": "b", "value": 22}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "a" in lines[3] and "22" in lines[4]

    def test_explicit_column_order(self):
        rows = [{"x": 1, "y": 2}]
        text = format_table(rows, columns=["y", "x"])
        header = text.splitlines()[0]
        assert header.index("y") < header.index("x")

    def test_missing_cells_render_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text

    def test_floats_are_rounded(self):
        text = format_table([{"v": 3.14159}])
        assert "3.14" in text

    def test_empty_rows_return_title(self):
        assert format_table([], title="nothing") == "nothing"

    def test_union_of_keys_across_rows(self):
        """Keys absent from the first row must not be silently dropped."""
        rows = [{"design": "a", "total_clusters": 32},
                {"design": "b", "total_clusters": 24,
                 "engine_levels": 2, "engine_registers": 16,
                 "noc_latency_cycles": 24, "noc_energy": 25.92}]
        text = format_table(rows)
        header = text.splitlines()[0]
        for column in ("engine_levels", "engine_registers",
                       "noc_latency_cycles", "noc_energy"):
            assert column in header
        assert "25.92" in text

    def test_union_preserves_first_seen_order(self):
        text = format_table([{"b": 1}, {"a": 2, "b": 3}])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")


class TestFormatComparison:
    def test_lists_paper_and_measured_values(self):
        text = format_comparison("Table 1", {"total": 32}, {"total": 32})
        assert "Table 1" in text
        assert "paper=" in text and "measured=" in text
