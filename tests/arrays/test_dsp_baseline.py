"""Tests of the programmable-DSP baseline model."""

import pytest

from repro.arrays.dsp_baseline import DSPModel


class TestCycleModel:
    def test_dct_cycle_count_scales_with_mac_throughput(self):
        single = DSPModel("single", macs_per_cycle=1.0)
        vliw = DSPModel("vliw", macs_per_cycle=4.0)
        assert vliw.dct_8x8_cycles() < single.dct_8x8_cycles()
        assert single.dct_8x8_cycles() > 16 * 8 * 8   # at least one cycle per MAC

    def test_sad_cycles_cover_every_pixel(self):
        model = DSPModel()
        assert model.sad_16x16_cycles() >= 16 * 16

    def test_full_search_scales_with_window(self):
        model = DSPModel()
        assert model.full_search_cycles(8) == 4 * model.full_search_cycles(4)

    def test_macroblock_cycles_include_both_kernels(self):
        model = DSPModel()
        assert model.macroblock_cycles() > model.full_search_cycles()
        assert model.macroblock_cycles() > 4 * model.dct_8x8_cycles()


class TestIntroductionClaim:
    def test_dsp_needs_a_much_higher_clock_than_the_systolic_array(self):
        # Intro: running ME/DCT on DSPs "leads to a high operating frequency
        # and increased power consumption".  The systolic array processes a
        # +-8 full search in 256 candidates / 4 modules * 16 cycles = 1024
        # cycles per macroblock; the single-MAC DSP needs two orders of
        # magnitude more.
        dsp = DSPModel()
        array_cycles_per_macroblock = (16 * 16) // 4 * 16 + 4 * 12
        dsp_cycles = dsp.macroblock_cycles(search_range=8)
        assert dsp_cycles > 100 * array_cycles_per_macroblock

    def test_qcif_realtime_frequency_exceeds_hundreds_of_mhz(self):
        assert DSPModel().required_frequency_hz() > 300e6

    def test_energy_scales_with_cycles(self):
        dsp = DSPModel()
        assert dsp.energy_per_macroblock(8) > dsp.energy_per_macroblock(4)
