"""Tests of the DA/DCT array definition (Fig. 3)."""

import pytest

from repro.arrays.da_array import (
    ADD_SHIFT_BITS,
    DAArrayGeometry,
    MEMORY_DEPTH_WORDS,
    MEMORY_WORD_BITS,
    build_da_array,
)
from repro.core.clusters import ClusterKind
from repro.dct.mapping import PAPER_TABLE1


class TestGeometry:
    def test_capacity_matches_band_sizes(self):
        geometry = DAArrayGeometry(rows=5, add_shift_columns=4, memory_columns=2)
        capacity = geometry.capacity()
        assert capacity[ClusterKind.ADD_SHIFT] == 20
        assert capacity[ClusterKind.MEMORY] == 10

    def test_cols_sum_bands(self):
        geometry = DAArrayGeometry(rows=5, add_shift_columns=4, memory_columns=2)
        assert geometry.cols == 6


class TestFabric:
    def test_default_array_fits_every_table1_implementation(self):
        capacity = build_da_array().capacity()
        for row in PAPER_TABLE1.values():
            assert capacity[ClusterKind.ADD_SHIFT] >= row["add_shift_total"]
            assert capacity[ClusterKind.MEMORY] >= row["memory_clusters"]

    def test_memory_cluster_geometry(self):
        fabric = build_da_array()
        memory_site = fabric.sites_of_kind(ClusterKind.MEMORY)[0]
        assert memory_site.spec.width_bits == MEMORY_WORD_BITS
        assert memory_site.spec.depth_words == MEMORY_DEPTH_WORDS

    def test_add_shift_width(self):
        fabric = build_da_array()
        site = fabric.sites_of_kind(ClusterKind.ADD_SHIFT)[0]
        assert site.spec.width_bits == ADD_SHIFT_BITS

    def test_every_site_is_populated(self):
        fabric = build_da_array()
        assert fabric.total_cluster_sites() == fabric.rows * fabric.cols

    def test_only_da_cluster_kinds_present(self):
        capacity = build_da_array().capacity()
        assert set(capacity) == {ClusterKind.ADD_SHIFT, ClusterKind.MEMORY}
