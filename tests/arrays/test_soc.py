"""Tests of the reconfigurable SoC wrapper (Fig. 1)."""

import pytest

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.core.exceptions import ConfigurationError
from repro.dct import MixedRomDCT, SCCDirectDCT
from repro.me import build_pe_netlist


@pytest.fixture
def soc() -> ReconfigurableSoC:
    soc = ReconfigurableSoC()
    soc.attach_array(build_da_array())
    soc.attach_array(build_me_array())
    return soc


class TestArrayManagement:
    def test_attach_and_lookup(self, soc):
        assert set(soc.array_names) == {"da_array", "me_array"}
        assert soc.array("da_array").name == "da_array"

    def test_duplicate_attach_rejected(self, soc):
        with pytest.raises(ConfigurationError):
            soc.attach_array(build_da_array())

    def test_unknown_array_rejected(self, soc):
        with pytest.raises(ConfigurationError):
            soc.array("gpu")

    def test_invalid_bus_width_rejected(self):
        with pytest.raises(ConfigurationError):
            ReconfigurableSoC(configuration_bus_bits=0)


class TestMappingFlow:
    def test_compile_produces_bitstream(self, soc):
        kernel = soc.compile(MixedRomDCT())
        assert kernel.bitstream.total_bits() > 0
        assert len(kernel.placement) == len(kernel.netlist)

    def test_load_records_reconfiguration_event(self, soc):
        kernel = soc.compile_and_load(MixedRomDCT())
        assert soc.loaded_kernel("da_array") is kernel
        assert soc.reconfiguration_count("da_array") == 1
        assert soc.total_reconfiguration_cycles() > 0
        assert soc.total_reconfiguration_bits() == kernel.bitstream.total_bits()

    def test_switching_kernels_accumulates_traffic(self, soc):
        first = soc.compile_and_load(MixedRomDCT())
        second = soc.compile_and_load(SCCDirectDCT())
        assert soc.loaded_kernel("da_array") is second
        assert soc.reconfiguration_count() == 2
        assert (soc.total_reconfiguration_bits()
                == first.bitstream.total_bits() + second.bitstream.total_bits())

    def test_me_kernel_maps_on_me_array(self, soc):
        kernel = soc.compile_and_load(build_pe_netlist(), "me_array")
        assert kernel.fabric_name == "me_array"
        assert soc.loaded_kernel("me_array") is kernel

    def test_wider_configuration_bus_loads_faster(self):
        narrow = ReconfigurableSoC(configuration_bus_bits=8)
        wide = ReconfigurableSoC(configuration_bus_bits=64)
        for soc in (narrow, wide):
            soc.attach_array(build_da_array())
        narrow.compile_and_load(SCCDirectDCT())
        wide.compile_and_load(SCCDirectDCT())
        assert (narrow.reconfiguration_log[0].cycles
                > wide.reconfiguration_log[0].cycles)

    def test_annealing_flow_also_routes(self):
        soc = ReconfigurableSoC(use_annealing=True, seed=1)
        soc.attach_array(build_da_array())
        kernel = soc.compile(MixedRomDCT())
        assert kernel.routing.total_hops > 0
