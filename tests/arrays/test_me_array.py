"""Tests of the ME array definition (Fig. 2)."""

import pytest

from repro.arrays.me_array import MEArrayGeometry, PIXEL_BITS, SAD_BITS, build_me_array
from repro.core.clusters import ClusterKind


class TestGeometry:
    def test_default_geometry_column_count(self):
        geometry = MEArrayGeometry()
        assert geometry.cols == (geometry.mux_columns + geometry.abs_diff_columns
                                 + geometry.add_acc_columns + geometry.comparator_columns)

    def test_capacity_matches_band_sizes(self):
        geometry = MEArrayGeometry(rows=4, mux_columns=1, abs_diff_columns=2,
                                   add_acc_columns=3, comparator_columns=1)
        capacity = geometry.capacity()
        assert capacity[ClusterKind.REGISTER_MUX] == 4
        assert capacity[ClusterKind.ABS_DIFF] == 8
        assert capacity[ClusterKind.ADD_ACC] == 12
        assert capacity[ClusterKind.COMPARATOR] == 4


class TestFabric:
    def test_default_array_provides_all_me_cluster_kinds(self):
        fabric = build_me_array()
        capacity = fabric.capacity()
        for kind in (ClusterKind.REGISTER_MUX, ClusterKind.ABS_DIFF,
                     ClusterKind.ADD_ACC, ClusterKind.COMPARATOR):
            assert capacity.get(kind, 0) > 0

    def test_default_array_fits_the_64_pe_systolic_engine(self):
        # Fig. 11 needs 64 of each PE cluster kind plus one comparator.
        capacity = build_me_array().capacity()
        assert capacity[ClusterKind.REGISTER_MUX] >= 64
        assert capacity[ClusterKind.ABS_DIFF] >= 64
        assert capacity[ClusterKind.ADD_ACC] >= 64
        assert capacity[ClusterKind.COMPARATOR] >= 1

    def test_datapath_widths(self):
        fabric = build_me_array()
        mux_site = fabric.sites_of_kind(ClusterKind.REGISTER_MUX)[0]
        acc_site = fabric.sites_of_kind(ClusterKind.ADD_ACC)[0]
        assert mux_site.spec.width_bits == PIXEL_BITS
        assert acc_site.spec.width_bits == SAD_BITS

    def test_every_site_is_populated(self):
        fabric = build_me_array()
        assert fabric.total_cluster_sites() == fabric.rows * fabric.cols

    def test_custom_geometry_respected(self):
        geometry = MEArrayGeometry(rows=4, mux_columns=1, abs_diff_columns=1,
                                   add_acc_columns=1, comparator_columns=1)
        fabric = build_me_array(geometry)
        assert fabric.rows == 4
        assert fabric.cols == 4
        assert fabric.capacity()[ClusterKind.COMPARATOR] == 4
