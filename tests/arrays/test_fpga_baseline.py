"""Tests of the generic-FPGA baseline cost model."""

import pytest

from repro.arrays.fpga_baseline import map_to_fpga
from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist


def logic_netlist(nodes: int = 4) -> Netlist:
    netlist = Netlist(f"logic{nodes}")
    previous = None
    for i in range(nodes):
        netlist.add_node(f"n{i}", ClusterKind.ADD_SHIFT, width_bits=16)
        if previous:
            netlist.connect(previous, f"n{i}", width_bits=16)
        previous = f"n{i}"
    return netlist


def rom_netlist(depth: int) -> Netlist:
    netlist = Netlist(f"rom{depth}")
    netlist.add_node("rom", ClusterKind.MEMORY, width_bits=8, depth_words=depth)
    return netlist


class TestResourceMapping:
    def test_lut_count_scales_with_logic(self):
        small = map_to_fpga(logic_netlist(2))
        large = map_to_fpga(logic_netlist(6))
        assert large.lut_count > small.lut_count
        assert large.area_elements > small.area_elements

    def test_memory_maps_onto_lut_ram(self):
        shallow = map_to_fpga(rom_netlist(16))
        deep = map_to_fpga(rom_netlist(256))
        assert deep.lut_count > shallow.lut_count

    def test_flip_flops_follow_register_bits(self):
        implementation = map_to_fpga(logic_netlist(3))
        assert implementation.flip_flop_count == 3 * 16

    def test_delay_grows_with_logic_depth(self):
        assert (map_to_fpga(logic_netlist(6)).critical_path_delay
                > map_to_fpga(logic_netlist(2)).critical_path_delay)

    def test_power_scales_with_activity(self):
        low = map_to_fpga(logic_netlist(4), activity=0.1)
        high = map_to_fpga(logic_netlist(4), activity=0.5)
        assert high.switched_capacitance_per_cycle > low.switched_capacitance_per_cycle

    def test_max_frequency_reciprocal(self):
        implementation = map_to_fpga(logic_netlist(3))
        assert implementation.max_frequency == pytest.approx(
            1.0 / implementation.critical_path_delay)
