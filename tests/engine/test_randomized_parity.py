"""Seeded randomized parity: engine kernels against scalar references.

The hand-picked parity suite (test_parity.py) pins known configurations;
this one draws ~200 random cases under fixed seeds across block sizes,
search ranges, frame shapes and value ranges (8-bit pixels and wide int16
data), checking that every batched engine path is bit-identical to the
scalar implementation it replaced:

* ``full_search`` (vectorized) vs ``full_search_scalar``
* ``sad_surfaces_many`` / ``full_search_winners`` (stacked, grid and
  irregular positions, screened and fallback) vs per-call
  ``sad_surface`` + ``best_displacement``
* batched DCT/IDCT vs per-block transforms
* batched ``quantise``/``dequantise`` vs per-block calls
* batched entropy estimate vs the scalar estimator
"""

import numpy as np
import pytest

from repro.dct.quantization import MAX_QP, MIN_QP, dequantise, quantise
from repro.dct.reference import dct_2d, dct_2d_batched, idct_2d, idct_2d_batched
from repro.engine.kernels import (
    best_displacement,
    best_displacements,
    displacement_grid,
    full_search_winners,
    sad_surface,
    sad_surfaces_many,
)
from repro.me.full_search import full_search, full_search_scalar
from repro.video.blocks import macroblock_positions
from repro.video.entropy import (
    estimate_block_bits,
    estimate_block_bits_batched,
    macroblock_header_bits,
    macroblock_header_bits_batched,
)


def random_frame_pair(rng, height, width, wide):
    """A (current, reference) pair: 8-bit pixels or wide int16 values."""
    if wide:
        return (rng.integers(-30000, 30001, (height, width)),
                rng.integers(-30000, 30001, (height, width)))
    return (rng.integers(0, 256, (height, width)),
            rng.integers(0, 256, (height, width)))


class TestFullSearchParity:
    """full_search vs full_search_scalar over drawn configurations."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_cases(self, seed):
        rng = np.random.default_rng(1000 + seed)
        for _ in range(6):                       # 60 drawn cases
            block_size = int(rng.choice([8, 16]))
            search_range = int(rng.integers(2, 9))
            wide = bool(rng.integers(0, 2))
            height = block_size * int(rng.integers(2, 5))
            width = block_size * int(rng.integers(2, 5))
            current, reference = random_frame_pair(rng, height, width, wide)
            top = block_size * int(rng.integers(0, height // block_size))
            left = block_size * int(rng.integers(0, width // block_size))
            vectorized = full_search(current, reference, top, left,
                                     block_size, search_range)
            scalar = full_search_scalar(current, reference, top, left,
                                        block_size, search_range)
            assert vectorized.best == scalar.best
            assert (vectorized.candidates_evaluated
                    == scalar.candidates_evaluated)
            assert vectorized.sad_operations == scalar.sad_operations

    @pytest.mark.parametrize("seed", range(4))
    def test_include_upper_window(self, seed):
        rng = np.random.default_rng(2000 + seed)
        current, reference = random_frame_pair(rng, 32, 32, False)
        vectorized = full_search(current, reference, 16, 16, 16, 4,
                                 include_upper=True)
        scalar = full_search_scalar(current, reference, 16, 16, 16, 4,
                                    include_upper=True)
        assert vectorized.best == scalar.best


class TestStackedSearchParity:
    """Stacked surfaces and screened winners vs per-call references."""

    @pytest.mark.parametrize("seed,wide", [(0, False), (1, False), (2, True),
                                           (3, False), (4, True)])
    def test_grid_surfaces_and_winners(self, seed, wide):
        rng = np.random.default_rng(3000 + seed)
        group_count = int(rng.integers(1, 5))
        search_range = int(rng.integers(2, 7))
        height, width = 16 * int(rng.integers(2, 5)), 16 * int(rng.integers(2, 5))
        pairs = [random_frame_pair(rng, height, width, wide)
                 for _ in range(group_count)]
        currents = np.stack([pair[0] for pair in pairs])
        references = np.stack([pair[1] for pair in pairs])
        positions = macroblock_positions(currents[0], 16)
        dys, dxs = displacement_grid(search_range)
        surfaces = sad_surfaces_many(currents, references, positions, 16,
                                     search_range)
        win_dy, win_dx, win_sad = full_search_winners(
            currents, references, positions, 16, search_range)
        for group in range(group_count):
            for index, (top, left) in enumerate(positions):
                reference_surface = sad_surface(currents[group],
                                                references[group], top, left,
                                                16, search_range)
                assert np.array_equal(reference_surface, surfaces[group, index])
                expected = best_displacement(reference_surface, dys, dxs)
                assert expected == (win_dy[group, index],
                                    win_dx[group, index],
                                    win_sad[group, index])

    @pytest.mark.parametrize("seed", range(3))
    def test_irregular_positions(self, seed):
        rng = np.random.default_rng(4000 + seed)
        currents = rng.integers(0, 256, (2, 48, 64))
        references = rng.integers(0, 256, (2, 48, 64))
        positions = [(int(rng.integers(0, 48 - 16)),
                      int(rng.integers(0, 64 - 16))) for _ in range(8)]
        surfaces = sad_surfaces_many(currents, references, positions, 16, 4)
        win_dy, win_dx, win_sad = full_search_winners(currents, references,
                                                      positions, 16, 4)
        dys, dxs = displacement_grid(4)
        for group in range(2):
            for index, (top, left) in enumerate(positions):
                reference_surface = sad_surface(currents[group],
                                                references[group],
                                                top, left, 16, 4)
                assert np.array_equal(reference_surface, surfaces[group, index])
                assert (best_displacement(reference_surface, dys, dxs)
                        == (win_dy[group, index], win_dx[group, index],
                            win_sad[group, index]))

    def test_screening_fallback_matches(self):
        """A tiny survivor budget forces the full-surface fallback."""
        rng = np.random.default_rng(5000)
        currents = rng.integers(0, 256, (2, 48, 48))
        references = rng.integers(0, 256, (2, 48, 48))
        positions = macroblock_positions(currents[0], 16)
        screened = full_search_winners(currents, references, positions, 16, 4)
        forced = full_search_winners(currents, references, positions, 16, 4,
                                     survivor_budget=0)
        for side_a, side_b in zip(screened, forced):
            assert np.array_equal(side_a, side_b)

    @pytest.mark.parametrize("seed", range(5))
    def test_best_displacements_tie_breaking(self, seed):
        """Heavy ties: the packed-key argmin must match the lexsort rule."""
        rng = np.random.default_rng(6000 + seed)
        dys, dxs = displacement_grid(int(rng.integers(2, 7)))
        surfaces = rng.integers(0, 4, (12, dys.size, dxs.size))
        batch_dy, batch_dx, batch_sad = best_displacements(surfaces, dys, dxs)
        for index in range(surfaces.shape[0]):
            assert (best_displacement(surfaces[index], dys, dxs)
                    == (batch_dy[index], batch_dx[index], batch_sad[index]))


class TestTransformParity:
    """Batched DCT/quantiser paths vs per-block loops."""

    @pytest.mark.parametrize("seed", range(10))
    def test_dct_idct_batched(self, seed):
        rng = np.random.default_rng(7000 + seed)
        count = int(rng.integers(1, 40))
        if rng.integers(0, 2):
            blocks = rng.integers(-32768, 32768, (count, 8, 8)).astype(np.float64)
        else:
            blocks = rng.normal(0.0, 300.0, (count, 8, 8))
        batched = dct_2d_batched(blocks)
        for index in range(count):
            assert np.array_equal(batched[index], dct_2d(blocks[index]))
        inverse = idct_2d_batched(batched)
        for index in range(count):
            assert np.array_equal(inverse[index], idct_2d(batched[index]))

    @pytest.mark.parametrize("seed", range(10))
    def test_quantise_dequantise_batched(self, seed):
        rng = np.random.default_rng(8000 + seed)
        count = int(rng.integers(1, 40))
        qp = int(rng.integers(MIN_QP, MAX_QP + 1))
        coefficients = rng.normal(0.0, 500.0, (count, 8, 8))
        coefficients[rng.integers(0, 2, count).astype(bool)] *= 0.01
        batched_levels = quantise(coefficients, qp)
        batched_values = dequantise(batched_levels, qp)
        for index in range(count):
            assert np.array_equal(batched_levels[index],
                                  quantise(coefficients[index], qp))
            assert np.array_equal(batched_values[index],
                                  dequantise(batched_levels[index], qp))


class TestEntropyParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_block_bits_batched(self, seed):
        rng = np.random.default_rng(9000 + seed)
        count = int(rng.integers(1, 50))
        levels = rng.integers(-40, 41, (count, 8, 8))
        levels[rng.random((count, 8, 8)) < 0.7] = 0   # realistic sparsity
        batched = estimate_block_bits_batched(levels)
        for index in range(count):
            assert batched[index] == estimate_block_bits(levels[index])

    @pytest.mark.parametrize("seed", range(3))
    def test_header_bits_batched(self, seed):
        rng = np.random.default_rng(9500 + seed)
        vector_dy = rng.integers(-16, 17, 40)
        vector_dx = rng.integers(-16, 17, 40)
        inter = rng.integers(0, 2, 40).astype(bool)
        batched = macroblock_header_bits_batched(vector_dy, vector_dx, inter)
        for index in range(40):
            assert batched[index] == macroblock_header_bits(
                (int(vector_dy[index]), int(vector_dx[index])),
                inter=bool(inter[index]))
