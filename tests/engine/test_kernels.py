"""Tests of the batched numeric kernels against their scalar references."""

import numpy as np
import pytest

from repro.dct.reference import dct_2d, dct_2d_batched, idct_2d, idct_2d_batched
from repro.dct.quantization import dequantise, quantise
from repro.engine.kernels import (
    batched_sad,
    best_displacement,
    block_batch,
    candidate_windows,
    displacement_grid,
    frame_from_block_batch,
    sad_surface,
)
from repro.me.sad import sad, sad_at, sad_at_many
from repro.video.frames import panning_sequence


@pytest.fixture(scope="module")
def frame_pair():
    sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=5)
    return sequence.frame(0), sequence.frame(1)


class TestBlockBatch:
    def test_round_trip(self, frame_pair):
        frame = frame_pair[0]
        blocks = block_batch(frame, 8)
        assert blocks.shape == (80, 8, 8)
        assert np.array_equal(frame_from_block_batch(blocks, 64, 80), frame)

    def test_raster_order(self, frame_pair):
        frame = frame_pair[0]
        blocks = block_batch(frame, 16)
        assert np.array_equal(blocks[1], frame[0:16, 16:32])

    def test_non_tiling_frame_rejected(self):
        with pytest.raises(ValueError):
            block_batch(np.zeros((10, 16)), 16)


class TestBatchedTransforms:
    def test_dct_batch_matches_per_block(self, frame_pair):
        blocks = block_batch(frame_pair[0], 8).astype(np.float64)
        batched = dct_2d_batched(blocks)
        for index in range(blocks.shape[0]):
            assert np.array_equal(batched[index], dct_2d(blocks[index]))

    def test_idct_batch_matches_per_block(self, frame_pair):
        coefficients = dct_2d_batched(block_batch(frame_pair[0], 8))
        batched = idct_2d_batched(coefficients)
        for index in range(coefficients.shape[0]):
            assert np.array_equal(batched[index], idct_2d(coefficients[index]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dct_2d_batched(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            idct_2d_batched(np.zeros((4, 4, 4)))


class TestBatchedQuantisation:
    def test_batch_matches_per_block(self, frame_pair):
        coefficients = dct_2d_batched(block_batch(frame_pair[0], 8))
        levels = quantise(coefficients, qp=6)
        restored = dequantise(levels, qp=6)
        for index in range(coefficients.shape[0]):
            assert np.array_equal(levels[index], quantise(coefficients[index], qp=6))
            assert np.array_equal(restored[index], dequantise(levels[index], qp=6))


class TestSadKernels:
    def test_batched_sad_matches_scalar(self, frame_pair):
        reference, current = frame_pair
        a = block_batch(current, 16)
        b = block_batch(reference, 16)
        values = batched_sad(a, b)
        for index in range(a.shape[0]):
            assert values[index] == sad(a[index], b[index])

    def test_sad_surface_matches_sad_at_everywhere(self, frame_pair):
        reference, current = frame_pair
        surface = sad_surface(current, reference, 16, 16, 16, 4)
        dys, dxs = displacement_grid(4)
        for yi, dy in enumerate(dys):
            for xi, dx in enumerate(dxs):
                assert surface[yi, xi] == sad_at(current, reference, 16, 16,
                                                 int(dy), int(dx), 16)

    def test_sad_surface_saturates_border_candidates(self, frame_pair):
        reference, current = frame_pair
        surface = sad_surface(current, reference, 0, 0, 16, 4)
        dys, dxs = displacement_grid(4)
        for yi, dy in enumerate(dys):
            for xi, dx in enumerate(dxs):
                assert surface[yi, xi] == sad_at(current, reference, 0, 0,
                                                 int(dy), int(dx), 16)

    def test_sad_at_many_matches_sad_at(self, frame_pair):
        reference, current = frame_pair
        displacements = [(-4, -4), (0, 0), (3, -2), (4, 4), (-9, 0)]
        values = sad_at_many(current, reference, 16, 16, displacements, 16)
        for (dy, dx), value in zip(displacements, values):
            assert value == sad_at(current, reference, 16, 16, dy, dx, 16)

    def test_compact_bound_is_exclusive(self):
        # +/-16384 differences are 32768, one past int16: the fast path
        # must decline, or SADs would come out negative.
        current = np.full((16, 16), 16384, dtype=np.int64)
        reference = np.full((16, 16), -16384, dtype=np.int64)
        windows = candidate_windows(reference, 8)
        assert windows.dtype == np.int64
        values = sad_at_many(current, reference, 4, 4, [(0, 0)], 8,
                             windows=windows)
        assert values[0] == sad_at(current, reference, 4, 4, 0, 0, 8) > 0

    def test_sad_at_many_accepts_ndarray_displacements(self, frame_pair):
        reference, current = frame_pair
        displacements = np.array([(0, 0), (1, 1)])
        values = sad_at_many(current, reference, 16, 16, displacements, 16)
        assert values[1] == sad_at(current, reference, 16, 16, 1, 1, 16)
        empty = sad_at_many(current, reference, 16, 16, np.empty((0, 2)), 16)
        assert empty.shape == (0,)

    def test_wide_values_fall_back_to_int64(self):
        rng = np.random.default_rng(0)
        reference = rng.integers(0, 1 << 20, (32, 32))
        current = rng.integers(0, 1 << 20, (32, 32))
        windows = candidate_windows(reference, 8)
        assert windows.dtype == np.int64
        values = sad_at_many(current, reference, 8, 8, [(0, 0), (2, -3)], 8,
                             windows=windows)
        for (dy, dx), value in zip([(0, 0), (2, -3)], values):
            assert value == sad_at(current, reference, 8, 8, dy, dx, 8)

    def test_best_displacement_tie_breaks_toward_centre(self):
        dys, dxs = displacement_grid(1, include_upper=True)
        surface = np.full((3, 3), 7, dtype=np.int64)
        dy, dx, value = best_displacement(surface, dys, dxs)
        assert (dy, dx, value) == (0, 0, 7)
        surface[0, 0] = surface[2, 2] = 3
        dy, dx, _ = best_displacement(surface, dys, dxs)
        assert (dy, dx) == (-1, -1)
