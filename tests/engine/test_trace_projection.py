"""Trace projection: ``BatchTraceEntry`` capture vs the legacy
single-stream ``TraceEntry`` view (``VectorEngine.trace_for_stream``)."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.core.exceptions import SimulationError
from repro.core.netlist import Netlist
from repro.engine import AccumulateOp, SumOp, VectorEngine
from repro.engine.trace import BatchTraceEntry, TraceEntry


def adder_chain() -> Netlist:
    netlist = Netlist("adder_chain")
    netlist.add_node("in0", ClusterKind.ADD_SHIFT)
    netlist.add_node("in1", ClusterKind.ADD_SHIFT)
    netlist.add_node("sum", ClusterKind.ADD_SHIFT, role="adder")
    netlist.add_node("acc", ClusterKind.ADD_SHIFT, role="accumulator")
    netlist.connect("in0", "sum")
    netlist.connect("in1", "sum")
    netlist.connect("sum", "acc")
    return netlist


def traced_engine(batch=3, cycles=4):
    engine = VectorEngine(adder_chain(), batch=batch)
    engine.record_trace = True
    engine.bind("sum", SumOp())
    engine.bind("acc", AccumulateOp())
    for _ in range(cycles):
        engine.drive("in0", np.arange(1, batch + 1))
        engine.drive("in1", np.full(batch, 10))
        engine.step()
    return engine


class TestBatchTrace:
    def test_entries_are_batch_wide_arrays_per_cycle(self):
        engine = traced_engine(batch=3, cycles=4)
        assert len(engine.trace) == 4
        for cycle, entry in enumerate(engine.trace, start=1):
            assert isinstance(entry, BatchTraceEntry)
            assert entry.cycle == cycle
            assert set(entry.values) == {"in0", "in1", "sum", "acc"}
            assert entry.values["sum"].shape == (3,)
        assert engine.trace[-1].values["sum"].tolist() == [11, 12, 13]
        # The accumulator integrates over cycles, per stream.
        assert engine.trace[-1].values["acc"].tolist() == [44, 48, 52]

    def test_nothing_recorded_unless_enabled(self):
        engine = VectorEngine(adder_chain(), batch=2)
        engine.bind("sum", SumOp())
        engine.bind_constant("in0", 1)
        engine.bind_constant("in1", 2)
        engine.run(cycles=3)
        assert engine.trace == []
        assert engine.trace_for_stream(0) == []

    def test_reset_clears_the_trace(self):
        engine = traced_engine(cycles=2)
        engine.reset()
        assert engine.trace == []


class TestStreamProjection:
    def test_projection_matches_the_batch_entry_column(self):
        engine = traced_engine(batch=3, cycles=4)
        for stream in range(3):
            projected = engine.trace_for_stream(stream)
            assert len(projected) == len(engine.trace)
            for legacy, batch_entry in zip(projected, engine.trace):
                assert isinstance(legacy, TraceEntry)
                assert legacy.cycle == batch_entry.cycle
                assert legacy.values == {
                    name: int(values[stream])
                    for name, values in batch_entry.values.items()}

    def test_projected_values_are_python_ints(self):
        engine = traced_engine(batch=2, cycles=1)
        entry = engine.trace_for_stream(1)[0]
        assert all(type(value) is int for value in entry.values.values())

    def test_streams_differ_when_inputs_differ(self):
        engine = traced_engine(batch=2, cycles=2)
        first = engine.trace_for_stream(0)
        second = engine.trace_for_stream(1)
        assert first[-1].values["sum"] == 11
        assert second[-1].values["sum"] == 12

    @pytest.mark.parametrize("stream", [-1, 2, 100])
    def test_out_of_range_stream_is_rejected(self, stream):
        engine = traced_engine(batch=2, cycles=1)
        with pytest.raises(SimulationError, match="outside batch"):
            engine.trace_for_stream(stream)
