"""Parity suite: the vectorized engine against the legacy execution paths.

The acceptance bar for the engine refactor: bit-exact traces against the
(pre-engine semantics of the) ``DataflowSimulator`` on the DCT and
systolic-ME netlists, identical search results between the scalar and
batched ME paths, bit-identical batched video encoding, and deterministic
annealing placement for a fixed seed.
"""

import numpy as np
import pytest

from repro.core.mapper import AnnealingPlacer
from repro.core.simulator import DataflowSimulator
from repro.dct import MixedRomDCT
from repro.engine import default_op_for, program_for_netlist
from repro.me.full_search import full_search, full_search_scalar
from repro.me.systolic import SystolicArray, build_systolic_netlist
from repro.me.systolic_1d import Systolic1DArray
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence


def drive_both_and_trace(netlist, cycles=12, seed=7):
    """Run the engine and the legacy simulator on identical stimulus.

    Both sides get the engine's default op set (the simulator through each
    op's scalar ``as_behaviour`` bridge), primary inputs are driven with
    the same random words every cycle, and both record full traces.
    """
    rng = np.random.default_rng(seed)
    inputs = [node.name for node in netlist.nodes if not netlist.fanin(node.name)]

    engine = program_for_netlist(netlist)
    engine.record_trace = True

    simulator = DataflowSimulator(netlist)
    simulator.record_trace = True
    for node in netlist.nodes:
        op = default_op_for(node)
        simulator.bind(node.name, op.as_behaviour(), registered=op.registered)

    stimulus = rng.integers(0, 256, (cycles, len(inputs)))
    for cycle in range(cycles):
        for column, name in enumerate(inputs):
            engine.drive(name, int(stimulus[cycle, column]))
            simulator.drive(name, int(stimulus[cycle, column]))
        engine.step()
        simulator.step()
    return engine.trace_for_stream(0), simulator.trace


class TestEngineSimulatorParity:
    def test_dct_netlist_traces_bit_exact(self):
        netlist = MixedRomDCT().build_netlist()
        engine_trace, simulator_trace = drive_both_and_trace(netlist)
        assert len(engine_trace) == len(simulator_trace) == 12
        for ours, legacy in zip(engine_trace, simulator_trace):
            assert ours.cycle == legacy.cycle
            assert ours.values == legacy.values

    def test_systolic_me_netlist_traces_bit_exact(self):
        netlist = build_systolic_netlist(module_count=2, pes_per_module=4)
        engine_trace, simulator_trace = drive_both_and_trace(netlist, cycles=16)
        for ours, legacy in zip(engine_trace, simulator_trace):
            assert ours.values == legacy.values

    def test_batched_streams_match_independent_runs(self):
        netlist = build_systolic_netlist(module_count=1, pes_per_module=4)
        rng = np.random.default_rng(3)
        inputs = [node.name for node in netlist.nodes
                  if not netlist.fanin(node.name)]
        streams = rng.integers(0, 256, (8, len(inputs), 4))

        batched = program_for_netlist(netlist, batch=4)
        batched.record_trace = True
        for cycle in range(8):
            for column, name in enumerate(inputs):
                batched.drive(name, streams[cycle, column])
            batched.step()

        for stream in range(4):
            single = program_for_netlist(netlist, batch=1)
            single.record_trace = True
            for cycle in range(8):
                for column, name in enumerate(inputs):
                    single.drive(name, int(streams[cycle, column, stream]))
                single.step()
            assert batched.trace_for_stream(stream) == single.trace_for_stream(0)


@pytest.fixture(scope="module")
def frame_pair():
    sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=11)
    return sequence.frame(0), sequence.frame(1)


class TestSearchParity:
    def test_vectorized_full_search_matches_scalar(self, frame_pair):
        reference, current = frame_pair
        for top, left in [(0, 0), (16, 16), (48, 64), (32, 0)]:
            for search_range in (2, 4, 8):
                fast = full_search(current, reference, top, left, 16, search_range)
                slow = full_search_scalar(current, reference, top, left, 16,
                                          search_range)
                assert fast.best == slow.best
                assert fast.candidates_evaluated == slow.candidates_evaluated
                assert fast.sad_operations == slow.sad_operations

    @pytest.mark.parametrize("top,left,search_range",
                             [(16, 16, 2), (16, 16, 3), (0, 0, 4), (48, 64, 4)])
    def test_systolic_batched_matches_per_node(self, frame_pair, top, left,
                                               search_range):
        reference, current = frame_pair
        per_node = SystolicArray().search(current, reference, top, left, 16,
                                          search_range)
        batched = SystolicArray().search_batched(current, reference, top, left,
                                                 16, search_range)
        for field in ("motion_vector", "candidates_evaluated", "sad_operations",
                      "cycles", "rounds", "first_sad_cycle",
                      "reference_pixel_fetches", "broadcast_pixel_fetches"):
            assert getattr(per_node, field) == getattr(batched, field), field
        assert per_node.best.sad == batched.best.sad

    def test_systolic_1d_batched_matches_per_node(self, frame_pair):
        reference, current = frame_pair
        per_node = Systolic1DArray().search(current, reference, 16, 16, 16, 3)
        batched = Systolic1DArray().search_batched(current, reference, 16, 16,
                                                   16, 3)
        assert per_node.motion_vector == batched.motion_vector
        assert per_node.best.sad == batched.best.sad
        assert per_node.cycles == batched.cycles
        assert per_node.first_sad_cycle == batched.first_sad_cycle


class TestEncoderParity:
    @pytest.mark.parametrize("search_name", ["full", "three_step", "diamond"])
    def test_batched_encode_bit_identical_to_scalar(self, search_name):
        sequence = panning_sequence(height=64, width=80, pan=(1, 2), seed=17)
        frames = [sequence.frame(index) for index in range(4)]
        batched = VideoEncoder(EncoderConfiguration(
            search_name=search_name, search_range=4, vectorized=True))
        scalar = VideoEncoder(EncoderConfiguration(
            search_name=search_name, search_range=4, vectorized=False))
        for ours, legacy in zip(batched.encode_sequence(frames),
                                scalar.encode_sequence(frames)):
            assert ours.psnr_db == legacy.psnr_db
            assert ours.estimated_bits == legacy.estimated_bits
            assert ours.sad_operations == legacy.sad_operations
            assert ours.search_candidates == legacy.search_candidates
            for mine, theirs in zip(ours.macroblocks, legacy.macroblocks):
                assert mine.mode == theirs.mode
                assert mine.motion_vector == theirs.motion_vector
                assert mine.sad == theirs.sad
                for a, b in zip(mine.level_blocks, theirs.level_blocks):
                    assert np.array_equal(a, b)
        assert np.array_equal(batched.reference_frame, scalar.reference_frame)


class TestAnnealingDeterminism:
    def test_fixed_seed_reproduces_placement(self):
        from repro.arrays import build_da_array

        netlist = MixedRomDCT().build_netlist()
        first = AnnealingPlacer(build_da_array(), seed=42).place(netlist)
        second = AnnealingPlacer(build_da_array(), seed=42).place(netlist)
        assert first.assignment == second.assignment

    def test_placement_stays_complete_for_any_seed(self):
        from repro.arrays import build_da_array

        netlist = MixedRomDCT().build_netlist()
        placement = AnnealingPlacer(build_da_array(), seed=1).place(netlist)
        assert len(placement.assignment) == len(netlist)
