"""Unit tests of the vectorized execution engine."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.core.exceptions import SimulationError
from repro.core.netlist import Netlist
from repro.engine import (
    AccumulateOp,
    SumOp,
    VectorEngine,
    VectorOp,
    compile_schedule,
    program_for_netlist,
)


def adder_chain() -> Netlist:
    netlist = Netlist("adder_chain")
    netlist.add_node("in0", ClusterKind.ADD_SHIFT)
    netlist.add_node("in1", ClusterKind.ADD_SHIFT)
    netlist.add_node("sum", ClusterKind.ADD_SHIFT, role="adder")
    netlist.add_node("acc", ClusterKind.ADD_SHIFT, role="accumulator")
    netlist.connect("in0", "sum")
    netlist.connect("in1", "sum")
    netlist.connect("sum", "acc")
    return netlist


class TestCompileSchedule:
    def test_levels_follow_combinational_depth(self):
        schedule = compile_schedule(adder_chain(), registered={})
        assert schedule.order[:2] == ("in0", "in1")
        assert schedule.depth == 3           # inputs -> sum -> acc
        assert schedule.fanin["sum"] == ("in0", "in1")

    def test_registered_sources_break_levels(self):
        schedule = compile_schedule(adder_chain(), registered={"sum": True})
        # acc reads sum's committed register, so it sits at level 0 too.
        assert schedule.depth == 2
        assert schedule.registered == ("sum",)


class TestVectorEngine:
    def test_batched_streams_evaluate_independently(self):
        engine = VectorEngine(adder_chain(), batch=3)
        engine.bind("sum", SumOp())
        engine.bind("acc", AccumulateOp())
        engine.drive("in0", np.array([1, 10, 100]))
        engine.drive("in1", np.array([2, 20, 200]))
        values = engine.step()
        assert values["sum"].tolist() == [3, 30, 300]
        # Registered output commits at the end of the cycle (legacy rule:
        # in-cycle consumers see the old value, the trace sees the new one).
        assert values["acc"].tolist() == [3, 30, 300]
        engine.drive("in0", np.array([1, 10, 100]))
        engine.drive("in1", np.array([2, 20, 200]))
        values = engine.step()
        assert values["acc"].tolist() == [6, 60, 600]

    def test_run_streams_inputs_per_cycle(self):
        engine = VectorEngine(adder_chain(), batch=2)
        engine.bind("sum", SumOp())
        engine.bind("acc", AccumulateOp(registered=False))
        stimulus = {
            "in0": np.array([[1, 5], [2, 6], [3, 7]]),
            "in1": np.zeros((3, 2), dtype=int),
        }
        final = engine.run(stimulus)
        assert engine.cycle == 3
        assert final["acc"].tolist() == [6, 18]

    def test_run_broadcasts_one_dimensional_streams(self):
        engine = VectorEngine(adder_chain(), batch=2)
        engine.bind("sum", SumOp())
        final = engine.run({"in0": np.array([4, 4]), "in1": np.array([1, 1])})
        assert final["sum"].tolist() == [5, 5]

    def test_mismatched_stream_lengths_rejected(self):
        engine = VectorEngine(adder_chain(), batch=1)
        engine.bind("sum", SumOp())
        with pytest.raises(SimulationError):
            engine.run({"in0": np.zeros(3), "in1": np.zeros(2)})

    def test_run_without_cycles_or_inputs_rejected(self):
        engine = VectorEngine(adder_chain(), batch=1)
        engine.bind("sum", SumOp())
        with pytest.raises(SimulationError):
            engine.run()

    def test_nothing_bound_rejected(self):
        engine = VectorEngine(adder_chain())
        with pytest.raises(SimulationError):
            engine.step()

    def test_unknown_node_rejected(self):
        engine = VectorEngine(adder_chain())
        with pytest.raises(SimulationError):
            engine.bind("nope", SumOp())
        with pytest.raises(SimulationError):
            engine.drive("nope", 0)
        with pytest.raises(SimulationError):
            engine.value_of("nope")

    def test_invalid_batch_rejected(self):
        with pytest.raises(SimulationError):
            VectorEngine(adder_chain(), batch=0)

    def test_trace_for_stream_projects_ints(self):
        engine = VectorEngine(adder_chain(), batch=2)
        engine.record_trace = True
        engine.bind_constant("in0", 2)
        engine.bind_constant("in1", 3)
        engine.bind("sum", SumOp())
        engine.run(cycles=2)
        stream = engine.trace_for_stream(1)
        assert len(stream) == 2
        assert stream[-1].values["sum"] == 5
        with pytest.raises(SimulationError):
            engine.trace_for_stream(2)

    def test_reset_clears_values_and_op_state(self):
        engine = VectorEngine(adder_chain(), batch=1)
        engine.bind_constant("in0", 1)
        engine.bind_constant("in1", 1)
        engine.bind("sum", SumOp())
        engine.bind("acc", AccumulateOp(registered=False))
        engine.run(cycles=3)
        engine.reset()
        assert engine.cycle == 0
        assert engine.value_of("acc")[0] == 0
        engine.run(cycles=1)
        assert engine.value_of("acc")[0] == 2

    def test_scalar_callable_binds_via_scalar_op(self):
        engine = VectorEngine(adder_chain(), batch=2)
        engine.bind_constant("in0", 3)
        engine.bind_constant("in1", 4)
        engine.bind("sum", lambda inputs: inputs["in0"] * inputs["in1"])
        values = engine.step()
        assert values["sum"].tolist() == [12, 12]

    def test_vector_op_receives_batch_arrays(self):
        engine = VectorEngine(adder_chain(), batch=2)
        engine.bind_constant("in0", 3)
        engine.bind_constant("in1", 4)
        engine.bind("sum", VectorOp(lambda inputs: inputs["in0"] - inputs["in1"]))
        assert engine.step()["sum"].tolist() == [-1, -1]


class TestDefaultPrograms:
    def test_program_for_netlist_binds_every_node(self):
        engine = program_for_netlist(adder_chain())
        final = engine.run(cycles=4)
        assert set(final) == {"in0", "in1", "sum", "acc"}

    def test_default_program_executes_systolic_netlist(self):
        from repro.me.systolic import build_systolic_netlist

        engine = program_for_netlist(build_systolic_netlist(2, 4), batch=3)
        final = engine.run(cycles=4)
        assert final["min_comparator"].shape == (3,)
