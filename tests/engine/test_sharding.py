"""Work-sharding helpers, including the serving scheduler's key grouping."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.engine.sharding import (
    batch_groups,
    group_by_key,
    shard_sizes,
    shard_slices,
)


class TestShardSizes:
    def test_balanced_split(self):
        assert shard_sizes(10, 4) == [3, 3, 2, 2]
        assert shard_sizes(4, 8) == [1, 1, 1, 1]
        assert shard_sizes(0, 3) == []

    def test_slices_realise_sizes(self):
        assert shard_slices(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shard_sizes(-1, 2)
        with pytest.raises(ConfigurationError):
            shard_sizes(4, 0)


class TestBatchGroups:
    def test_grouping(self):
        assert batch_groups(list(range(5)), 2) == [[0, 1], [2, 3], [4]]
        with pytest.raises(ConfigurationError):
            batch_groups([1], 0)


class TestGroupByKey:
    def test_groups_in_first_seen_order(self):
        items = ["a1", "b1", "a2", "c1", "b2", "a3"]
        groups = group_by_key(items, key=lambda s: s[0])
        assert groups == [["a1", "a2", "a3"], ["b1", "b2"], ["c1"]]

    def test_group_size_caps_each_group(self):
        items = ["a1", "a2", "a3", "b1", "a4"]
        groups = group_by_key(items, key=lambda s: s[0], group_size=2)
        assert groups == [["a1", "a2"], ["a3", "a4"], ["b1"]]

    def test_unbounded_by_default(self):
        groups = group_by_key(range(6), key=lambda n: n % 2)
        assert groups == [[0, 2, 4], [1, 3, 5]]

    def test_empty_and_validation(self):
        assert group_by_key([], key=lambda x: x) == []
        with pytest.raises(ConfigurationError):
            group_by_key([1], key=lambda x: x, group_size=0)
