"""Per-layer instrumentation: each hot path emits its named events and
counters, and cache hits stop masquerading as compile time."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.flow import FlowCache, compile, compile_many
from repro.dct import dct_implementations


def _traced(workload):
    with obs.tracing() as tracer:
        result = workload()
    return tracer, result


class TestFlowInstrumentation:
    def test_cold_compile_emits_stage_spans_and_counts(self):
        cache = FlowCache()
        design = dct_implementations()[0]
        tracer, result = _traced(lambda: compile(design, cache=cache))
        names = {event.name for event in tracer.events()}
        assert "flow.schedule" in names and "flow.bitstream" in names
        assert all(event.domain == obs.WALL for event in tracer.events())
        assert tracer.metrics.counter("flow.compiles").value == 1
        assert tracer.metrics.counter("flow.cache.misses").value == 1
        assert not result.from_cache

    def test_cache_hit_emits_an_instant_not_stage_spans(self):
        cache = FlowCache()
        design = dct_implementations()[0]
        compile(design, cache=cache)  # warm, untraced
        tracer, hit = _traced(lambda: compile(design, cache=cache))
        names = [event.name for event in tracer.events()]
        assert names == ["flow.cache_hit"]
        assert tracer.metrics.counter("flow.cache.hits").value == 1
        assert hit.from_cache and hit.cache_hit

    def test_from_cache_zeroes_this_calls_compile_seconds(self):
        cache = FlowCache()
        design = dct_implementations()[0]
        cold = compile(design, cache=cache)
        hit = compile(design, cache=cache)
        assert cold.compile_seconds == cold.total_seconds > 0
        assert hit.total_seconds == cold.total_seconds  # original timings
        assert hit.compile_seconds == 0.0
        assert hit.summary()["from_cache"] is True
        assert hit.summary()["flow_seconds"] == 0.0
        assert cold.summary()["from_cache"] is False

    def test_cache_stats_reports_hits_misses_and_evictions(self):
        cache = FlowCache(max_entries=1)
        designs = dct_implementations()[:2]
        # Serial backend: with one cache slot, which entry survives a
        # threaded compile depends on completion order.
        compile_many(designs, cache=cache, parallel="serial")
        compile(designs[1], cache=cache)
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["evictions"] == 1
        assert stats["entries"] == 1


class TestGopInstrumentation:
    def test_encode_emits_virtual_gop_spans_and_counters(self):
        from repro.video.gop import encode_sequence_parallel
        from repro.video.scenes import scene_frames

        frames = scene_frames("pan", count=6, height=32, width=32)
        tracer, _ = _traced(lambda: encode_sequence_parallel(
            frames, strategy="serial", gop_size=3))
        by_name = {}
        for event in tracer.events():
            by_name.setdefault(event.name, []).append(event)
        assert len(by_name["gop.encode"]) == 2  # 6 frames / gop_size 3
        (sequence,) = by_name["gop.sequence"]
        assert sequence.domain == obs.VIRTUAL
        assert (sequence.ts, sequence.dur) == (0, 6)
        (wall,) = by_name["gop.encode_sequence"]
        assert wall.domain == obs.WALL
        assert wall.args["strategy"] == "serial"
        assert tracer.metrics.counter("gop.frames").value == 6
        assert tracer.metrics.counter("gop.gops").value == 2


class TestServeInstrumentation:
    def test_dispatch_emits_batch_spans_and_histograms(self):
        from repro.serve.jobs import DctJob
        from repro.serve.runtime import serve

        rng = np.random.default_rng(0)
        jobs = [DctJob(job_id=index, arrival_cycle=index * 100,
                       blocks=rng.integers(0, 255, (2, 8, 8)))
                for index in range(6)]
        tracer, _ = _traced(lambda: serve(jobs))
        batches = [event for event in tracer.events()
                   if event.name == "serve.batch"]
        assert batches and all(event.domain == obs.VIRTUAL
                               for event in batches)
        assert all(event.args["jobs"] >= 1 for event in batches)
        assert tracer.metrics.counter("serve.batches").value == len(batches)
        sizes = tracer.metrics.histogram("serve.batch_size").values
        assert sum(sizes) == 6  # every job dispatched exactly once


class TestFleetInstrumentation:
    def test_event_loop_emits_lifecycle_events(self):
        from repro.fleet import FleetSettings, simulate_fleet, synthetic_trace

        jobs = synthetic_trace("flash_crowd", 60, seed=11)
        settings = FleetSettings(soc_count=4, steal=True, autoscale=True)
        tracer, report = _traced(lambda: simulate_fleet(jobs, settings))
        names = {event.name for event in tracer.events()}
        assert {"fleet.arrival", "fleet.batch"} <= names
        counters = tracer.metrics
        assert counters.counter("fleet.arrivals").value == len(jobs)
        assert counters.counter("fleet.batches").value == report.batches
        sizes = counters.histogram("fleet.batch_size").values
        assert sum(sizes) == report.completed

    def test_rejections_are_counted(self):
        from repro.fleet import FleetSettings, simulate_fleet, synthetic_trace

        jobs = synthetic_trace("flash_crowd", 60, seed=3, mean_gap=2)
        settings = FleetSettings(soc_count=1, queue_capacity=1)
        tracer, report = _traced(lambda: simulate_fleet(jobs, settings))
        if report.rejected == 0:
            pytest.skip("trace did not saturate the single queue")
        assert tracer.metrics.counter("fleet.rejected").value \
            == report.rejected
        rejects = [event for event in tracer.events()
                   if event.name == "fleet.reject"]
        assert len(rejects) == report.rejected


class TestNocInstrumentation:
    def test_each_run_emits_one_summary_span(self):
        from repro.noc.sim import simulate
        from repro.noc.topology import topology_by_name
        from repro.noc.traffic import uniform_traffic

        topology = topology_by_name("mesh", 9)
        traffic = uniform_traffic(9, flits_per_flow=2)
        tracer, result = _traced(lambda: simulate(topology, traffic,
                                                  model="wormhole"))
        (span,) = [event for event in tracer.events()
                   if event.name == "noc.sim"]
        assert span.domain == obs.VIRTUAL
        assert span.dur == result.cycles
        assert span.args["topology"] == topology.name
        assert tracer.metrics.counter("noc.runs").value == 1
        utilisation = tracer.metrics.histogram("noc.link_utilisation").values
        assert len(utilisation) == 1 and 0.0 <= utilisation[0] <= 1.0
