"""Exporters: trace digests, Chrome trace-event JSON, metric rows,
cross-process propagation state."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import propagate
from repro.obs.tracer import Tracer


def _emit_schedule(tracer, track=None, shuffle=False):
    """A small fixed virtual schedule, optionally under a track scope and
    in reversed emission order."""
    calls = [
        lambda: tracer.virtual_span("batch", "serve", 100, 50, {"jobs": 4}),
        lambda: tracer.virtual_event("reject", "serve", 120, {"job": 9}),
        lambda: tracer.virtual_span("batch", "serve", 150, 25, {"jobs": 2}),
    ]
    if shuffle:
        calls = list(reversed(calls))
    if track is not None:
        with tracer.track_scope(track):
            for call in calls:
                call()
    else:
        for call in calls:
            call()


class TestTraceDigest:
    def test_digest_is_stable_and_order_insensitive(self):
        one = Tracer()
        _emit_schedule(one)
        other = Tracer()
        _emit_schedule(other, shuffle=True)
        assert obs.trace_digest(one) == obs.trace_digest(other)

    def test_digest_ignores_track_labels(self):
        main = Tracer()
        _emit_schedule(main)
        partitioned = Tracer()
        _emit_schedule(partitioned, track="partition3")
        assert obs.trace_digest(main) == obs.trace_digest(partitioned)

    def test_digest_ignores_wall_events(self):
        bare = Tracer()
        _emit_schedule(bare)
        noisy = Tracer()
        _emit_schedule(noisy)
        noisy.wall_span_at("compile", "flow", 1.0, 0.5)
        noisy.wall_event("hit", "flow")
        assert obs.trace_digest(bare) == obs.trace_digest(noisy)

    def test_digest_changes_with_the_virtual_schedule(self):
        one = Tracer()
        _emit_schedule(one)
        other = Tracer()
        _emit_schedule(other)
        other.virtual_event("extra", "serve", 1)
        assert obs.trace_digest(one) != obs.trace_digest(other)

    def test_empty_and_null_tracers_share_a_digest(self):
        assert obs.trace_digest(Tracer()) == obs.trace_digest(obs.NULL_TRACER)


class TestChromeExport:
    def test_events_carry_phases_pids_and_track_lanes(self):
        tracer = Tracer()
        tracer.wall_span_at("compile", "flow", 10.0, 0.25, {"design": "dct"})
        _emit_schedule(tracer, track="partition0")
        rendered = obs.chrome_trace_events(tracer)

        metadata = [event for event in rendered if event["ph"] == "M"]
        names = {(event["name"], event["pid"]) for event in metadata}
        assert ("process_name", 1) in names and ("process_name", 2) in names
        lanes = {event["args"]["name"] for event in metadata
                 if event["name"] == "thread_name"}
        assert {"main", "partition0"} <= lanes

        spans = [event for event in rendered if event["ph"] == "X"]
        instants = [event for event in rendered if event["ph"] == "i"]
        assert len(spans) == 3 and len(instants) == 1
        assert instants[0]["s"] == "t"

        wall = next(event for event in spans if event["name"] == "compile")
        assert wall["pid"] == 1
        assert wall["ts"] == 0.0  # normalized to the earliest wall event
        assert wall["dur"] == pytest.approx(0.25e6)  # seconds -> µs

        virtual = next(event for event in spans if event["ts"] == 100.0)
        assert virtual["pid"] == 2 and virtual["dur"] == 50.0
        assert virtual["args"] == {"jobs": 4}

    def test_write_chrome_trace_emits_loadable_json(self, tmp_path):
        tracer = Tracer()
        _emit_schedule(tracer)
        path = obs.write_chrome_trace(tmp_path / "trace.json", tracer)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(event["ph"] == "X" for event in document["traceEvents"])


class TestMetricsExport:
    def test_snapshot_of_a_disabled_tracer_is_empty(self):
        snapshot = obs.metrics_snapshot(obs.NULL_TRACER)
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_rows_flatten_for_format_table(self):
        from repro.reporting import format_table

        tracer = Tracer()
        tracer.count("serve.batches", 3)
        tracer.gauge("queue.depth", 7)
        tracer.observe("serve.batch_size", 4)
        tracer.observe("serve.batch_size", 8)
        rows = obs.metrics_rows(tracer)
        by_name = {row["metric"]: row for row in rows}
        assert by_name["serve.batches"] == {
            "metric": "serve.batches", "kind": "counter", "value": 3}
        assert by_name["queue.depth"]["value"] == 7
        assert by_name["serve.batch_size"]["count"] == 2
        assert by_name["serve.batch_size"]["max"] == 8.0
        table = format_table([{"metric": row["metric"],
                               "kind": row["kind"]} for row in rows])
        assert "serve.batches" in table


class TestPropagation:
    def test_round_trip_preserves_digest_and_metrics(self):
        worker = Tracer()
        _emit_schedule(worker, track="partition1")
        worker.count("flow.cache.hits", 4)
        worker.observe("fleet.batch_size", 6)

        parent = Tracer()
        propagate.merge_state(parent, propagate.export_state(worker))
        assert obs.trace_digest(parent) == obs.trace_digest(worker)
        assert parent.events()[0].track == "partition1"
        assert parent.metrics.counter("flow.cache.hits").value == 4
        assert parent.metrics.histogram("fleet.batch_size").values == [6]

    def test_state_survives_pickling(self):
        import pickle

        worker = Tracer()
        _emit_schedule(worker)
        state = pickle.loads(pickle.dumps(propagate.export_state(worker)))
        parent = Tracer()
        propagate.merge_state(parent, state)
        assert obs.trace_digest(parent) == obs.trace_digest(worker)

    def test_version_mismatch_is_rejected(self):
        state = propagate.export_state(Tracer())
        state["version"] = 99
        with pytest.raises(ValueError, match="incompatible obs state"):
            propagate.merge_state(Tracer(), state)
