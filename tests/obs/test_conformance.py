"""Trace-digest conformance: execution backends never change the trace.

``trace_digest()`` hashes only the virtual clock domain with tracks
excluded, so for one seeded workload every backend — serial, threads,
process pool, partitioned — must hash to the same digest.  These tests
draw randomized cases and assert exactly that, plus the anchor cases the
ISSUE names (``partitions=1`` equals the plain runtime; NoC batched
equals scalar).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.fleet import (
    FLEET_PATTERNS,
    FleetSettings,
    simulate_fleet,
    simulate_fleet_partitioned,
    synthetic_trace,
)
from repro.par import ProcessBackend
from repro.video.gop import encode_sequence_parallel, stream_digest
from repro.video.scenes import SCENE_KINDS, scene_frames


@pytest.fixture(scope="module")
def process_backend():
    with ProcessBackend(workers=2) as backend:
        yield backend


def _run_traced(workload):
    """Run ``workload`` under a fresh tracer; return (digest, result)."""
    with obs.tracing() as tracer:
        result = workload()
    return obs.trace_digest(tracer), result


class TestGopDigestConformance:
    @pytest.mark.parametrize("case_index", range(3))
    def test_digest_identical_across_all_strategies(self, case_index,
                                                    process_backend):
        rng = np.random.default_rng([2026, 11, case_index])
        kind = SCENE_KINDS[case_index % len(SCENE_KINDS)]
        frames = scene_frames(kind, count=int(rng.integers(6, 10)),
                              height=32, width=32, seed=case_index)
        gop_size = int(rng.integers(2, 5))

        digests = {}
        streams = {}
        for strategy in ("serial", "threads", "lockstep", "processes"):
            digest, result = _run_traced(lambda: encode_sequence_parallel(
                frames, workers=2, strategy=strategy, gop_size=gop_size,
                backend=process_backend))
            digests[strategy] = digest
            streams[strategy] = stream_digest(result.statistics)
        assert len(set(digests.values())) == 1, digests
        # Tracing must not perturb the encoded stream either.
        assert len(set(streams.values())) == 1, streams

    def test_stream_digest_unchanged_by_tracing(self):
        frames = scene_frames("pan", count=6, height=32, width=32)
        untraced = encode_sequence_parallel(frames, strategy="serial",
                                            gop_size=3)
        _, traced = _run_traced(lambda: encode_sequence_parallel(
            frames, strategy="serial", gop_size=3))
        assert stream_digest(traced.statistics) \
            == stream_digest(untraced.statistics)


class TestFleetDigestConformance:
    @pytest.mark.parametrize("case_index", range(3))
    def test_partitioned_serial_matches_processes(self, case_index,
                                                  process_backend):
        rng = np.random.default_rng([2026, 12, case_index])
        pattern = FLEET_PATTERNS[case_index % len(FLEET_PATTERNS)]
        jobs = synthetic_trace(pattern, int(rng.integers(30, 60)),
                               seed=case_index)
        settings = FleetSettings(
            soc_count=4, steal=bool(case_index % 2),
            autoscale=case_index == 1,
            slo_target_p99=3_000_000 if case_index == 2 else None)

        serial_digest, serial = _run_traced(
            lambda: simulate_fleet_partitioned(jobs, settings, partitions=2,
                                               parallel="serial"))
        process_digest, parallel = _run_traced(
            lambda: simulate_fleet_partitioned(jobs, settings, partitions=2,
                                               parallel="processes",
                                               backend=process_backend))
        assert serial_digest == process_digest
        assert serial.digests == parallel.digests

    def test_one_partition_equals_the_plain_runtime(self):
        jobs = synthetic_trace("steady", 40, seed=5)
        settings = FleetSettings(soc_count=3)
        partitioned_digest, _ = _run_traced(
            lambda: simulate_fleet_partitioned(jobs, settings, partitions=1,
                                               parallel="serial"))
        plain_digest, _ = _run_traced(
            lambda: simulate_fleet(jobs, settings))
        assert partitioned_digest == plain_digest


class TestNocDigestConformance:
    def test_batched_runs_hash_like_scalar_runs(self):
        from repro.noc.sim import simulate, simulate_batched
        from repro.noc.topology import topology_by_name
        from repro.noc.traffic import uniform_traffic

        topology = topology_by_name("mesh", 9)
        cases = [uniform_traffic(9, flits_per_flow=2 + index,
                                 name=f"uniform{index}")
                 for index in (1, 2)]
        scalar_digest, _ = _run_traced(
            lambda: [simulate(topology, traffic, model="wormhole")
                     for traffic in cases])
        batched_digest, _ = _run_traced(
            lambda: simulate_batched(topology, cases, model="wormhole"))
        assert scalar_digest == batched_digest
