"""Typed metrics: counters, gauges, histograms, registry merging."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestMetricTypes:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_gauge_keeps_the_last_value(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summary_uses_nearest_rank_percentiles(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        # Nearest-rank: ceil(q * n)-th smallest sample, matching
        # repro.fleet.ledger.percentile_array digit for digit.
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0

    def test_empty_histogram_summary_is_just_a_count(self):
        assert Histogram("h").summary() == {"count": 0}


class TestRegistry:
    def test_get_or_create_returns_the_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry and len(registry) == 1

    def test_kind_mismatch_raises_type_error(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="'a' is a counter, not a gauge"):
            registry.gauge("a")
        with pytest.raises(TypeError, match="not a histogram"):
            registry.histogram("a")

    def test_snapshot_groups_by_kind_in_sorted_order(self):
        registry = MetricsRegistry()
        registry.counter("z.count").increment(2)
        registry.counter("a.count").increment(1)
        registry.gauge("depth").set(7)
        registry.histogram("lat").observe(10)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.count", "z.count"]
        assert snapshot["counters"]["z.count"] == 2
        assert snapshot["gauges"] == {"depth": 7}
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_merge_adds_counters_and_concatenates_samples(self):
        parent = MetricsRegistry()
        parent.counter("hits").increment(3)
        parent.histogram("lat").observe(1)
        parent.gauge("depth").set(2)

        worker = MetricsRegistry()
        worker.counter("hits").increment(2)
        worker.counter("new").increment(1)
        worker.histogram("lat").observe(9)
        worker.gauge("depth").set(5)

        parent.merge_state(worker.export_state())
        assert parent.counter("hits").value == 5
        assert parent.counter("new").value == 1
        assert parent.histogram("lat").values == [1, 9]
        assert parent.gauge("depth").value == 5  # gauges: incoming wins

    def test_export_state_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.histogram("h").observe(2.5)
        state = registry.export_state()
        assert state == {"counters": {"c": 1}, "gauges": {},
                         "histograms": {"h": [2.5]}}

    def test_clear_empties_the_registry(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.clear()
        assert len(registry) == 0 and "c" not in registry
