"""Shared fixtures for the observability suite."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _tracer_off_after_each_test():
    """The module-global tracer must never leak between tests."""
    yield
    obs.disable()
