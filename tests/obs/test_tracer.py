"""Tracer core: clock domains, track scopes, enable/disable, overhead.

The overhead tests are the tier-1 contract of the no-op-when-disabled
API: the disabled hot path must return shared singletons (identity
checks) and add **zero** net allocations per event.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro import obs
from repro.obs import tracer as obs_tracer


class TestDomains:
    def test_virtual_span_and_event_record_the_virtual_domain(self):
        with obs.tracing() as tracer:
            tracer.virtual_span("a", "cat", 10, 5, {"k": 1})
            tracer.virtual_event("b", "cat", 3)
        spans = tracer.events()
        assert [event.domain for event in spans] == [obs.VIRTUAL, obs.VIRTUAL]
        assert spans[0].dur == 5 and spans[1].dur is None

    def test_wall_span_measures_a_positive_duration(self):
        with obs.tracing() as tracer:
            with tracer.wall_span("work", "cat"):
                sum(range(100))
        (event,) = tracer.events()
        assert event.domain == obs.WALL
        assert event.dur >= 0

    def test_wall_span_at_records_premeasured_intervals(self):
        with obs.tracing() as tracer:
            tracer.wall_span_at("stage", "flow", 12.5, 0.25, {"d": "x"})
        (event,) = tracer.events()
        assert (event.ts, event.dur) == (12.5, 0.25)

    def test_wall_event_is_an_instant(self):
        with obs.tracing() as tracer:
            tracer.wall_event("hit", "flow")
        (event,) = tracer.events()
        assert event.domain == obs.WALL and event.dur is None


class TestTrackScopes:
    def test_nested_scopes_label_and_restore(self):
        with obs.tracing() as tracer:
            tracer.virtual_event("before", "t", 0)
            with tracer.track_scope("partition0"):
                tracer.virtual_event("inside", "t", 1)
                with tracer.track_scope("deep"):
                    tracer.virtual_event("deeper", "t", 2)
            tracer.virtual_event("after", "t", 3)
        tracks = [event.track for event in tracer.events()]
        assert tracks == ["main", "partition0", "deep", "main"]

    def test_scopes_are_thread_local(self):
        seen = {}
        with obs.tracing() as tracer:
            def worker():
                tracer.virtual_event("from-thread", "t", 0)
                seen["track"] = tracer.events()[-1].track

            with tracer.track_scope("main-scope"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert seen["track"] == "main"

    def test_track_is_excluded_from_the_event_key(self):
        one = obs.SpanEvent(obs.VIRTUAL, "n", "c", 1, 2, {"a": 1}, "main")
        other = obs.SpanEvent(obs.VIRTUAL, "n", "c", 1, 2, {"a": 1}, "p7")
        assert one.key() == other.key()


class TestEnableDisable:
    def test_module_global_swaps_between_null_and_active(self):
        assert obs.TRACER is obs.NULL_TRACER
        tracer = obs.enable()
        assert obs.TRACER is tracer and tracer.enabled
        assert obs.enable() is tracer  # idempotent, events preserved
        obs.disable()
        assert obs.TRACER is obs.NULL_TRACER

    def test_tracing_restores_the_previous_binding(self):
        with obs.tracing() as tracer:
            assert obs.TRACER is tracer
        assert obs.TRACER is obs.NULL_TRACER

    def test_tracing_reuses_an_already_active_tracer(self):
        active = obs.enable()
        with obs.tracing() as tracer:
            assert tracer is active
        assert obs.TRACER is active
        obs.disable()

    def test_events_survive_disable_via_the_held_reference(self):
        tracer = obs.enable()
        tracer.virtual_event("kept", "t", 0)
        obs.disable()
        assert len(tracer.events()) == 1

    def test_clear_drops_events_and_metrics(self):
        with obs.tracing() as tracer:
            tracer.virtual_event("x", "t", 0)
            tracer.count("c")
            tracer.clear()
            assert tracer.events() == ()
            assert len(tracer.metrics) == 0


class TestThreadSafety:
    def test_concurrent_appends_lose_nothing(self):
        with obs.tracing() as tracer:
            def emit(base):
                for i in range(200):
                    tracer.virtual_event(f"e{base}-{i}", "t", i)

            threads = [threading.Thread(target=emit, args=(n,))
                       for n in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(tracer.events()) == 800


class TestDisabledOverhead:
    """The tier-1 null-tracer contract."""

    def test_null_tracer_is_a_shared_singleton(self):
        assert obs.NULL_TRACER.enabled is False
        assert obs.TRACER is obs.NULL_TRACER

    def test_disabled_span_calls_return_the_null_span_singleton(self):
        tracer = obs.NULL_TRACER
        assert tracer.wall_span("a", "b") is obs.NULL_SPAN
        assert tracer.track_scope("x") is obs.NULL_SPAN
        with tracer.wall_span("a", "b") as span:
            assert span is obs.NULL_SPAN

    def test_disabled_methods_return_none_and_record_nothing(self):
        tracer = obs.NULL_TRACER
        assert tracer.count("c") is None
        assert tracer.observe("h", 1.0) is None
        assert tracer.gauge("g", 2) is None
        assert tracer.virtual_event("n", "c", 0) is None
        assert tracer.virtual_span("n", "c", 0, 1) is None
        assert tracer.wall_event("n", "c") is None
        assert tracer.wall_span_at("n", "c", 0.0, 1.0) is None
        assert tracer.events() == ()

    @staticmethod
    def _min_block_delta(hot_loop, iterations=1000, passes=5):
        """Best-of-``passes`` net allocated-block delta around the loop.

        The allocator occasionally drifts by a block or two for reasons
        unrelated to the loop body; a loop that allocated *per event*
        would show >= ``iterations`` blocks on every pass, so the
        minimum over a few passes isolates the per-event cost.
        """
        hot_loop(iterations)  # warm up allocator caches and code objects
        deltas = []
        for _ in range(passes):
            before = sys.getallocatedblocks()
            hot_loop(iterations)
            deltas.append(sys.getallocatedblocks() - before)
        return min(deltas)

    @pytest.mark.skipif(not hasattr(sys, "getallocatedblocks"),
                        reason="needs CPython allocation accounting")
    def test_disabled_hot_path_adds_zero_net_allocations(self):
        """The instrumented-loop idiom (hoist + ``enabled`` guard) must
        not allocate when tracing is off."""
        def hot_loop(iterations):
            tracer = obs_tracer.TRACER
            for i in range(iterations):
                if tracer.enabled:
                    tracer.virtual_event("never", "t", i)

        assert self._min_block_delta(hot_loop) <= 0

    @pytest.mark.skipif(not hasattr(sys, "getallocatedblocks"),
                        reason="needs CPython allocation accounting")
    def test_disabled_null_calls_add_zero_net_allocations(self):
        """Even un-guarded null-tracer calls allocate nothing."""
        def hot_loop(iterations):
            tracer = obs_tracer.TRACER
            for i in range(iterations):
                tracer.count("c")
                tracer.virtual_event("never", "t", i)

        assert self._min_block_delta(hot_loop) <= 0
