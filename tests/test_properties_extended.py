"""Property-based tests of the decoder-path and filter substrates.

Extends :mod:`tests.test_properties` with invariants of the modules added
for the full codec path: wavelet perfect reconstruction, zig-zag / RLE
round trips, motion-compensation consistency, FIR linearity and the
scheduler's resource guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import ClusterKind
from repro.core.netlist import Netlist
from repro.core.scheduler import ListScheduler
from repro.dct.distributed_arithmetic import DAQuantisation
from repro.filters.dwt import dwt53_forward, dwt53_inverse
from repro.filters.fir import DistributedArithmeticFIR
from repro.video.entropy import (
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    zigzag_scan,
)

SETTINGS = settings(max_examples=50, deadline=None)


class TestWaveletProperties:
    @SETTINGS
    @given(values=st.lists(st.integers(min_value=-1024, max_value=1023),
                           min_size=4, max_size=64).filter(lambda v: len(v) % 2 == 0))
    def test_lifting_is_exactly_reversible(self, values):
        approximation, detail = dwt53_forward(values)
        assert np.array_equal(dwt53_inverse(approximation, detail), values)

    @SETTINGS
    @given(level=st.integers(min_value=-255, max_value=255),
           length=st.sampled_from([8, 16, 32]))
    def test_constant_signals_have_no_detail(self, level, length):
        approximation, detail = dwt53_forward([level] * length)
        assert np.all(detail == 0)
        assert np.all(approximation == level)


class TestEntropyProperties:
    @SETTINGS
    @given(values=st.lists(st.integers(min_value=-100, max_value=100),
                           min_size=64, max_size=64))
    def test_zigzag_round_trip(self, values):
        block = np.array(values).reshape(8, 8)
        assert np.array_equal(inverse_zigzag(zigzag_scan(block)), block)

    @SETTINGS
    @given(values=st.lists(st.integers(min_value=-5, max_value=5),
                           min_size=64, max_size=64))
    def test_run_length_round_trip(self, values):
        assert run_length_decode(run_length_encode(values)) == values

    @SETTINGS
    @given(values=st.lists(st.integers(min_value=-5, max_value=5),
                           min_size=64, max_size=64))
    def test_run_length_pairs_never_contain_zero_levels(self, values):
        pairs = run_length_encode(values)
        assert all(level != 0 for _, level in pairs[:-1])
        assert pairs[-1] == (0, 0)


class TestFirProperties:
    @SETTINGS
    @given(signal=st.lists(st.integers(min_value=-512, max_value=511),
                           min_size=4, max_size=32),
           raw_taps=st.lists(st.integers(min_value=-32, max_value=32),
                             min_size=2, max_size=6))
    def test_exact_for_representable_taps(self, signal, raw_taps):
        taps = [t / 64.0 for t in raw_taps]
        fir = DistributedArithmeticFIR(taps, DAQuantisation(input_bits=12,
                                                            coeff_frac_bits=6,
                                                            accumulator_bits=32))
        got = fir.filter(signal)
        want = fir.filter_reference(signal)
        assert np.allclose(got, want, atol=1e-9)


class TestSchedulerProperties:
    @SETTINGS
    @given(node_count=st.integers(min_value=1, max_value=24),
           capacity=st.integers(min_value=1, max_value=6))
    def test_capacity_never_exceeded_and_all_nodes_scheduled(self, node_count, capacity):
        netlist = Netlist("random_parallel")
        for i in range(node_count):
            netlist.add_node(f"n{i}", ClusterKind.ADD_SHIFT)
        schedule = ListScheduler({ClusterKind.ADD_SHIFT: capacity}).schedule(netlist)
        assert len(schedule.operations) == node_count
        assert schedule.peak_concurrency(ClusterKind.ADD_SHIFT) <= capacity
        assert schedule.length_cycles >= -(-node_count // capacity)
