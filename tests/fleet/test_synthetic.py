"""Synthetic fleet jobs and seeded datacenter arrival patterns."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    FLEET_PATTERNS,
    SYNTHETIC_KERNELS,
    SyntheticJob,
    execute_fleet_serial,
    execute_synthetic_batch,
    synthetic_trace,
)
from repro.fleet.synthetic import OUTPUT_BITS_PER_UNIT
from repro.noc.traffic import FLIT_BITS


class TestSyntheticJob:
    def test_payload_is_seed_deterministic(self):
        a = SyntheticJob(job_id=0, arrival_cycle=0, seed=42, work_units=20)
        b = SyntheticJob(job_id=1, arrival_cycle=9, seed=42, work_units=20)
        c = SyntheticJob(job_id=2, arrival_cycle=0, seed=43, work_units=20)
        assert np.array_equal(a.payload(), b.payload())
        assert not np.array_equal(a.payload(), c.payload())

    def test_kernel_routing(self):
        me = SyntheticJob(job_id=0, arrival_cycle=0, kernel="me:full_r8")
        da = SyntheticJob(job_id=1, arrival_cycle=0, kernel="fir:lowpass8")
        assert me.kernels == {"me_array": "me:full_r8"}
        assert da.kernels == {"da_array": "fir:lowpass8"}
        assert me.batch_key != da.batch_key

    def test_service_estimates_scale_with_work(self):
        for kernel in SYNTHETIC_KERNELS:
            small = SyntheticJob(job_id=0, arrival_cycle=0, kernel=kernel,
                                 work_units=8)
            big = SyntheticJob(job_id=1, arrival_cycle=0, kernel=kernel,
                               work_units=80)
            assert big.service_estimate() == 10 * small.service_estimate() > 0

    def test_input_bits(self):
        job = SyntheticJob(job_id=0, arrival_cycle=0, work_units=24)
        assert job.input_bits == 24 * FLIT_BITS

    @pytest.mark.parametrize("field, value", [
        ("arrival_cycle", -1), ("work_units", 0), ("kernel", "dct:nope"),
        ("value", 0.0), ("kind", "encode")])
    def test_validation(self, field, value):
        kwargs = dict(job_id=0, arrival_cycle=0)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            SyntheticJob(**kwargs)


class TestSyntheticExecution:
    def test_batched_equals_serial_bit_for_bit(self):
        jobs = [SyntheticJob(job_id=i, arrival_cycle=0, seed=100 + i,
                             work_units=16 + i) for i in range(5)]
        batched = execute_synthetic_batch(jobs)
        serial = execute_fleet_serial(jobs)
        assert [r.digest for r in batched] == [r.digest for r in serial]
        assert all(r.output_bits == job.work_units * OUTPUT_BITS_PER_UNIT
                   for job, r in zip(jobs, batched))

    def test_mixed_batch_keys_rejected(self):
        jobs = [SyntheticJob(job_id=0, arrival_cycle=0, kernel="dct:cordic2"),
                SyntheticJob(job_id=1, arrival_cycle=0, kernel="fir:lowpass8")]
        with pytest.raises(ConfigurationError):
            execute_synthetic_batch(jobs)

    def test_activity_fields_follow_the_kernel_family(self):
        me, = execute_synthetic_batch(
            [SyntheticJob(job_id=0, arrival_cycle=0, kernel="me:full_r8")])
        fir, = execute_synthetic_batch(
            [SyntheticJob(job_id=1, arrival_cycle=0, kernel="fir:lowpass8")])
        dct, = execute_synthetic_batch(
            [SyntheticJob(job_id=2, arrival_cycle=0, kernel="dct:cordic2")])
        assert me.sad_operations > 0 == me.dct_blocks == me.filter_samples
        assert fir.filter_samples > 0 == fir.sad_operations == fir.dct_blocks
        assert dct.dct_blocks > 0 == dct.sad_operations == dct.filter_samples


class TestSyntheticTrace:
    @pytest.mark.parametrize("pattern", FLEET_PATTERNS)
    def test_shape_and_seed_stability(self, pattern):
        jobs = synthetic_trace(pattern, 60, seed=9)
        again = synthetic_trace(pattern, 60, seed=9)
        other = synthetic_trace(pattern, 60, seed=10)
        fingerprint = [(j.job_id, j.arrival_cycle, j.kernel, j.work_units,
                        j.seed, j.value) for j in jobs]
        assert fingerprint == [(j.job_id, j.arrival_cycle, j.kernel,
                                j.work_units, j.seed, j.value)
                               for j in again]
        assert fingerprint != [(j.job_id, j.arrival_cycle, j.kernel,
                                j.work_units, j.seed, j.value)
                               for j in other]
        arrivals = [j.arrival_cycle for j in jobs]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        assert all(j.kernel in SYNTHETIC_KERNELS for j in jobs)

    def test_flash_crowd_compresses_gaps(self):
        steady = synthetic_trace("steady", 400, seed=0, mean_gap=2_000)
        crowd = synthetic_trace("flash_crowd", 400, seed=0, mean_gap=2_000)
        assert crowd[-1].arrival_cycle < steady[-1].arrival_cycle
        gaps = np.diff([j.arrival_cycle for j in crowd])
        assert gaps.min() < 500 < gaps.max()

    def test_flash_crowd_skews_the_kernel_mix(self):
        crowd = synthetic_trace("flash_crowd", 1000, seed=1)
        hot = sum(1 for j in crowd if j.kernel == "dct:mixed_rom")
        steady = synthetic_trace("steady", 1000, seed=1)
        hot_steady = sum(1 for j in steady if j.kernel == "dct:mixed_rom")
        assert hot > 1.3 * hot_steady

    def test_diurnal_modulates_the_rate(self):
        jobs = synthetic_trace("diurnal", 1000, seed=2, mean_gap=2_000)
        gaps = np.diff([j.arrival_cycle for j in jobs])
        quarter = len(gaps) // 4
        peak = float(np.mean(gaps[:quarter]))       # rising sinusoid
        trough = float(np.mean(gaps[quarter:2 * quarter]))
        assert peak < trough

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_trace("weekly", 10)
        with pytest.raises(ConfigurationError):
            synthetic_trace("steady", 0)
        with pytest.raises(ConfigurationError):
            synthetic_trace("steady", 10, mean_gap=1)
        with pytest.raises(ConfigurationError):
            synthetic_trace("steady", 10, kernel_pool=())
        with pytest.raises(ConfigurationError):
            synthetic_trace("flash_crowd", 10,
                            kernel_pool=("fir:lowpass8",))
