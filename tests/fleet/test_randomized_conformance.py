"""Randomized conformance: fleet scheduling never changes results.

Every (balancer, policy, steal, autoscale, SLO) combination must produce
payload digests bit-identical to a naive serial execution of the same
trace.  Scheduling decides where and when a job runs — never what it
computes.
"""

import numpy as np
import pytest

from repro.fleet import (
    BALANCERS,
    FLEET_PATTERNS,
    FleetSettings,
    execute_fleet_serial,
    simulate_fleet,
    synthetic_trace,
)
from repro.serve.kernels import KernelLibrary
from repro.serve.workload import TRAFFIC_MIXES, generate_jobs

CASE_COUNT = 102
POLICY_RING = ("fifo", "sjf", "affinity", "round_robin")
LIBRARY = KernelLibrary()


def _draw_case(case_index):
    rng = np.random.default_rng([2026, case_index])
    if case_index % 4 == 3:
        mix = TRAFFIC_MIXES[case_index % len(TRAFFIC_MIXES)]
        jobs = generate_jobs(mix, job_count=int(rng.integers(5, 11)),
                             seed=case_index, mean_gap=int(
                                 rng.integers(2_000, 20_000)))
    else:
        pattern = FLEET_PATTERNS[case_index % len(FLEET_PATTERNS)]
        jobs = synthetic_trace(pattern, int(rng.integers(8, 33)),
                               seed=case_index,
                               mean_gap=int(rng.integers(200, 4_000)))
    kwargs = {
        "policy": POLICY_RING[case_index % len(POLICY_RING)],
        "soc_count": int(rng.integers(1, 7)),
        "queue_capacity": int(rng.integers(4, 33)),
        "max_batch": int(rng.integers(1, 7)),
        "steal": bool(rng.integers(0, 2)),
        "steal_threshold": int(rng.integers(2, 5)),
        "predictive_prewarm": bool(rng.integers(0, 2)),
        "admission_prewarm": bool(rng.integers(0, 2)),
    }
    if rng.integers(0, 2):
        kwargs["autoscale"] = True
        kwargs["idle_timeout"] = int(rng.integers(5_000, 50_000))
        kwargs["wake_latency"] = int(rng.integers(0, 8_000))
    if case_index % 3 == 0:
        kwargs["slo_target_p99"] = int(rng.integers(200_000, 2_000_000))
    return jobs, kwargs


@pytest.fixture(scope="module")
def cases():
    drawn = []
    for case_index in range(CASE_COUNT):
        jobs, kwargs = _draw_case(case_index)
        serial = {result.job_id: result.digest
                  for result in execute_fleet_serial(jobs)}
        drawn.append((case_index, jobs, kwargs, serial))
    return drawn


@pytest.mark.parametrize("balancer", sorted(BALANCERS))
class TestFleetConformance:
    def test_bit_identity_with_serial_execution(self, cases, balancer):
        for case_index, jobs, kwargs, serial in cases:
            report = simulate_fleet(
                jobs, FleetSettings(balancer=balancer, **kwargs),
                library=LIBRARY)
            digests = report.digests
            assert digests == {job_id: serial[job_id]
                               for job_id in digests}, (
                f"case {case_index}: scheduling changed a payload")
            completed_ids = set(report.ledger.ids_with_status(1))
            assert set(digests) == completed_ids

    def test_conservation_and_timeline(self, cases, balancer):
        for case_index, jobs, kwargs, serial in cases:
            report = simulate_fleet(
                jobs, FleetSettings(balancer=balancer, **kwargs),
                library=LIBRARY)
            assert report.conserved, f"case {case_index}: lost a job"
            assert (report.submitted
                    == report.completed + report.rejected + report.shed)
            ledger = report.ledger
            mask = ledger.completed_mask
            assert bool(np.all(ledger.arrival[mask] <= ledger.start[mask]))
            assert bool(np.all(ledger.start[mask] < ledger.completion[mask]))
            assert report.makespan_cycles >= 0
            assert report.events_processed >= report.submitted
