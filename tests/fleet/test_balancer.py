"""Cluster balancers: decisions, determinism, fast-path parity."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    BALANCERS,
    JoinShortestQueue,
    KernelAffinityBalancer,
    RoundRobinBalancer,
    balancer_by_name,
)
from repro.fleet.synthetic import SyntheticJob
from repro.serve.kernels import KernelLibrary
from repro.serve.soc import ServingSoC

LIBRARY = KernelLibrary()


class _Slot:
    def __init__(self, index, soc=None, depth=0, free_at=0, awake=True):
        self.index = index
        self.soc = soc if soc is not None else _FakeSoc(free_at)
        self.queue = [object()] * depth
        self.awake = awake


class _FakeSoc:
    def __init__(self, free_at=0):
        self.free_at = free_at


def _job(kernel="dct:mixed_rom"):
    return SyntheticJob(job_id=0, arrival_cycle=0, kernel=kernel)


class TestJoinShortestQueue:
    def test_prefers_the_shortest_queue(self):
        slots = [_Slot(0, depth=3), _Slot(1, depth=1), _Slot(2, depth=2)]
        assert JoinShortestQueue().assign(_job(), slots, now=0) == 1

    def test_in_service_batch_counts_as_depth(self):
        slots = [_Slot(0, depth=1, free_at=100), _Slot(1, depth=2)]
        # slot0 scores 1 + busy = 2, slot1 scores 2 + idle = 2 -> tie to 0
        assert JoinShortestQueue().assign(_job(), slots, now=0) == 0
        # once slot0's batch would still be running, at now=50 same; after
        # free_at the busy term drops
        assert JoinShortestQueue().assign(_job(), slots, now=100) == 0

    def test_prefers_awake_socs_at_equal_depth(self):
        slots = [_Slot(0, awake=False), _Slot(1)]
        assert JoinShortestQueue().assign(_job(), slots, now=0) == 1

    def test_vectorized_parity_on_random_states(self):
        """The numpy fast path must agree with the per-slot scan."""
        rng = np.random.default_rng(5)
        balancer = JoinShortestQueue()
        for _ in range(200):
            count = int(rng.integers(1, 12))
            depth = rng.integers(0, 5, count)
            free_at = rng.integers(0, 40, count)
            asleep = rng.integers(0, 2, count).astype(np.int8)
            now = int(rng.integers(0, 40))
            slots = [_Slot(i, depth=int(depth[i]), free_at=int(free_at[i]),
                           awake=not asleep[i]) for i in range(count)]
            slow = balancer.assign(_job(), slots, now)
            fast = balancer.assign_vectorized(
                _job(), depth.astype(np.int32), free_at.astype(np.int64),
                asleep, now)
            assert slow == fast


class TestKernelAffinity:
    def test_routes_to_resident_kernel(self):
        socs = [ServingSoC(i, library=LIBRARY) for i in range(2)]
        socs[1].load_kernels(_job("dct:scc_direct"))
        slots = [_Slot(i, soc=socs[i]) for i in range(2)]
        balancer = KernelAffinityBalancer()
        assert balancer.assign(_job("dct:scc_direct"), slots, now=0) == 1
        # a kernel resident nowhere falls back to the depth tie-break
        assert balancer.assign(_job("dct:cordic2"), slots, now=0) == 0

    def test_depth_breaks_residency_ties(self):
        socs = [ServingSoC(i, library=LIBRARY) for i in range(2)]
        for soc in socs:
            soc.load_kernels(_job("dct:mixed_rom"))
        slots = [_Slot(i, soc=socs[i]) for i in range(2)]
        slots[0].queue = [object()] * 3
        assert KernelAffinityBalancer().assign(_job(), slots, now=0) == 1

    def test_base_class_has_no_fast_path(self):
        assert KernelAffinityBalancer().assign_vectorized(
            _job(), np.zeros(2, np.int32), np.zeros(2, np.int64),
            np.zeros(2, np.int8), 0) is None


class TestRoundRobin:
    def test_stripes_in_admission_order(self):
        slots = [_Slot(i) for i in range(3)]
        balancer = RoundRobinBalancer()
        assert [balancer.assign(_job(), slots, now=0)
                for _ in range(5)] == [0, 1, 2, 0, 1]


class TestRegistry:
    def test_known_names(self):
        assert sorted(BALANCERS) == ["jsq", "kernel_affinity", "round_robin"]
        for name in BALANCERS:
            assert balancer_by_name(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            balancer_by_name("magic")
