"""Behavioral tests of the event-driven fleet runtime."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    FleetSettings,
    SyntheticJob,
    execute_fleet_serial,
    job_input_bits,
    simulate_fleet,
    synthetic_trace,
)
from repro.filters.fir import FIR_INPUT_BITS
from repro.noc.traffic import FLIT_BITS, PIXEL_BITS
from repro.serve.jobs import DctJob, FirJob
from repro.serve.kernels import KernelLibrary
from repro.serve.workload import generate_jobs

LIBRARY = KernelLibrary()


def _serial_digests(jobs):
    return {result.job_id: result.digest
            for result in execute_fleet_serial(jobs)}


def _synth(job_id, arrival, kernel="dct:mixed_rom", work=32, value=1.0):
    return SyntheticJob(job_id=job_id, arrival_cycle=arrival, kernel=kernel,
                        work_units=work, seed=job_id, value=value)


class TestVirtualTime:
    def test_empty_trace(self):
        report = simulate_fleet([], FleetSettings(), library=LIBRARY)
        assert report.submitted == 0 and report.batches == 0
        assert report.makespan_cycles == 0
        assert report.conserved

    def test_single_job_timeline(self):
        report = simulate_fleet([_synth(0, arrival=37)],
                                FleetSettings(soc_count=1), library=LIBRARY)
        ledger = report.ledger
        assert ledger.completed == 1
        assert ledger.start[0] == 37
        assert ledger.completion[0] > ledger.start[0]
        assert report.makespan_cycles == int(ledger.completion[0]) - 37

    def test_runs_are_deterministic(self):
        trace = synthetic_trace("flash_crowd", 120, seed=4, mean_gap=400)
        settings = FleetSettings(soc_count=6, autoscale=True,
                                 idle_timeout=5_000, slo_target_p99=300_000,
                                 queue_capacity=8)
        first = simulate_fleet(trace, settings, library=LIBRARY)
        second = simulate_fleet(trace, settings, library=LIBRARY)
        assert first.digests == second.digests
        assert first.summary() == second.summary()
        assert np.array_equal(first.ledger.status, second.ledger.status)
        assert np.array_equal(first.ledger.completion,
                              second.ledger.completion)

    def test_percentile_scalar_parity_on_a_real_run(self):
        trace = synthetic_trace("steady", 80, seed=6, mean_gap=600)
        report = simulate_fleet(trace, FleetSettings(soc_count=3),
                                library=LIBRARY)
        for fraction in (0.5, 0.95, 0.99):
            assert report.ledger.check_scalar_percentile_parity(fraction)


class TestTwoLevelScheduling:
    def test_jsq_spreads_a_burst(self):
        jobs = [_synth(i, arrival=1) for i in range(8)]
        report = simulate_fleet(jobs, FleetSettings(soc_count=4, max_batch=1,
                                                    steal=False),
                                library=LIBRARY)
        assert report.conserved and report.completed == 8
        assert len(set(report.ledger.soc[report.ledger.completed_mask])) == 4

    def test_affinity_balancer_reduces_reconfigurations(self):
        # period-3 kernel pattern vs period-2 striping: round robin is
        # forced to alternate kernels on both SoCs
        trace = [_synth(i, arrival=1 + 200 * i,
                        kernel=("dct:mixed_rom", "dct:scc_direct",
                                "dct:scc_direct")[i % 3])
                 for i in range(24)]
        base = simulate_fleet(trace, FleetSettings(
            soc_count=2, balancer="round_robin", max_batch=1, steal=False),
            library=LIBRARY)
        affine = simulate_fleet(trace, FleetSettings(
            soc_count=2, balancer="kernel_affinity", max_batch=1,
            steal=False), library=LIBRARY)
        assert affine.reconfigurations < base.reconfigurations
        assert affine.digests == base.digests == _serial_digests(trace)

    def test_full_queue_falls_back_before_rejecting(self):
        # All jobs share one kernel, so the affinity balancer keeps
        # pointing at soc0 even once its queue is full; the fallback
        # must re-route to soc1 instead of bouncing the job.
        jobs = [_synth(i, arrival=1 + i, work=256) for i in range(7)]
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=2, balancer="kernel_affinity", queue_capacity=2,
            max_batch=1, steal=False), library=LIBRARY)
        assert report.rejected == 1
        assert report.completed == 6
        # job 3 arrived while soc0 (the resident) was full and survived
        # only through the fallback
        assert report.ledger.soc[report.ledger.row_of(3)] == 1
        assert report.conserved

    def test_rejection_when_the_fleet_is_full(self):
        jobs = [_synth(i, arrival=1, work=96) for i in range(6)]
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=1, queue_capacity=2, max_batch=1), library=LIBRARY)
        assert report.rejected == 4 and report.completed == 2
        assert report.conserved
        assert report.digests == {job_id: digest for job_id, digest
                                  in _serial_digests(jobs).items()
                                  if job_id in report.digests}


class TestWorkStealing:
    def _imbalanced(self):
        # Round-robin sends small FIR jobs to soc0 and heavy ME jobs to
        # soc1; soc0 drains early and must steal to stay busy.
        jobs = []
        for index in range(8):
            if index % 2 == 0:
                jobs.append(_synth(index, arrival=1, kernel="fir:lowpass8",
                                   work=16))
            else:
                jobs.append(_synth(index, arrival=1, kernel="me:full_r8",
                                   work=96))
        return jobs

    def test_idle_soc_steals_from_the_deepest_queue(self):
        jobs = self._imbalanced()
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=2, balancer="round_robin", max_batch=1,
            steal=True, steal_threshold=2), library=LIBRARY)
        assert report.steals > 0
        assert report.migrated_jobs > 0
        assert report.migration_cycles > 0
        assert report.migration_energy > 0
        assert bool(report.ledger.migrated.any())
        assert report.digests == _serial_digests(jobs)
        assert report.conserved

    def test_stealing_off_keeps_work_put(self):
        jobs = self._imbalanced()
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=2, balancer="round_robin", max_batch=1, steal=False),
            library=LIBRARY)
        assert report.steals == 0 and not report.ledger.migrated.any()
        assert report.digests == _serial_digests(jobs)

    def test_stealing_does_not_hurt_makespan(self):
        jobs = self._imbalanced()
        stolen = simulate_fleet(jobs, FleetSettings(
            soc_count=2, balancer="round_robin", max_batch=1, steal=True),
            library=LIBRARY)
        kept = simulate_fleet(jobs, FleetSettings(
            soc_count=2, balancer="round_robin", max_batch=1, steal=False),
            library=LIBRARY)
        assert stolen.makespan_cycles <= kept.makespan_cycles


class TestSloShedding:
    def test_sheds_lowest_value_youngest_first(self):
        values = [4.0, 1.0, 1.0, 1.0, 4.0]
        jobs = [_synth(i, arrival=1, kernel="fir:lowpass8", work=64,
                       value=values[i]) for i in range(5)]
        estimate = jobs[0].service_estimate()
        settings = FleetSettings(soc_count=1, max_batch=1, steal=False,
                                 slo_target_p99=64 + int(2.5 * estimate))
        report = simulate_fleet(jobs, settings, library=LIBRARY)
        assert report.shed == 3
        assert set(report.ledger.ids_with_status(3)) == {1, 2, 3}
        assert report.ledger.shed_value == 3.0
        assert report.ledger.completed_value == 8.0
        assert report.conserved
        assert report.digests == {job_id: digest for job_id, digest
                                  in _serial_digests(jobs).items()
                                  if job_id in (0, 4)}

    def test_no_target_means_no_shedding(self):
        jobs = [_synth(i, arrival=1, work=96) for i in range(10)]
        report = simulate_fleet(jobs, FleetSettings(soc_count=1),
                                library=LIBRARY)
        assert report.shed == 0 and report.completed == 10

    def test_tight_target_bounds_completed_latency(self):
        trace = synthetic_trace("flash_crowd", 150, seed=8, mean_gap=100)
        report = simulate_fleet(trace, FleetSettings(
            soc_count=1, slo_target_p99=20_000, steal=False),
            library=LIBRARY)
        relaxed = simulate_fleet(trace, FleetSettings(soc_count=1,
                                                      steal=False),
                                 library=LIBRARY)
        assert report.shed > 0
        assert (report.latency_percentiles()["p99"]
                <= relaxed.latency_percentiles()["p99"])


class TestAutoscaling:
    def _two_clumps(self):
        clump1 = [_synth(i, arrival=1) for i in range(2)]
        clump2 = [_synth(10 + i, arrival=100_000) for i in range(2)]
        return clump1 + clump2

    def test_gates_idle_socs_and_wakes_on_demand(self):
        jobs = self._two_clumps()
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=2, max_batch=1, steal=False, autoscale=True,
            idle_timeout=10_000, wake_latency=500), library=LIBRARY)
        assert report.gatings >= 1
        assert report.autoscale["wakes"] >= 1
        assert report.autoscale["gated_cycles"] > 0
        assert report.autoscale["saved"] > 0
        assert report.completed == 4
        assert report.digests == _serial_digests(jobs)
        # the woken SoC could not start before arrival + wake latency
        woken = report.ledger.start[report.ledger.row_of(11)]
        assert woken >= 100_000 + 500

    def test_min_awake_floor_disables_gating(self):
        jobs = self._two_clumps()
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=2, max_batch=1, autoscale=True, idle_timeout=10_000,
            min_awake=2), library=LIBRARY)
        assert report.gatings == 0
        assert report.autoscale["gated_cycles"] == 0

    def test_autoscale_off_burns_idle_energy_only(self):
        jobs = self._two_clumps()
        report = simulate_fleet(jobs, FleetSettings(soc_count=2,
                                                    max_batch=1),
                                library=LIBRARY)
        assert report.gatings == 0
        assert report.autoscale["saved"] == 0
        assert report.autoscale["idle_cycles"] > 0


class TestStarvationGuard:
    def test_sjf_cannot_starve_past_the_aging_guard(self):
        jobs = [_synth(0, arrival=1, kernel="me:full_r8", work=96)]
        jobs += [_synth(i, arrival=1 + 100 * i, kernel="fir:lowpass8",
                        work=16) for i in range(1, 30)]
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=1, policy="sjf", max_batch=1,
            starvation_limit=20_000), library=LIBRARY)
        assert report.completed == 30
        big_wait = int(report.ledger.start[report.ledger.row_of(0)]) - 1
        longest = int(np.max(report.ledger.completion[
            report.ledger.completed_mask]
            - report.ledger.start[report.ledger.completed_mask]))
        assert big_wait <= 20_000 + report.settings.queue_capacity * longest


class TestJobInputBits:
    def test_all_job_kinds_are_priced(self):
        encode = generate_jobs("steady_encode", job_count=1, seed=0)[0]
        height, width = encode.frame_shape
        assert job_input_bits(encode) == (len(encode.frames) * height
                                          * width * PIXEL_BITS)
        dct = DctJob(job_id=1, arrival_cycle=0,
                     blocks=np.zeros((5, 8, 8)))
        assert job_input_bits(dct) == 5 * 64 * PIXEL_BITS
        fir = FirJob(job_id=2, arrival_cycle=0, samples=np.arange(10))
        assert job_input_bits(fir) == 10 * FIR_INPUT_BITS
        synth = _synth(3, arrival=0, work=12)
        assert job_input_bits(synth) == 12 * FLIT_BITS

    def test_unknown_kind_rejected(self):
        class Mystery:
            kind = "mystery"
        with pytest.raises(ConfigurationError):
            job_input_bits(Mystery())


class TestSettingsValidation:
    @pytest.mark.parametrize("field, value", [
        ("soc_count", 0), ("queue_capacity", 0), ("max_batch", 0),
        ("starvation_limit", -1), ("steal_threshold", 0),
        ("slo_target_p99", 0), ("idle_timeout", 0), ("wake_latency", -1),
        ("min_awake", 0), ("min_awake", 9)])
    def test_bad_settings_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            FleetSettings(**{field: value})

    def test_unknown_balancer_and_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_fleet([], FleetSettings(balancer="magic"))
        with pytest.raises(ConfigurationError):
            simulate_fleet([], FleetSettings(policy="magic"))

    def test_duplicate_job_ids_rejected(self):
        jobs = [_synth(0, arrival=1), _synth(0, arrival=2)]
        with pytest.raises(ConfigurationError):
            simulate_fleet(jobs, FleetSettings())


class TestRealJobs:
    def test_serve_workloads_flow_through_the_fleet(self):
        jobs = generate_jobs("kernel_churn", job_count=10, seed=2,
                             mean_gap=5_000)
        report = simulate_fleet(jobs, FleetSettings(
            soc_count=2, balancer="kernel_affinity", policy="affinity"),
            library=LIBRARY)
        assert report.conserved
        assert report.digests == _serial_digests(jobs)

    def test_new_mixes_flow_through_the_fleet(self):
        for mix in ("diurnal", "flash_crowd"):
            jobs = generate_jobs(mix, job_count=8, seed=1, mean_gap=5_000)
            report = simulate_fleet(jobs, FleetSettings(soc_count=2),
                                    library=LIBRARY)
            assert report.conserved
            assert report.digests == _serial_digests(jobs)


class TestReporting:
    def test_summary_fields(self):
        trace = synthetic_trace("steady", 40, seed=3, mean_gap=800)
        report = simulate_fleet(trace, FleetSettings(soc_count=2),
                                library=LIBRARY)
        summary = report.summary()
        for key in ("balancer", "policy", "socs", "completed", "rejected",
                    "shed", "batches", "mean_batch", "steals",
                    "migrated_jobs", "gatings", "makespan_cycles",
                    "throughput_jobs_per_mcycle", "reconfigurations",
                    "static_saved", "latency_p50", "latency_p95",
                    "latency_p99"):
            assert key in summary
        assert report.mean_batch_size >= 1.0
        assert report.throughput_jobs_per_megacycle() > 0
        assert report.total_energy > report.ledger.total_energy
        assert report.events_processed > len(trace)
        assert report.prewarm["prewarm_firings"] > 0
