"""Property tests of the deterministic event heap."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    ARRIVAL,
    COMPLETION,
    EVENT_KINDS,
    GATE,
    WAKE,
    EventHeap,
)


class TestOrdering:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        for time in (50, 10, 30, 20, 40):
            heap.push(time, ARRIVAL, time)
        times = [heap.pop()[0] for _ in range(5)]
        assert times == sorted(times)

    def test_kind_priority_at_equal_time(self):
        heap = EventHeap()
        heap.push(7, ARRIVAL, 0)
        heap.push(7, GATE, 0)
        heap.push(7, WAKE, 0)
        heap.push(7, COMPLETION, 0)
        kinds = [heap.pop()[1] for _ in range(4)]
        assert kinds == [WAKE, COMPLETION, GATE, ARRIVAL]

    def test_key_breaks_ties_within_a_kind(self):
        heap = EventHeap()
        for key in (9, 3, 7, 1):
            heap.push(5, COMPLETION, key)
        keys = [heap.pop()[2] for _ in range(4)]
        assert keys == [1, 3, 7, 9]

    def test_push_order_independence(self):
        """The pop sequence is a pure function of the set of events."""
        rng = np.random.default_rng(11)
        events = [(int(rng.integers(0, 40)),
                   EVENT_KINDS[int(rng.integers(len(EVENT_KINDS)))],
                   int(rng.integers(0, 6)))
                  for _ in range(60)]
        # Deduplicate: push order is the tie-break *only* between exact
        # duplicates, which the runtime never produces.
        events = list(dict.fromkeys(events))
        sequences = []
        for order_seed in range(3):
            order = np.random.default_rng(order_seed).permutation(len(events))
            heap = EventHeap()
            for index in order:
                heap.push(*events[int(index)])
            sequences.append([heap.pop() for _ in range(len(events))])
        assert sequences[0] == sequences[1] == sequences[2]

    def test_randomized_monotone_virtual_time(self):
        """Interleaved pushes/pops never see time run backwards."""
        rng = np.random.default_rng(2026)
        heap = EventHeap()
        clock = 0
        popped = 0
        heap.push(0, ARRIVAL, 0)
        for step in range(500):
            if heap and (not heap.pushed % 3 or int(rng.integers(2))):
                time, _, _ = heap.pop()
                assert time >= clock
                clock = time
                popped += 1
            heap.push(clock + int(rng.integers(0, 50)),
                      EVENT_KINDS[int(rng.integers(len(EVENT_KINDS)))],
                      int(rng.integers(0, 8)))
        while heap:
            time, _, _ = heap.pop()
            assert time >= clock
            clock = time
            popped += 1
        assert popped == heap.pushed


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            EventHeap().push(0, 99, 0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            EventHeap().push(-1, ARRIVAL, 0)

    def test_scheduling_behind_the_clock_rejected(self):
        heap = EventHeap()
        heap.push(10, ARRIVAL, 0)
        heap.pop()
        with pytest.raises(ConfigurationError):
            heap.push(5, COMPLETION, 0)

    def test_empty_heap_pop_and_peek_rejected(self):
        heap = EventHeap()
        with pytest.raises(ConfigurationError):
            heap.pop()
        with pytest.raises(ConfigurationError):
            heap.peek_time()

    def test_len_and_bool(self):
        heap = EventHeap()
        assert not heap and len(heap) == 0
        heap.push(1, GATE, 0)
        assert heap and len(heap) == 1
