"""The vectorized job ledger and its percentile parity with PR-5."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import COMPLETED, PENDING, REJECTED, SHED, JobLedger
from repro.fleet.ledger import percentile_array
from repro.fleet.synthetic import SyntheticJob
from repro.serve.runtime import percentile as scalar_percentile


def _jobs(count, values=None):
    return [SyntheticJob(job_id=i, arrival_cycle=10 * (i + 1),
                         value=(values[i] if values else 1.0))
            for i in range(count)]


class TestLedgerWrites:
    def test_counts_and_masks(self):
        ledger = JobLedger(_jobs(4))
        ledger.mark_completed(0, soc=1, start=15, completion=40,
                              compute_cycles=20, output_bits=64, batch_id=0,
                              batch_size=1, energy=5.0, digest="d0")
        ledger.mark_rejected(1)
        ledger.mark_shed(2)
        assert (ledger.submitted, ledger.completed, ledger.rejected,
                ledger.shed, ledger.unresolved) == (4, 1, 1, 1, 1)
        assert ledger.ids_with_status(COMPLETED) == [0]
        assert ledger.ids_with_status(REJECTED) == [1]
        assert ledger.ids_with_status(SHED) == [2]
        assert ledger.ids_with_status(PENDING) == [3]
        assert ledger.digests == {0: "d0"}
        assert list(ledger.latencies()) == [30]
        assert list(ledger.wait_cycles()) == [5]
        assert ledger.total_energy == 5.0

    def test_double_resolution_rejected(self):
        ledger = JobLedger(_jobs(2))
        ledger.mark_rejected(0)
        with pytest.raises(ConfigurationError):
            ledger.mark_shed(0)

    def test_unknown_job_rejected(self):
        with pytest.raises(ConfigurationError):
            JobLedger(_jobs(2)).mark_rejected(99)

    def test_duplicate_ids_rejected(self):
        jobs = _jobs(2)
        jobs[1].job_id = jobs[0].job_id
        with pytest.raises(ConfigurationError):
            JobLedger(jobs)

    def test_value_accounting(self):
        ledger = JobLedger(_jobs(3, values=[1.0, 4.0, 2.0]))
        ledger.mark_shed(1)
        ledger.mark_completed(2, soc=0, start=30, completion=31,
                              compute_cycles=1, output_bits=64, batch_id=0,
                              batch_size=1, energy=1.0, digest="d")
        assert ledger.shed_value == 4.0
        assert ledger.completed_value == 2.0

    def test_empty_ledger(self):
        ledger = JobLedger([])
        assert ledger.submitted == 0 and len(ledger) == 0
        assert ledger.latency_percentiles() == {"p50": 0.0, "p95": 0.0,
                                                "p99": 0.0}


class TestPercentileArray:
    """Hardening of the nearest-rank rule, scalar and vectorized."""

    def test_empty_input(self):
        assert percentile_array(np.array([]), 0.5) == 0.0
        assert scalar_percentile([], 0.5) == 0.0

    def test_fraction_zero_is_the_minimum(self):
        values = np.array([30, 10, 20])
        assert percentile_array(values, 0.0) == 10.0
        assert scalar_percentile(list(values), 0.0) == 10.0

    def test_fraction_one_is_the_maximum(self):
        values = np.array([30, 10, 20])
        assert percentile_array(values, 1.0) == 30.0
        assert scalar_percentile(list(values), 1.0) == 30.0

    def test_fraction_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_array(np.array([1]), -0.1)
        with pytest.raises(ConfigurationError):
            percentile_array(np.array([1]), 1.5)

    @pytest.mark.parametrize("fraction", [0.0, 0.01, 0.25, 0.5, 0.75,
                                          0.95, 0.99, 1.0])
    def test_scalar_parity_on_random_draws(self, fraction):
        rng = np.random.default_rng(7)
        for size in (1, 2, 3, 10, 101, 1000):
            values = rng.integers(0, 10_000, size)
            assert (percentile_array(values, fraction)
                    == scalar_percentile([int(v) for v in values], fraction))

    @pytest.mark.parametrize("fraction", [0.0, 0.01, 0.25, 0.5, 0.75,
                                          0.95, 0.99, 1.0])
    def test_agrees_with_numpy_inverted_cdf(self, fraction):
        """Nearest-rank == numpy's inverted_cdf for every fraction > 0
        (at 0.0 both conventions return the minimum)."""
        try:
            np.percentile(np.array([1.0]), 50.0, method="inverted_cdf")
        except TypeError:  # pragma: no cover - numpy < 1.22 fallback
            pytest.skip("numpy without percentile method= support")
        rng = np.random.default_rng(13)
        for size in (1, 2, 7, 100, 997):
            values = rng.integers(0, 1 << 20, size).astype(np.float64)
            expected = float(np.percentile(values, fraction * 100.0,
                                           method="inverted_cdf"))
            assert percentile_array(values, fraction) == expected
