"""The autoscaler state machine and the predictive prewarm driver."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import ArrivalMixPredictor, Autoscaler, PrewarmDriver
from repro.fleet.autoscale import AWAKE, GATED, WAKING
from repro.power.models import (
    SOC_GATED_ENERGY_PER_CYCLE,
    SOC_IDLE_ENERGY_PER_CYCLE,
    SOC_WAKE_ENERGY,
    soc_static_energy,
)
from repro.serve.kernels import KernelLibrary


class TestAutoscalerStateMachine:
    def _scaler(self, count=3, **kwargs):
        kwargs.setdefault("enabled", True)
        kwargs.setdefault("idle_timeout", 100)
        kwargs.setdefault("wake_latency", 10)
        return Autoscaler(count, **kwargs)

    def test_gate_wake_roundtrip(self):
        scaler = self._scaler()
        epoch = scaler.idle_check_epoch(0)
        assert scaler.try_gate(0, epoch, now=500, idle=True)
        assert scaler.states[0].state == GATED
        assert scaler.awake_count() == 2
        ready = scaler.request_wake(0, now=800)
        assert ready == 810
        assert scaler.states[0].state == WAKING
        assert scaler.states[0].gated_cycles == 300
        scaler.complete_wake(0)
        assert scaler.states[0].state == AWAKE

    def test_stale_epoch_is_a_no_op(self):
        scaler = self._scaler()
        epoch = scaler.idle_check_epoch(1)
        scaler.note_activity(1)
        assert not scaler.try_gate(1, epoch, now=500, idle=True)
        assert scaler.states[1].state == AWAKE

    def test_min_awake_floor_holds(self):
        scaler = self._scaler(count=2, min_awake=1)
        assert scaler.try_gate(0, scaler.idle_check_epoch(0), 100, idle=True)
        assert not scaler.try_gate(1, scaler.idle_check_epoch(1), 100,
                                   idle=True)
        assert scaler.awake_count() == 1

    def test_disabled_scaler_never_gates(self):
        scaler = Autoscaler(2, enabled=False)
        assert not scaler.try_gate(0, scaler.idle_check_epoch(0), 100,
                                   idle=True)

    def test_busy_soc_never_gates(self):
        scaler = self._scaler()
        assert not scaler.try_gate(0, scaler.idle_check_epoch(0), 100,
                                   idle=False)

    def test_wake_of_awake_soc_is_free(self):
        scaler = self._scaler()
        assert scaler.request_wake(0, now=50) is None

    def test_spurious_wake_event_rejected(self):
        with pytest.raises(ConfigurationError):
            self._scaler().complete_wake(0)

    def test_finalize_closes_open_intervals(self):
        scaler = self._scaler()
        scaler.try_gate(0, scaler.idle_check_epoch(0), now=100, idle=True)
        scaler.finalize(end=600)
        assert scaler.states[0].gated_cycles == 500
        assert scaler.states[0].state == AWAKE

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Autoscaler(0)
        with pytest.raises(ConfigurationError):
            Autoscaler(2, idle_timeout=0)
        with pytest.raises(ConfigurationError):
            Autoscaler(2, min_awake=3)


class TestStaticEnergy:
    def test_constants_ledger(self):
        assert soc_static_energy(100, 200, 1) == pytest.approx(
            100 * SOC_IDLE_ENERGY_PER_CYCLE
            + 200 * SOC_GATED_ENERGY_PER_CYCLE + SOC_WAKE_ENERGY)
        with pytest.raises(ValueError):
            soc_static_energy(-1, 0, 0)

    def test_fleet_ledger_and_savings(self):
        scaler = Autoscaler(2, enabled=True, wake_latency=0)
        scaler.try_gate(0, scaler.idle_check_epoch(0), now=0, idle=True)
        scaler.finalize(end=1_000)
        ledger = scaler.static_energy([0, 400], span=1_000)
        assert ledger["gated_cycles"] == 1_000
        assert ledger["idle_cycles"] == 600
        assert ledger["saved"] == pytest.approx(
            1_000 * (SOC_IDLE_ENERGY_PER_CYCLE - SOC_GATED_ENERGY_PER_CYCLE))
        assert ledger["static_energy"] < ledger["ungated_static_energy"]

    def test_busy_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Autoscaler(2).static_energy([1], span=10)


class TestArrivalMixPredictor:
    def test_window_slides(self):
        predictor = ArrivalMixPredictor(window=3, top_k=2)
        for kernel in ("a", "a", "b", "c", "c"):
            predictor.observe([kernel])
        # window now holds b, c, c
        assert predictor.mix() == {"b": 1, "c": 2}
        assert predictor.predicted() == ["c", "b"]

    def test_ranking_breaks_ties_by_name(self):
        predictor = ArrivalMixPredictor(window=8, top_k=3)
        for kernel in ("z", "a", "m"):
            predictor.observe([kernel])
        assert predictor.predicted() == ["a", "m", "z"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalMixPredictor(window=0)
        with pytest.raises(ConfigurationError):
            ArrivalMixPredictor(top_k=0)


class TestPrewarmDriver:
    def test_fires_on_the_cadence_and_heats_the_library(self):
        library = KernelLibrary()
        driver = PrewarmDriver(library, window=8, top_k=1, interval=4)
        for _ in range(8):
            driver.observe(["fir:lowpass4"])
        assert driver.firings == 2
        # first firing compiled the hot kernel, second found it warm
        assert driver.designs_compiled == 1
        stats = driver.stats()
        assert stats["prewarm_firings"] == 2
        assert stats["prewarm_window_kernels"] == 1
        assert library.bitstream_bits("fir:lowpass4") > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PrewarmDriver(KernelLibrary(), interval=0)
