"""Partitioned fleet simulation: routing, splits, and the serial merge.

Everything here runs in-process (``parallel="serial"`` or one
partition), which exercises the exact worker body the processes backend
dispatches; the serial-vs-processes digest conformance lives in
``tests/par/test_conformance_random.py``.
"""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.fleet import (
    FleetSettings,
    execute_fleet_serial,
    partition_jobs,
    partition_soc_counts,
    simulate_fleet,
    simulate_fleet_partitioned,
    synthetic_trace,
)
from repro.fleet import partition as partition_module
from repro.serve.kernels import KernelLibrary


@pytest.fixture(scope="module")
def jobs():
    return synthetic_trace("diurnal", 24, seed=3, mean_gap=1_500)


class TestRouting:
    def test_jobs_route_by_id_mod_partitions(self, jobs):
        shards = partition_jobs(jobs, 3)
        assert sum(len(shard) for shard in shards) == len(jobs)
        for index, shard in enumerate(shards):
            assert all(job.job_id % 3 == index for job in shard)

    def test_routing_preserves_input_order(self, jobs):
        for shard in partition_jobs(jobs, 2):
            ids = [job.job_id for job in shard]
            original = [job.job_id for job in jobs if job.job_id in set(ids)]
            assert ids == original

    def test_zero_partitions_rejected(self, jobs):
        with pytest.raises(ConfigurationError):
            partition_jobs(jobs, 0)


class TestSocSplit:
    def test_near_even_split(self):
        assert partition_soc_counts(8, 3) == [3, 3, 2]
        assert partition_soc_counts(6, 2) == [3, 3]
        assert partition_soc_counts(4, 4) == [1, 1, 1, 1]

    def test_cannot_cut_finer_than_one_soc(self):
        with pytest.raises(ConfigurationError, match="at least one SoC"):
            partition_soc_counts(2, 3)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_soc_counts(4, 0)


class TestSerialMerge:
    def test_single_partition_is_exactly_simulate_fleet(self, jobs):
        settings = FleetSettings(soc_count=4)
        whole = simulate_fleet(jobs, settings, library=KernelLibrary())
        report = simulate_fleet_partitioned(jobs, settings, partitions=1)
        assert report.digests == whole.digests
        assert report.completed == whole.completed
        assert report.rejected == whole.rejected
        assert report.shed == whole.shed
        assert report.makespan_cycles == whole.makespan_cycles
        assert report.events_processed == whole.events_processed
        assert report.total_energy == pytest.approx(whole.total_energy)
        assert report.latency_percentiles() == whole.latency_percentiles()

    def test_partitioned_digests_match_naive_serial_execution(self, jobs):
        serial = {result.job_id: result.digest
                  for result in execute_fleet_serial(jobs)}
        report = simulate_fleet_partitioned(jobs, FleetSettings(soc_count=6),
                                            partitions=3, parallel="serial")
        digests = report.digests
        assert digests
        assert digests == {job_id: serial[job_id] for job_id in digests}
        assert report.conserved

    def test_completion_order_is_merged_and_sorted(self, jobs):
        report = simulate_fleet_partitioned(jobs, FleetSettings(soc_count=4),
                                            partitions=2, parallel="serial")
        order = report.completion_order()
        assert len(order) == report.completed
        assert order == sorted(order)
        assert {job_id for _, job_id in order} \
            == set(report.digests)

    def test_latency_percentiles_pool_all_partitions(self, jobs):
        report = simulate_fleet_partitioned(jobs, FleetSettings(soc_count=4),
                                            partitions=2, parallel="serial")
        pooled = np.sort(np.concatenate(
            [np.asarray(part.latencies) for part in report.partitions]))
        percentiles = report.latency_percentiles()
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert percentiles["p99"] <= pooled.max()

    def test_summary_headline_fields(self, jobs):
        report = simulate_fleet_partitioned(jobs, FleetSettings(soc_count=4),
                                            partitions=2, parallel="serial")
        summary = report.summary()
        assert summary["partitions"] == 2
        assert summary["parallel"] == "serial"
        assert summary["completed"] == report.completed
        assert summary["makespan_cycles"] == report.makespan_cycles
        assert "latency_p99" in summary

    def test_min_awake_clamped_to_partition_size(self, jobs):
        settings = FleetSettings(soc_count=4, autoscale=True, min_awake=4)
        report = simulate_fleet_partitioned(jobs, settings, partitions=4,
                                            parallel="serial")
        assert report.conserved
        assert all(part.soc_count == 1 for part in report.partitions)

    def test_unknown_backend_rejected(self, jobs):
        with pytest.raises(ConfigurationError, match="parallel backend"):
            simulate_fleet_partitioned(jobs, parallel="threads")


class TestDefaults:
    def test_single_core_host_falls_back_inline(self, jobs, monkeypatch):
        # partitions defaults to min(cores, soc_count); with one core the
        # serial path runs inline even though parallel="processes".
        monkeypatch.setattr(partition_module, "available_cpus", lambda: 1)
        report = simulate_fleet_partitioned(jobs, FleetSettings(soc_count=4))
        assert len(report.partitions) == 1
        assert report.conserved

    def test_default_partition_count_clamps_to_socs(self, jobs, monkeypatch):
        monkeypatch.setattr(partition_module, "available_cpus", lambda: 64)
        report = simulate_fleet_partitioned(jobs, FleetSettings(soc_count=2),
                                            parallel="serial")
        assert len(report.partitions) == 2
