"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import build_da_array, build_me_array
from repro.video import panning_sequence


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def random_vector(rng) -> np.ndarray:
    """A random 8-sample signed input vector (12-bit range like the paper)."""
    return rng.integers(-2048, 2048, 8)


@pytest.fixture
def random_pixel_block(rng) -> np.ndarray:
    """A random 8x8 block of 8-bit luminance samples."""
    return rng.integers(0, 256, (8, 8))


@pytest.fixture
def da_array():
    """A freshly built DA/DCT array fabric."""
    return build_da_array()


@pytest.fixture
def me_array():
    """A freshly built ME array fabric."""
    return build_me_array()


@pytest.fixture
def small_sequence():
    """A small panning sequence (64x64) keeping search tests fast."""
    return panning_sequence(height=64, width=64, pan=(1, 2), seed=7)


@pytest.fixture
def frame_pair(small_sequence):
    """(previous, current) frames of the small panning sequence."""
    return small_sequence.frame(0), small_sequence.frame(1)
