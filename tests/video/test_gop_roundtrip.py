"""Encoder <-> decoder round-trip conformance over the scene suite.

For every scene kind and every encoding strategy, the decoder must
rebuild the frames bit-identically to the encoder's own reconstruction
loop (the closed-loop invariant that keeps prediction drift at zero), and
the GOP-parallel record streams must decode exactly like the serial ones.
"""

import numpy as np
import pytest

from repro.video import EncoderConfiguration, VideoEncoder
from repro.video.decoder import VideoDecoder
from repro.video.gop import encode_sequence_parallel, split_into_gops
from repro.video.metrics import psnr
from repro.video.scenes import SCENE_KINDS, scene_frames

FRAME_COUNT = 8
HEIGHT, WIDTH = 48, 64


def encoder_reconstructions(frames, configuration):
    """Per-frame reconstructed references of a serial closed-GOP encode."""
    gops = split_into_gops(frames, gop_size=4)
    reconstructions = []
    for gop in gops:
        encoder = VideoEncoder(EncoderConfiguration(
            **{field: getattr(configuration, field)
               for field in ("qp", "search_name", "search_range",
                             "intra_sad_threshold", "vectorized")}))
        for frame_index in gop.frame_indices:
            encoder.encode_frame(frames[frame_index], frame_index)
            reconstructions.append(encoder.reference_frame.copy())
    return reconstructions


@pytest.fixture(scope="module", params=SCENE_KINDS)
def scene(request):
    return request.param, scene_frames(request.param, count=FRAME_COUNT,
                                       height=HEIGHT, width=WIDTH, seed=5)


class TestRoundTripConformance:
    @pytest.mark.parametrize("strategy", ["serial", "threads", "lockstep"])
    def test_decoder_matches_encoder_reconstruction(self, scene, strategy):
        kind, frames = scene
        configuration = EncoderConfiguration(search_range=4)
        outcome = encode_sequence_parallel(frames, configuration, gop_size=4,
                                           workers=2, strategy=strategy)
        decoder = VideoDecoder()
        decoded = decoder.decode_sequence(outcome.statistics,
                                          frame_shape=(HEIGHT, WIDTH))
        expected = encoder_reconstructions(frames, configuration)
        assert len(decoded) == len(expected) == FRAME_COUNT
        for index, (decoded_frame, expected_frame) in enumerate(
                zip(decoded, expected)):
            assert np.array_equal(decoded_frame, expected_frame), \
                f"{kind}/{strategy}: frame {index} drifted"

    def test_decoded_psnr_matches_recorded_psnr(self, scene):
        """The statistics' PSNR is reproducible from the decoded output."""
        kind, frames = scene
        outcome = encode_sequence_parallel(frames,
                                           EncoderConfiguration(search_range=4),
                                           gop_size=4, workers=2,
                                           strategy="lockstep")
        decoder = VideoDecoder()
        decoded = decoder.decode_sequence(outcome.statistics,
                                          frame_shape=(HEIGHT, WIDTH))
        for frame, stats, reconstruction in zip(frames, outcome.statistics,
                                                decoded):
            assert psnr(frame, reconstruction) == pytest.approx(
                stats.psnr_db, abs=1e-9)

    def test_gop_substream_decodes_standalone(self, scene):
        """Any single GOP's records decode with a fresh decoder."""
        kind, frames = scene
        outcome = encode_sequence_parallel(frames,
                                           EncoderConfiguration(search_range=4),
                                           gop_size=4, workers=2,
                                           strategy="serial")
        full = VideoDecoder().decode_sequence(outcome.statistics,
                                              frame_shape=(HEIGHT, WIDTH))
        for gop in outcome.gops:
            records = outcome.statistics[gop.start:gop.stop]
            standalone = VideoDecoder().decode_sequence(
                records, frame_shape=(HEIGHT, WIDTH))
            for offset, frame in enumerate(standalone):
                assert np.array_equal(frame, full[gop.start + offset])


class TestSceneCutStream:
    def test_cut_sequence_roundtrip_with_detection(self):
        frames = scene_frames("cut", count=FRAME_COUNT, height=HEIGHT,
                              width=WIDTH, seed=5)
        outcome = encode_sequence_parallel(
            frames, EncoderConfiguration(search_range=4), gop_size=4,
            scene_cut_threshold=35.0, workers=2, strategy="lockstep")
        assert any(gop.start == FRAME_COUNT // 2 for gop in outcome.gops)
        decoded = VideoDecoder().decode_sequence(outcome.statistics,
                                                 frame_shape=(HEIGHT, WIDTH))
        serial = encode_sequence_parallel(
            frames, EncoderConfiguration(search_range=4), gop_size=4,
            scene_cut_threshold=35.0, workers=2, strategy="serial")
        decoded_serial = VideoDecoder().decode_sequence(
            serial.statistics, frame_shape=(HEIGHT, WIDTH))
        for frame_a, frame_b in zip(decoded, decoded_serial):
            assert np.array_equal(frame_a, frame_b)
