"""Tests of the synthetic video source."""

import numpy as np
import pytest

from repro.video.frames import (
    MovingObject,
    SyntheticSequence,
    moving_square_sequence,
    panning_sequence,
)


class TestSyntheticSequence:
    def test_frames_are_8_bit_luminance(self):
        sequence = panning_sequence(height=48, width=64, seed=1)
        frame = sequence.frame(0)
        assert frame.shape == (48, 64)
        assert frame.min() >= 0
        assert frame.max() <= 255
        assert frame.dtype == np.int64

    def test_sequences_are_deterministic_for_a_seed(self):
        a = panning_sequence(height=48, width=64, seed=5).frame(3)
        b = panning_sequence(height=48, width=64, seed=5).frame(3)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = panning_sequence(height=48, width=64, seed=5).frame(0)
        b = panning_sequence(height=48, width=64, seed=6).frame(0)
        assert not np.array_equal(a, b)

    def test_pan_translates_the_interior(self):
        sequence = panning_sequence(height=64, width=64, pan=(1, 2), seed=4)
        first, second = sequence.frame(0), sequence.frame(1)
        # A block of the current frame equals the block displaced by the
        # ground-truth vector in the previous frame.
        dy, dx = sequence.ground_truth_background_vector()
        assert np.array_equal(second[24:40, 24:40],
                              first[24 + dy:40 + dy, 24 + dx:40 + dx])

    def test_noise_changes_frames_but_stays_bounded(self):
        clean = panning_sequence(height=48, width=48, seed=3)
        noisy = panning_sequence(height=48, width=48, noise_sigma=5.0, seed=3)
        assert not np.array_equal(clean.frame(0), noisy.frame(0))
        assert noisy.frame(0).max() <= 255 and noisy.frame(0).min() >= 0

    def test_frame_count_iterator(self):
        frames = list(panning_sequence(height=32, width=32).frames(3))
        assert len(frames) == 3

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSequence(height=0, width=10)

    def test_negative_frame_index_rejected(self):
        with pytest.raises(ValueError):
            panning_sequence().frame(-1)


class TestMovingObjects:
    def test_object_moves_with_its_velocity(self):
        moving = MovingObject(top=10, left=20, height=8, width=8, velocity=(2, -1))
        assert moving.position_at(0) == (10, 20)
        assert moving.position_at(3) == (16, 17)

    def test_moving_square_changes_local_content(self):
        sequence = moving_square_sequence(height=64, width=64, velocity=(0, 4), seed=2)
        first, second = sequence.frame(0), sequence.frame(1)
        assert not np.array_equal(first, second)
        # The background (far corner) is static for this sequence.
        assert np.array_equal(first[:8, :8], second[:8, :8])
