"""Tests of GOP splitting and the parallel encoding strategies."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct import MixedRomDCT
from repro.flow import cache as flow_cache_module
from repro.flow.cache import FlowCache
from repro.video import EncoderConfiguration, VideoEncoder
from repro.video.codec import FrameStatistics
from repro.video.frames import panning_sequence
from repro.video.gop import (
    DEFAULT_SCENE_CUT_THRESHOLD,
    Gop,
    compile_gop_kernels,
    detect_scene_cuts,
    encode_gop_batch,
    encode_sequence_parallel,
    split_into_gops,
)
from repro.video.rate_control import RateController, RateControlSettings
from repro.video.scenes import scene_frames


def assert_statistics_identical(first, second):
    """Field-by-field bit-identity of two FrameStatistics streams."""
    assert len(first) == len(second)
    for stats_a, stats_b in zip(first, second):
        assert stats_a.frame_index == stats_b.frame_index
        assert stats_a.frame_type == stats_b.frame_type
        assert stats_a.qp == stats_b.qp
        assert stats_a.psnr_db == stats_b.psnr_db
        assert stats_a.dct_blocks == stats_b.dct_blocks
        assert stats_a.dct_cycles == stats_b.dct_cycles
        assert stats_a.sad_operations == stats_b.sad_operations
        assert stats_a.search_candidates == stats_b.search_candidates
        assert stats_a.estimated_bits == stats_b.estimated_bits
        assert len(stats_a.macroblocks) == len(stats_b.macroblocks)
        for mb_a, mb_b in zip(stats_a.macroblocks, stats_b.macroblocks):
            assert (mb_a.top, mb_a.left, mb_a.mode, mb_a.motion_vector,
                    mb_a.sad, mb_a.candidates_evaluated, mb_a.estimated_bits) \
                == (mb_b.top, mb_b.left, mb_b.mode, mb_b.motion_vector,
                    mb_b.sad, mb_b.candidates_evaluated, mb_b.estimated_bits)
            for levels_a, levels_b in zip(mb_a.level_blocks,
                                          mb_b.level_blocks):
                assert np.array_equal(levels_a, levels_b)


@pytest.fixture(scope="module")
def pan_frames():
    sequence = panning_sequence(height=48, width=64, pan=(1, 2), seed=7)
    return [sequence.frame(index) for index in range(12)]


class TestGopSplitting:
    def test_fixed_cadence(self, pan_frames):
        gops = split_into_gops(pan_frames, gop_size=4)
        assert [(gop.start, gop.stop) for gop in gops] == [(0, 4), (4, 8),
                                                           (8, 12)]
        assert [gop.index for gop in gops] == [0, 1, 2]
        assert all(gop.length == 4 for gop in gops)

    def test_trailing_partial_gop(self, pan_frames):
        gops = split_into_gops(pan_frames[:10], gop_size=4)
        assert [(gop.start, gop.stop) for gop in gops] == [(0, 4), (4, 8),
                                                           (8, 10)]

    def test_empty_sequence(self):
        assert split_into_gops([], gop_size=4) == []

    def test_invalid_gop_size(self, pan_frames):
        with pytest.raises(ConfigurationError):
            split_into_gops(pan_frames, gop_size=0)

    def test_empty_gop_rejected(self):
        with pytest.raises(ConfigurationError):
            Gop(index=0, start=3, stop=3)

    def test_scene_cut_detection(self):
        frames = scene_frames("cut", count=10, height=48, width=64, seed=3)
        cuts = detect_scene_cuts(frames, DEFAULT_SCENE_CUT_THRESHOLD)
        assert cuts == [5]          # the hard cut sits mid-sequence

    def test_cut_starts_new_gop_and_resets_cadence(self):
        frames = scene_frames("cut", count=10, height=48, width=64, seed=3)
        gops = split_into_gops(frames, gop_size=4,
                               scene_cut_threshold=DEFAULT_SCENE_CUT_THRESHOLD)
        starts = [gop.start for gop in gops]
        assert 5 in starts          # the cut opens a GOP
        assert (0, 4) == (gops[0].start, gops[0].stop)
        assert (4, 5) == (gops[1].start, gops[1].stop)

    def test_pan_has_no_cuts(self, pan_frames):
        assert detect_scene_cuts(pan_frames,
                                 DEFAULT_SCENE_CUT_THRESHOLD) == []


class TestStrategyBitIdentity:
    @pytest.mark.parametrize("strategy", ["threads", "lockstep"])
    def test_matches_serial(self, pan_frames, strategy):
        configuration = EncoderConfiguration(search_range=4)
        serial = encode_sequence_parallel(pan_frames, configuration,
                                          gop_size=4, workers=3,
                                          strategy="serial")
        parallel = encode_sequence_parallel(pan_frames, configuration,
                                            gop_size=4, workers=3,
                                            strategy=strategy)
        assert_statistics_identical(serial.statistics, parallel.statistics)
        assert np.array_equal(serial.final_reference,
                              parallel.final_reference)

    def test_single_gop_matches_plain_encode_sequence(self, pan_frames):
        configuration = EncoderConfiguration(search_range=4)
        encoder = VideoEncoder(EncoderConfiguration(search_range=4))
        plain = encoder.encode_sequence(pan_frames[:5])
        outcome = encode_sequence_parallel(pan_frames[:5], configuration,
                                           gop_size=5, workers=4,
                                           strategy="lockstep")
        assert_statistics_identical(plain, outcome.statistics)

    def test_ragged_gops(self, pan_frames):
        configuration = EncoderConfiguration(search_range=4)
        serial = encode_sequence_parallel(pan_frames[:11], configuration,
                                          gop_size=3, workers=4,
                                          strategy="serial")
        lockstep = encode_sequence_parallel(pan_frames[:11], configuration,
                                            gop_size=3, workers=4,
                                            strategy="lockstep")
        assert_statistics_identical(serial.statistics, lockstep.statistics)

    def test_more_gops_than_workers(self, pan_frames):
        configuration = EncoderConfiguration(search_range=3)
        serial = encode_sequence_parallel(pan_frames, configuration,
                                          gop_size=2, workers=2,
                                          strategy="serial")
        lockstep = encode_sequence_parallel(pan_frames, configuration,
                                            gop_size=2, workers=2,
                                            strategy="lockstep")
        threads = encode_sequence_parallel(pan_frames, configuration,
                                           gop_size=2, workers=2,
                                           strategy="threads")
        assert_statistics_identical(serial.statistics, lockstep.statistics)
        assert_statistics_identical(serial.statistics, threads.statistics)

    def test_rate_controlled_strategies_identical(self, pan_frames):
        configuration = EncoderConfiguration(search_range=4)
        controller = RateController(RateControlSettings(
            target_bits_per_frame=5000, base_qp=8))
        outcomes = {
            strategy: encode_sequence_parallel(
                pan_frames, configuration, gop_size=4, workers=3,
                strategy=strategy, rate_controller=controller)
            for strategy in ("serial", "threads", "lockstep")}
        assert_statistics_identical(outcomes["serial"].statistics,
                                    outcomes["threads"].statistics)
        assert_statistics_identical(outcomes["serial"].statistics,
                                    outcomes["lockstep"].statistics)
        assert (outcomes["serial"].qp_trajectories
                == outcomes["lockstep"].qp_trajectories)
        # QP moves within a GOP, proving the controller is live.
        assert any(len(set(trajectory)) > 1
                   for trajectory in outcomes["serial"].qp_trajectories)

    def test_gop_frames_are_closed(self, pan_frames):
        outcome = encode_sequence_parallel(pan_frames,
                                           EncoderConfiguration(search_range=4),
                                           gop_size=4, strategy="serial")
        for gop in outcome.gops:
            assert outcome.statistics[gop.start].frame_type == "I"


class TestStrategySelection:
    """Pin the ``auto`` resolution table of ``_resolve_strategy``.

    ``threads`` must never be auto-selected (a measured 0.97x loss on the
    encode path); multicore hosts get ``processes``, single-core hosts
    fall back to ``serial``.
    """

    def test_auto_prefers_lockstep_for_batchable_configuration(self, pan_frames):
        outcome = encode_sequence_parallel(pan_frames, EncoderConfiguration(),
                                           gop_size=6, workers=2)
        assert outcome.strategy == "lockstep"

    def test_auto_serial_for_single_worker(self, pan_frames):
        outcome = encode_sequence_parallel(pan_frames[:6],
                                           EncoderConfiguration(),
                                           gop_size=3, workers=1)
        assert outcome.strategy == "serial"

    def test_auto_resolution_table(self, monkeypatch):
        from repro.par import pool as par_pool
        from repro.video.gop import _lockstep_supported, _resolve_strategy

        batchable = EncoderConfiguration()
        unbatchable = EncoderConfiguration(search_name="three_step")
        assert not _lockstep_supported(unbatchable)
        for cores, configuration, workers, gop_count, expected in [
            # Nothing to parallelise: serial, whatever the host offers.
            (8, batchable, 1, 4, "serial"),
            (8, batchable, 4, 1, "serial"),
            # Batchable: lockstep even on one core (it scales per-call
            # overhead, not cores).
            (1, batchable, 4, 4, "lockstep"),
            (8, batchable, 4, 4, "lockstep"),
            # Unbatchable on a multicore host: real processes.
            (2, unbatchable, 4, 4, "processes"),
            (8, unbatchable, 2, 8, "processes"),
            # Unbatchable on one core: serial — never threads.
            (1, unbatchable, 4, 4, "serial"),
        ]:
            monkeypatch.setattr(par_pool, "available_cpus", lambda n=cores: n)
            resolved = _resolve_strategy("auto", configuration, workers,
                                         gop_count)
            assert resolved == expected, (cores, workers, gop_count)
            assert resolved != "threads"

    def test_auto_never_selects_threads_on_multicore(self, monkeypatch):
        from repro.par import pool as par_pool
        from repro.video.gop import _resolve_strategy

        monkeypatch.setattr(par_pool, "available_cpus", lambda: 16)
        for search in ("three_step", "diamond"):
            configuration = EncoderConfiguration(search_name=search)
            assert _resolve_strategy("auto", configuration, 4, 4) \
                == "processes"

    def test_explicit_strategies_pass_through(self):
        from repro.video.gop import _resolve_strategy

        configuration = EncoderConfiguration(search_name="three_step")
        for strategy in ("serial", "threads", "processes"):
            assert _resolve_strategy(strategy, configuration, 4, 4) == strategy

    def test_explicit_lockstep_rejects_unbatchable_configuration(self, pan_frames):
        configuration = EncoderConfiguration(search_name="diamond")
        with pytest.raises(ConfigurationError):
            encode_sequence_parallel(pan_frames[:6], configuration,
                                     gop_size=3, strategy="lockstep")

    def test_unknown_strategy_rejected(self, pan_frames):
        with pytest.raises(ConfigurationError):
            encode_sequence_parallel(pan_frames[:6], EncoderConfiguration(),
                                     strategy="fleet")

    def test_fast_search_threads_matches_serial(self, pan_frames):
        configuration = EncoderConfiguration(search_name="three_step",
                                             search_range=4)
        serial = encode_sequence_parallel(pan_frames[:8], configuration,
                                          gop_size=4, workers=2,
                                          strategy="serial")
        threads = encode_sequence_parallel(pan_frames[:8], configuration,
                                           gop_size=4, workers=2,
                                           strategy="threads")
        assert_statistics_identical(serial.statistics, threads.statistics)


class TestEncoderMethod:
    def test_merges_into_statistics_stream(self, pan_frames):
        encoder = VideoEncoder(EncoderConfiguration(search_range=4))
        returned = encoder.encode_sequence_parallel(pan_frames, gop_size=4,
                                                    workers=2)
        assert encoder.frame_statistics == returned
        assert [stats.frame_index for stats in returned] == list(range(12))
        assert encoder.reference_frame is not None

    def test_matches_serial_closed_gop_end_state(self, pan_frames):
        parallel_encoder = VideoEncoder(EncoderConfiguration(search_range=4))
        parallel_encoder.encode_sequence_parallel(pan_frames, gop_size=4,
                                                  workers=2,
                                                  strategy="lockstep")
        serial = encode_sequence_parallel(pan_frames,
                                          EncoderConfiguration(search_range=4),
                                          gop_size=4, strategy="serial")
        assert np.array_equal(parallel_encoder.reference_frame,
                              serial.final_reference)


class TestFlowCacheSharing:
    def test_workers_share_one_compilation(self, pan_frames, monkeypatch):
        shared = FlowCache()
        monkeypatch.setattr(flow_cache_module, "DEFAULT_CACHE", shared)
        configuration = EncoderConfiguration(search_range=2,
                                             dct_transform=MixedRomDCT(),
                                             vectorized=False)
        outcome = encode_sequence_parallel(pan_frames[:4], configuration,
                                           gop_size=2, workers=2,
                                           strategy="threads")
        assert outcome.compiled_kernels == 1
        stats = shared.stats()
        # The pre-warm compiles once; every worker's compile is a hit.
        assert stats["misses"] == 1
        assert stats["hits"] >= len(outcome.gops)

    def test_no_design_transform_compiles_nothing(self, pan_frames):
        assert compile_gop_kernels(EncoderConfiguration()) == 0


class TestEncodeGopBatch:
    """The serving runtime's cross-request batch entry point."""

    def _groups(self):
        return [scene_frames("pan", count=count, height=32, width=32,
                             seed=seed)
                for seed, count in ((0, 3), (1, 2), (2, 4))]

    def test_batch_matches_standalone_encodes(self):
        groups = self._groups()
        batched = encode_gop_batch(groups, EncoderConfiguration())
        for frames, (statistics, reference) in zip(groups, batched):
            encoder = VideoEncoder(EncoderConfiguration())
            alone = encoder.encode_sequence(frames)
            assert_statistics_identical(statistics, alone)
            assert np.array_equal(reference, encoder.reference_frame)

    def test_frame_indices_local_to_each_group(self):
        batched = encode_gop_batch(self._groups(), EncoderConfiguration())
        for frames, (statistics, _) in zip(self._groups(), batched):
            assert [stats.frame_index for stats in statistics] \
                == list(range(len(frames)))
            assert statistics[0].frame_type == "I"

    def test_serial_fallback_is_bit_identical(self):
        # three_step search cannot take the lockstep path; the fallback
        # must produce the same bits as the batched path does for a
        # batchable configuration of the same jobs.
        groups = self._groups()
        configuration = EncoderConfiguration(search_name="three_step")
        fallback = encode_gop_batch(groups, configuration)
        for frames, (statistics, _) in zip(groups, fallback):
            encoder = VideoEncoder(
                EncoderConfiguration(search_name="three_step"))
            assert_statistics_identical(statistics, encoder.encode_sequence(frames))

    def test_empty_and_invalid_batches(self):
        assert encode_gop_batch([], EncoderConfiguration()) == []
        with pytest.raises(ConfigurationError):
            encode_gop_batch([[]], EncoderConfiguration())

    def test_mismatched_shapes_rejected(self):
        tall = scene_frames("pan", count=2, height=48, width=32, seed=0)
        wide = scene_frames("pan", count=2, height=32, width=48, seed=0)
        with pytest.raises(ConfigurationError):
            encode_gop_batch([tall, wide], EncoderConfiguration())
