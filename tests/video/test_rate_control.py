"""Tests of the virtual-buffer rate controller and its encoder integration."""

import numpy as np
import pytest

from repro.dct.quantization import MAX_QP, MIN_QP
from repro.video import EncoderConfiguration, VideoEncoder
from repro.video.frames import panning_sequence
from repro.video.rate_control import RateController, RateControlSettings


class TestSettings:
    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError):
            RateControlSettings(target_bits_per_frame=0)

    def test_rejects_inverted_qp_bounds(self):
        with pytest.raises(ValueError):
            RateControlSettings(2000, min_qp=20, max_qp=10)

    def test_rejects_base_qp_outside_bounds(self):
        with pytest.raises(ValueError):
            RateControlSettings(2000, base_qp=4, min_qp=8)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            RateControlSettings(2000, gain=-1.0)

    def test_default_capacity_is_eight_targets(self):
        assert RateControlSettings(1000).capacity == 8000

    def test_explicit_capacity(self):
        assert RateControlSettings(1000, buffer_capacity=500).capacity == 500
        with pytest.raises(ValueError):
            RateControlSettings(1000, buffer_capacity=-1).capacity


class TestController:
    def test_starts_at_base_qp(self):
        controller = RateController(RateControlSettings(2000, base_qp=10))
        assert controller.qp == 10
        assert controller.buffer_fullness == 0.0

    def test_overspend_raises_qp(self):
        controller = RateController(RateControlSettings(2000, base_qp=8,
                                                        gain=2.0))
        assert controller.update(6000) == 12        # +2 QP per target frame

    def test_underspend_lowers_qp(self):
        controller = RateController(RateControlSettings(2000, base_qp=8,
                                                        gain=2.0))
        assert controller.update(0) == 6

    def test_qp_clamped_to_range(self):
        settings = RateControlSettings(100, base_qp=8, gain=10.0)
        controller = RateController(settings)
        for _ in range(20):
            controller.update(100000)
        assert controller.qp == MAX_QP
        for _ in range(40):
            controller.update(0)
        assert controller.qp == MIN_QP

    def test_buffer_clamped_to_capacity(self):
        controller = RateController(RateControlSettings(
            1000, buffer_capacity=1500))
        controller.update(10_000_000)
        assert controller.buffer_fullness == 1500

    def test_history_tracks_updates(self):
        controller = RateController(RateControlSettings(2000))
        controller.update(3000)
        controller.update(1000)
        assert controller.bits_history == [3000, 1000]
        assert len(controller.qp_history) == 2

    def test_clone_resets_state(self):
        controller = RateController(RateControlSettings(2000, base_qp=9))
        controller.update(100000)
        clone = controller.clone()
        assert clone.qp == 9
        assert clone.buffer_fullness == 0.0
        assert clone.settings is controller.settings
        assert clone.qp_history == []


class TestEncoderIntegration:
    @pytest.fixture(scope="class")
    def frames(self):
        sequence = panning_sequence(height=48, width=64, pan=(1, 2), seed=23)
        return [sequence.frame(index) for index in range(8)]

    def test_controller_steers_toward_target(self, frames):
        fixed = VideoEncoder(EncoderConfiguration(qp=8, search_range=4))
        fixed_stats = fixed.encode_sequence(frames)
        fixed_bits = np.mean([stats.estimated_bits for stats in fixed_stats])

        # Aim well below the fixed-QP8 spend: the controller must coarsen.
        target = int(fixed_bits * 0.5)
        controller = RateController(RateControlSettings(
            target_bits_per_frame=target, base_qp=8, gain=4.0))
        controlled = VideoEncoder(EncoderConfiguration(qp=8, search_range=4))
        controlled_stats = controlled.encode_sequence(
            frames, rate_controller=controller)
        controlled_bits = np.mean(
            [stats.estimated_bits for stats in controlled_stats])
        assert controlled_bits < fixed_bits
        assert abs(controlled_bits - target) < abs(fixed_bits - target)
        assert max(controller.qp_history) > 8

    def test_configuration_qp_restored_after_sequence(self, frames):
        controller = RateController(RateControlSettings(
            target_bits_per_frame=1000, base_qp=8, gain=4.0))
        configuration = EncoderConfiguration(qp=8, search_range=4)
        encoder = VideoEncoder(configuration)
        encoder.encode_sequence(frames, rate_controller=controller)
        # The controller drove QP per frame but the caller's setting
        # must not drift.
        assert configuration.qp == 8

    def test_per_frame_qp_recorded_in_statistics(self, frames):
        controller = RateController(RateControlSettings(
            target_bits_per_frame=2000, base_qp=8, gain=4.0))
        encoder = VideoEncoder(EncoderConfiguration(search_range=4))
        statistics = encoder.encode_sequence(frames,
                                             rate_controller=controller)
        assert statistics[0].qp == 8                     # base QP first
        recorded = [stats.qp for stats in statistics[1:]]
        assert recorded == controller.qp_history[:-1]    # applied with lag 1
