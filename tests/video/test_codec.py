"""Tests of the hybrid encoder loop."""

import numpy as np
import pytest

from repro.dct import MixedRomDCT, SCCDirectDCT
from repro.video.codec import EncoderConfiguration, VideoEncoder
from repro.video.frames import panning_sequence


@pytest.fixture(scope="module")
def sequence():
    return panning_sequence(height=48, width=48, pan=(1, 1), seed=11)


class TestIntraCoding:
    def test_first_frame_is_intra(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(search_range=2))
        statistics = encoder.encode_frame(sequence.frame(0), 0)
        assert statistics.frame_type == "I"
        assert all(mb.mode == "intra" for mb in statistics.macroblocks)

    def test_intra_reconstruction_quality_reasonable(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=2))
        statistics = encoder.encode_frame(sequence.frame(0), 0)
        assert statistics.psnr_db > 30.0

    def test_lower_qp_gives_higher_psnr(self, sequence):
        fine = VideoEncoder(EncoderConfiguration(qp=2, search_range=2))
        coarse = VideoEncoder(EncoderConfiguration(qp=20, search_range=2))
        assert (fine.encode_frame(sequence.frame(0)).psnr_db
                > coarse.encode_frame(sequence.frame(0)).psnr_db)

    def test_dct_block_count_matches_frame_size(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(search_range=2))
        statistics = encoder.encode_frame(sequence.frame(0), 0)
        # 48x48 luminance = 9 macroblocks x 4 transform blocks.
        assert statistics.dct_blocks == 36


class TestInterCoding:
    def test_second_frame_uses_motion_compensation(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3))
        encoder.encode_frame(sequence.frame(0), 0)
        statistics = encoder.encode_frame(sequence.frame(1), 1)
        assert statistics.frame_type == "P"
        assert statistics.inter_fraction > 0.5

    def test_motion_vectors_follow_the_pan(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3))
        encoder.encode_frame(sequence.frame(0), 0)
        statistics = encoder.encode_frame(sequence.frame(1), 1)
        expected = sequence.ground_truth_background_vector()
        inter_vectors = [mb.motion_vector for mb in statistics.macroblocks
                         if mb.mode == "inter"]
        matches = sum(1 for vector in inter_vectors if vector == expected)
        assert matches >= len(inter_vectors) // 2

    def test_inter_frames_maintain_quality(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3))
        results = encoder.encode_sequence([sequence.frame(i) for i in range(3)])
        assert all(result.psnr_db > 28.0 for result in results)

    def test_sad_operations_counted_for_p_frames_only(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(search_range=2))
        first = encoder.encode_frame(sequence.frame(0), 0)
        second = encoder.encode_frame(sequence.frame(1), 1)
        assert first.sad_operations == 0
        assert second.sad_operations > 0


class TestConfigurableKernels:
    def test_mapped_dct_implementations_plug_in(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=2,
                                                    dct_transform=MixedRomDCT()))
        statistics = encoder.encode_frame(sequence.frame(0), 0)
        assert statistics.psnr_db > 28.0

    def test_fast_search_reduces_sad_work(self, sequence):
        full = VideoEncoder(EncoderConfiguration(qp=4, search_range=4,
                                                 search_name="full"))
        fast = VideoEncoder(EncoderConfiguration(qp=4, search_range=4,
                                                 search_name="three_step"))
        for encoder in (full, fast):
            encoder.encode_frame(sequence.frame(0), 0)
        full_stats = full.encode_frame(sequence.frame(1), 1)
        fast_stats = fast.encode_frame(sequence.frame(1), 1)
        assert fast_stats.sad_operations < full_stats.sad_operations

    def test_reconfigure_switches_kernels_between_frames(self, sequence):
        encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=2))
        encoder.encode_frame(sequence.frame(0), 0)
        encoder.reconfigure(dct_transform=SCCDirectDCT(), search_name="diamond")
        statistics = encoder.encode_frame(sequence.frame(1), 1)
        assert statistics.psnr_db > 28.0
        assert encoder.configuration.search_name == "diamond"

    def test_reconfigure_rejects_unknown_field(self):
        encoder = VideoEncoder()
        with pytest.raises(AttributeError):
            encoder.reconfigure(voltage=0.9)
