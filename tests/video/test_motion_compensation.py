"""Tests of motion compensation and half-pel prediction."""

import numpy as np
import pytest

from repro.me.full_search import full_search_frame, motion_field
from repro.video.frames import panning_sequence
from repro.video.motion_compensation import compensate_frame, predict_block, residual_frame


class TestPredictBlock:
    def test_integer_vector_copies_the_reference_block(self, rng):
        reference = rng.integers(0, 256, (48, 48))
        block = predict_block(reference, 16, 16, (-2, 3), block_size=16)
        assert np.array_equal(block, reference[14:30, 19:35])

    def test_zero_vector_is_collocated_block(self, rng):
        reference = rng.integers(0, 256, (32, 32))
        assert np.array_equal(predict_block(reference, 8, 8, (0, 0), 16),
                              reference[8:24, 8:24])

    def test_half_pel_vector_interpolates(self):
        reference = np.zeros((16, 16))
        reference[:, 8:] = 100.0
        block = predict_block(reference, 4, 4, (0.0, 0.5), block_size=8)
        # The column straddling the edge averages 0 and 100.
        assert block[0, 3] == pytest.approx(50.0)

    def test_out_of_frame_vector_rejected(self, rng):
        reference = rng.integers(0, 256, (32, 32))
        with pytest.raises(ValueError):
            predict_block(reference, 0, 0, (-4, 0), 16)

    def test_half_pel_at_frame_edge_rejected(self, rng):
        reference = rng.integers(0, 256, (32, 32))
        with pytest.raises(ValueError):
            predict_block(reference, 16, 16, (0.0, 0.5), 16)


class TestFrameCompensation:
    def test_compensated_pan_matches_current_frame_interior(self):
        sequence = panning_sequence(height=64, width=64, pan=(1, 2), seed=13)
        reference, current = sequence.frame(0), sequence.frame(1)
        results = full_search_frame(current, reference, block_size=16, search_range=4)
        field = motion_field(results)
        predicted = compensate_frame(reference, field, block_size=16)
        residual = residual_frame(current, predicted)
        # Interior macroblocks are perfectly predicted on a clean pan.
        assert np.all(residual[16:48, 16:48] == 0)

    def test_residual_energy_smaller_than_without_compensation(self):
        sequence = panning_sequence(height=64, width=64, pan=(2, 2), seed=14)
        reference, current = sequence.frame(0), sequence.frame(1)
        results = full_search_frame(current, reference, block_size=16, search_range=4)
        predicted = compensate_frame(reference, motion_field(results), block_size=16)
        compensated_energy = float(np.sum(residual_frame(current, predicted) ** 2))
        uncompensated_energy = float(np.sum(residual_frame(current, reference) ** 2))
        assert compensated_energy < 0.5 * uncompensated_energy

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            residual_frame(rng.integers(0, 255, (16, 16)), rng.integers(0, 255, (8, 8)))
