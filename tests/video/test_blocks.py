"""Tests of the macroblock / transform-block utilities."""

import numpy as np
import pytest

from repro.video.blocks import (
    assemble_blocks,
    iterate_blocks,
    macroblock_positions,
    merge_transform_blocks,
    pad_frame,
    split_macroblock_into_transform_blocks,
)


class TestPadding:
    def test_already_aligned_frame_unchanged(self, rng):
        frame = rng.integers(0, 256, (32, 48))
        assert pad_frame(frame, 16) is frame

    def test_padding_replicates_edges(self, rng):
        frame = rng.integers(0, 256, (30, 45))
        padded = pad_frame(frame, 16)
        assert padded.shape == (32, 48)
        assert np.array_equal(padded[30], padded[29])
        assert np.array_equal(padded[:, 45], padded[:, 44])


class TestPositionsAndIteration:
    def test_macroblock_positions_cover_the_frame(self, rng):
        frame = rng.integers(0, 256, (32, 48))
        positions = macroblock_positions(frame, 16)
        assert len(positions) == 2 * 3
        assert (16, 32) in positions

    def test_iterate_blocks_yields_square_blocks(self, rng):
        frame = rng.integers(0, 256, (16, 16))
        blocks = list(iterate_blocks(frame, 8))
        assert len(blocks) == 4
        for _, _, block in blocks:
            assert block.shape == (8, 8)

    def test_assemble_inverts_iteration(self, rng):
        frame = rng.integers(0, 256, (24, 24))
        rebuilt = assemble_blocks(list(iterate_blocks(frame, 8)), 24, 24)
        assert np.array_equal(rebuilt, frame)


class TestMacroblockSplit:
    def test_split_and_merge_round_trip(self, rng):
        macroblock = rng.integers(0, 256, (16, 16))
        assert np.array_equal(
            merge_transform_blocks(split_macroblock_into_transform_blocks(macroblock)),
            macroblock)

    def test_split_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            split_macroblock_into_transform_blocks(np.zeros((8, 8)))

    def test_merge_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            merge_transform_blocks([np.zeros((8, 8))] * 3)
