"""Tests of the video quality metrics."""

import math

import numpy as np
import pytest

from repro.video.metrics import mse, psnr, residual_energy


class TestMetrics:
    def test_identical_frames_have_zero_mse_and_infinite_psnr(self, rng):
        frame = rng.integers(0, 256, (16, 16))
        assert mse(frame, frame) == 0.0
        assert psnr(frame, frame) == math.inf

    def test_known_error_psnr(self):
        original = np.zeros((8, 8))
        noisy = original + 16.0
        assert psnr(original, noisy) == pytest.approx(
            10 * math.log10(255 ** 2 / 256), abs=1e-9)

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((8, 8)), np.zeros((4, 4)))

    def test_psnr_decreases_with_noise(self, rng):
        frame = rng.integers(0, 256, (32, 32)).astype(float)
        small = frame + rng.normal(0, 1, frame.shape)
        large = frame + rng.normal(0, 10, frame.shape)
        assert psnr(frame, small) > psnr(frame, large)

    def test_residual_energy(self):
        assert residual_energy(np.full((2, 2), 3.0)) == 36.0
