"""Tests of zig-zag scanning, run-length coding and bit estimation."""

import numpy as np
import pytest

from repro.dct.quantization import quantise
from repro.dct.reference import dct_2d
from repro.video.entropy import (
    estimate_block_bits,
    estimate_macroblock_bits,
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    zigzag_order,
    zigzag_scan,
)


class TestZigzag:
    def test_order_starts_along_the_first_antidiagonal(self):
        order = zigzag_order(8)
        assert order[0] == (0, 0)
        assert order[1] == (0, 1)
        assert order[2] == (1, 0)
        assert len(order) == 64

    def test_order_visits_every_cell_once(self):
        assert len(set(zigzag_order(8))) == 64

    def test_scan_and_inverse_round_trip(self, rng):
        block = rng.integers(-10, 11, (8, 8))
        assert np.array_equal(inverse_zigzag(zigzag_scan(block)), block)

    def test_scan_orders_low_frequencies_first(self, rng):
        block = rng.integers(0, 256, (8, 8))
        coefficients = dct_2d(block)
        scanned = np.abs(zigzag_scan(coefficients))
        # Natural-image-like blocks concentrate energy early in the scan.
        assert np.sum(scanned[:16]) > np.sum(scanned[48:])

    def test_non_square_block_rejected(self):
        with pytest.raises(ValueError):
            zigzag_scan(np.zeros((4, 8)))

    def test_inverse_length_checked(self):
        with pytest.raises(ValueError):
            inverse_zigzag([1, 2, 3])


class TestRunLength:
    def test_round_trip(self, rng):
        block = rng.integers(-3, 4, (8, 8))
        block[3:, :] = 0
        scanned = zigzag_scan(block)
        assert run_length_decode(run_length_encode(scanned)) == list(scanned)

    def test_all_zero_block_is_one_eob_pair(self):
        pairs = run_length_encode([0] * 64)
        assert pairs == [(0, 0)]

    def test_trailing_zeros_absorbed_by_eob(self):
        pairs = run_length_encode([5, 0, 0, 0])
        assert pairs == [(0, 5), (0, 0)]

    def test_decode_rejects_overlong_data(self):
        with pytest.raises(ValueError):
            run_length_decode([(0, 1)] * 10, length=4)


class TestBitEstimation:
    def test_zero_block_costs_least(self, rng):
        busy = rng.integers(-5, 6, (8, 8))
        assert estimate_block_bits(np.zeros((8, 8))) < estimate_block_bits(busy)

    def test_coarser_quantisation_costs_fewer_bits(self, rng):
        block = rng.integers(0, 256, (8, 8))
        coefficients = dct_2d(block)
        fine = estimate_block_bits(quantise(coefficients, qp=2))
        coarse = estimate_block_bits(quantise(coefficients, qp=24))
        assert coarse < fine

    def test_macroblock_bits_include_motion_vector_cost(self):
        levels = [np.zeros((8, 8), dtype=int)] * 4
        intra = estimate_macroblock_bits(levels, inter=False)
        inter_small = estimate_macroblock_bits(levels, motion_vector=(0, 0), inter=True)
        inter_large = estimate_macroblock_bits(levels, motion_vector=(7, -7), inter=True)
        assert inter_small > intra
        assert inter_large > inter_small
