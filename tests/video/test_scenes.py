"""Tests of the scene generator and the reconfiguration planner."""

import numpy as np
import pytest

from repro.video.scenes import (
    SCENE_KINDS,
    dct_implementation_by_name,
    motion_energy,
    plan_reconfiguration,
    scene_frames,
    scene_suite,
)


class TestSceneFrames:
    @pytest.mark.parametrize("kind", SCENE_KINDS)
    def test_shapes_dtype_and_range(self, kind):
        frames = scene_frames(kind, count=6, height=48, width=64, seed=1)
        assert len(frames) == 6
        for frame in frames:
            assert frame.shape == (48, 64)
            assert frame.dtype == np.int64
            assert frame.min() >= 0 and frame.max() <= 255

    @pytest.mark.parametrize("kind", SCENE_KINDS)
    def test_deterministic_under_seed(self, kind):
        first = scene_frames(kind, count=4, height=32, width=32, seed=9)
        second = scene_frames(kind, count=4, height=32, width=32, seed=9)
        for frame_a, frame_b in zip(first, second):
            assert np.array_equal(frame_a, frame_b)

    def test_seeds_differ(self):
        assert not np.array_equal(
            scene_frames("pan", count=1, seed=0)[0],
            scene_frames("pan", count=1, seed=1)[0])

    def test_static_scene_is_static(self):
        frames = scene_frames("static", count=5)
        assert all(np.array_equal(frames[0], frame) for frame in frames[1:])

    def test_pan_moves_zoom_creeps(self):
        pan = motion_energy(scene_frames("pan", count=6))
        zoom = motion_energy(scene_frames("zoom", count=6))
        assert pan.mean() > zoom.mean() > 0

    def test_cut_spikes_mid_sequence(self):
        energy = motion_energy(scene_frames("cut", count=10))
        cut_position = 10 // 2 - 1
        assert energy[cut_position] == energy.max()
        assert energy[cut_position] > 2 * np.delete(energy,
                                                    cut_position).max()

    def test_noise_is_noisier_than_pan(self):
        noise = motion_energy(scene_frames("noise", count=6))
        pan = motion_energy(scene_frames("pan", count=6))
        assert noise.mean() > pan.mean()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            scene_frames("explosion")

    def test_empty_scene_rejected(self):
        with pytest.raises(ValueError):
            scene_frames("pan", count=0)

    def test_suite_covers_every_kind(self):
        suite = scene_suite(count=3, height=32, width=32)
        assert set(suite) == set(SCENE_KINDS)


class TestMotionEnergy:
    def test_single_frame_has_no_energy(self):
        assert motion_energy([np.zeros((8, 8))]).size == 0

    def test_known_difference(self):
        first = np.zeros((4, 4), dtype=np.int64)
        second = np.full((4, 4), 3, dtype=np.int64)
        assert motion_energy([first, second])[0] == 3.0


class TestReconfigurationPlanner:
    def test_quiet_scene_plans_cheap_kernels(self):
        plan = plan_reconfiguration(scene_frames("static", count=5))
        assert all(entry["search_name"] == "three_step"
                   for entry in plan[1:])
        assert all(entry["dct_name"] == "scc_direct" for entry in plan[1:])

    def test_cut_triggers_full_search(self):
        frames = scene_frames("cut", count=10)
        plan = plan_reconfiguration(frames)
        cut_entry = plan[10 // 2]
        assert cut_entry["search_name"] == "full"
        assert cut_entry["dct_name"] == "mixed_rom"

    def test_first_frame_always_full(self):
        plan = plan_reconfiguration(scene_frames("static", count=3))
        assert plan[0]["search_name"] == "full"

    def test_plan_length_matches_frames(self):
        frames = scene_frames("pan", count=7)
        assert len(plan_reconfiguration(frames)) == 7

    @pytest.mark.parametrize("name", ["mixed_rom", "cordic1", "cordic2",
                                      "scc_evenodd", "scc_direct"])
    def test_dct_lookup(self, name):
        transform = dct_implementation_by_name(name)
        assert hasattr(transform, "forward_2d")

    def test_dct_lookup_unknown(self):
        with pytest.raises(ValueError):
            dct_implementation_by_name("fft")

    def test_planned_names_are_encodable(self):
        """Every planner output maps to a real search and DCT."""
        from repro.me.fast_search import search_by_name

        frames = scene_frames("cut", count=8)
        for entry in plan_reconfiguration(frames):
            assert search_by_name(entry["search_name"]) is not None
            assert dct_implementation_by_name(entry["dct_name"]) is not None
