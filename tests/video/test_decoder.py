"""Tests of the decoder against the encoder's reconstruction loop."""

import numpy as np
import pytest

from repro.dct.idct import DistributedArithmeticIDCT
from repro.video.codec import EncoderConfiguration, VideoEncoder
from repro.video.decoder import VideoDecoder
from repro.video.frames import panning_sequence
from repro.video.metrics import psnr


@pytest.fixture(scope="module")
def encoded_sequence():
    sequence = panning_sequence(height=48, width=48, pan=(1, 1), seed=19)
    frames = [sequence.frame(i) for i in range(3)]
    encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3))
    records = encoder.encode_sequence(frames)
    return frames, records, encoder


class TestDecoderRoundTrip:
    def test_decoder_matches_encoder_reconstruction_exactly(self, encoded_sequence):
        frames, records, encoder = encoded_sequence
        decoder = VideoDecoder()
        decoded = decoder.decode_sequence(records, frame_shape=frames[0].shape)
        # The last decoded frame must equal the encoder's own reference frame
        # (drift-free closed loop).
        assert np.array_equal(decoded[-1], encoder.reference_frame)

    def test_decoded_quality_matches_encoder_reported_psnr(self, encoded_sequence):
        frames, records, _ = encoded_sequence
        decoder = VideoDecoder()
        decoded = decoder.decode_sequence(records, frame_shape=frames[0].shape)
        for frame, record, reconstruction in zip(frames, records, decoded):
            assert psnr(frame, reconstruction) == pytest.approx(record.psnr_db, abs=0.2)

    def test_estimated_bits_recorded_per_frame(self, encoded_sequence):
        _, records, _ = encoded_sequence
        assert all(record.estimated_bits > 0 for record in records)
        # P frames on a clean pan cost far fewer bits than the intra frame.
        assert records[1].estimated_bits < records[0].estimated_bits

    def test_decoding_with_mapped_idct_stays_close(self, encoded_sequence):
        frames, records, _ = encoded_sequence
        reference_decoder = VideoDecoder()
        mapped_decoder = VideoDecoder(idct=DistributedArithmeticIDCT())
        reference_frames = reference_decoder.decode_sequence(records,
                                                             frame_shape=frames[0].shape)
        mapped_frames = mapped_decoder.decode_sequence(records,
                                                       frame_shape=frames[0].shape)
        assert psnr(reference_frames[-1], mapped_frames[-1]) > 35.0

    def test_inter_frame_without_reference_rejected(self, encoded_sequence):
        _, records, _ = encoded_sequence
        decoder = VideoDecoder()
        with pytest.raises(ValueError):
            decoder.decode_frame(records[1], frame_shape=(48, 48))

    def test_empty_record_rejected(self):
        from repro.video.codec import FrameStatistics
        with pytest.raises(ValueError):
            VideoDecoder().decode_frame(FrameStatistics(0, "I", 0.0, qp=4))


class TestIntraFrameReset:
    """I-frames start closed GOPs: the decoder must not depend on earlier state."""

    def make_gop_records(self):
        sequence = panning_sequence(height=48, width=48, pan=(1, 1), seed=29)
        frames = [sequence.frame(i) for i in range(6)]
        from repro.video.gop import encode_sequence_parallel
        outcome = encode_sequence_parallel(
            frames, EncoderConfiguration(qp=4, search_range=3), gop_size=3,
            strategy="serial")
        return frames, outcome

    def test_second_gop_decodes_standalone(self):
        frames, outcome = self.make_gop_records()
        full = VideoDecoder().decode_sequence(outcome.statistics,
                                              frame_shape=frames[0].shape)
        second_gop = outcome.statistics[3:]
        standalone = VideoDecoder().decode_sequence(second_gop,
                                                    frame_shape=frames[0].shape)
        for offset, frame in enumerate(standalone):
            assert np.array_equal(frame, full[3 + offset])

    def test_intra_frame_ignores_stale_reference(self):
        frames, outcome = self.make_gop_records()
        decoder = VideoDecoder()
        decoder.decode_sequence(outcome.statistics[:3],
                                frame_shape=frames[0].shape)
        stale = decoder.reference_frame
        fresh = VideoDecoder().decode_frame(outcome.statistics[3],
                                            frame_shape=frames[0].shape)
        resumed = decoder.decode_frame(outcome.statistics[3])
        assert np.array_equal(fresh, resumed)
        assert not np.array_equal(stale, resumed)

    def test_shape_survives_reset_without_explicit_hint(self):
        frames, outcome = self.make_gop_records()
        decoder = VideoDecoder()
        decoded = decoder.decode_sequence(outcome.statistics,
                                          frame_shape=frames[0].shape)
        # The mid-stream I frame (index 3) was decoded without a new
        # frame_shape hint: the pre-reset reference supplied it.
        assert decoded[3].shape == frames[0].shape
