"""Integration tests spanning the SoC, the mapping flow, the kernels and the encoder."""

import numpy as np
import pytest

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.dct import (
    CordicDCT1,
    MixedRomDCT,
    SCCDirectDCT,
    dct_implementations,
)
from repro.dct.reference import dct_2d
from repro.flow import compile as flow_compile
from repro.flow import compile_many
from repro.me import SystolicArray, build_systolic_netlist, full_search
from repro.power import compare_to_fpga, power_per_block
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence


class TestSoCHostsBothKernels:
    def test_both_arrays_loaded_and_reconfigured(self):
        soc = ReconfigurableSoC()
        soc.attach_array(build_da_array())
        soc.attach_array(build_me_array())
        dct_kernel = soc.compile_and_load(MixedRomDCT())
        me_kernel = soc.compile_and_load(build_systolic_netlist(module_count=2,
                                                                pes_per_module=8),
                                         "me_array")
        assert soc.loaded_kernel("da_array") is dct_kernel
        assert soc.loaded_kernel("me_array") is me_kernel
        # Low-battery condition: switch the DCT to the smallest mapping.
        low_power = soc.compile_and_load(SCCDirectDCT())
        assert soc.loaded_kernel("da_array") is low_power
        assert soc.reconfiguration_count("da_array") == 2
        assert (low_power.bitstream.total_bits()
                != dct_kernel.bitstream.total_bits())

    def test_every_table1_implementation_loads_on_the_same_soc(self):
        soc = ReconfigurableSoC()
        soc.attach_array(build_da_array())
        for implementation in dct_implementations():
            kernel = soc.compile_and_load(implementation)
            assert kernel.bitstream.total_bits() > 0
        assert soc.reconfiguration_count("da_array") == 5


class TestKernelAgreement:
    def test_all_dct_implementations_agree_on_video_blocks(self, rng):
        block = rng.integers(0, 256, (8, 8))
        reference = dct_2d(block)
        # The DA-based implementations quantise their coefficients to 6
        # fractional bits, and the row/column passes compound the error, so
        # the agreement bound is looser than the 1-D unit tests but still a
        # small fraction of the coefficient range (|DC| can reach 2040).
        for implementation in dct_implementations():
            outputs = implementation.forward_2d(block)
            assert np.max(np.abs(outputs - reference)) < 12.0

    def test_systolic_array_and_software_search_agree_across_blocks(self):
        sequence = panning_sequence(height=48, width=48, pan=(1, 1), seed=21)
        reference_frame, current_frame = sequence.frame(0), sequence.frame(1)
        array = SystolicArray()
        for top, left in ((16, 16), (16, 0), (0, 16)):
            hardware = array.search(current_frame, reference_frame, top, left,
                                    block_size=16, search_range=3)
            software = full_search(current_frame, reference_frame, top, left,
                                   16, 3)
            assert hardware.motion_vector == software.motion_vector
            assert hardware.best.sad == software.best.sad


class TestEncoderOnMappedKernels:
    def test_encoding_with_a_mapped_dct_matches_reference_quality(self):
        sequence = panning_sequence(height=48, width=48, pan=(1, 2), seed=5)
        frames = [sequence.frame(i) for i in range(2)]
        reference_encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3))
        mapped_encoder = VideoEncoder(EncoderConfiguration(qp=4, search_range=3,
                                                           dct_transform=CordicDCT1()))
        reference_stats = reference_encoder.encode_sequence(frames)
        mapped_stats = mapped_encoder.encode_sequence(frames)
        for ref, mapped in zip(reference_stats, mapped_stats):
            assert abs(ref.psnr_db - mapped.psnr_db) < 1.5


class TestEnergyTradeoff:
    def test_per_block_energy_ranks_implementations_differently_than_area(self):
        # Sec. 3.6: area alone does not decide power — cycle count and
        # activity matter.  CORDIC 2 is smaller than CORDIC 1 in clusters
        # but needs roughly twice the cycles per transform.
        table1 = {result.design_name: result
                  for result in compile_many(dct_implementations(), cache=None)}
        fabric = build_da_array()
        from repro.power import domain_specific_cost
        implementations = {impl.name: impl for impl in dct_implementations()}
        energies = {}
        areas = {}
        for name, mapped in table1.items():
            cost = domain_specific_cost(mapped.netlist, fabric, activity=0.25,
                                        routing=mapped.routing)
            energies[name] = power_per_block(cost, implementations[name].cycles_per_transform)
            areas[name] = mapped.usage.total_clusters
        assert areas["cordic_2"] < areas["cordic_1"]
        assert energies["cordic_2"] > 0
        # The ranking by energy is not identical to the ranking by area.
        by_area = sorted(areas, key=areas.get)
        by_energy = sorted(energies, key=energies.get)
        assert by_area != by_energy

    def test_me_and_da_comparisons_hold_simultaneously(self):
        systolic = flow_compile(SystolicArray(), cache=None)
        me_comparison = compare_to_fpga(systolic.netlist, build_me_array(),
                                        routing=systolic.routing)
        scc = flow_compile(SCCDirectDCT(), cache=None)
        da_comparison = compare_to_fpga(scc.netlist, build_da_array(),
                                        routing=scc.routing)
        assert me_comparison.power_reduction > da_comparison.power_reduction
        assert me_comparison.area_reduction > da_comparison.area_reduction
        assert me_comparison.timing_improvement > 0 > da_comparison.max_frequency_change
