"""Tests of the array-vs-FPGA power/area/timing comparison model."""

import pytest

from repro.arrays import build_da_array, build_me_array
from repro.dct import dct_implementations
from repro.flow import compile as flow_compile
from repro.flow import compile_many
from repro.me import SystolicArray, build_pe_netlist
from repro.power.models import (
    DA_ARRAY_CALIBRATION,
    ME_ARRAY_CALIBRATION,
    UNCALIBRATED,
    calibration_for,
    compare_to_fpga,
    domain_specific_cost,
    power_per_block,
)


@pytest.fixture(scope="module")
def table1():
    return {result.design_name: result
            for result in compile_many(dct_implementations(), cache=None)}


@pytest.fixture(scope="module")
def systolic():
    return flow_compile(SystolicArray(), cache=None)


class TestCalibrationSelection:
    def test_me_netlist_selects_me_calibration(self):
        assert calibration_for(build_pe_netlist()) is ME_ARRAY_CALIBRATION

    def test_da_netlist_selects_da_calibration(self, table1):
        assert calibration_for(table1["mixed_rom"].netlist) is DA_ARRAY_CALIBRATION

    def test_mixed_netlist_is_uncalibrated(self):
        from repro.core.clusters import ClusterKind
        from repro.core.netlist import Netlist
        netlist = Netlist("mixed")
        netlist.add_node("a", ClusterKind.ABS_DIFF)
        netlist.add_node("b", ClusterKind.ADD_SHIFT)
        assert calibration_for(netlist) is UNCALIBRATED


class TestPublishedRatios:
    def test_me_array_reproduces_the_75_45_23_figures(self, systolic):
        comparison = compare_to_fpga(systolic.netlist, build_me_array(),
                                     activity=0.25, routing=systolic.routing)
        assert comparison.power_reduction == pytest.approx(0.75, abs=0.05)
        assert comparison.area_reduction == pytest.approx(0.45, abs=0.05)
        assert comparison.timing_improvement == pytest.approx(0.23, abs=0.05)

    def test_da_array_reproduces_the_38_14_54_figures(self, table1):
        mapped = table1["scc_direct"]
        comparison = compare_to_fpga(mapped.netlist, build_da_array(),
                                     activity=0.25, routing=mapped.routing)
        assert comparison.power_reduction == pytest.approx(0.38, abs=0.05)
        assert comparison.area_reduction == pytest.approx(0.14, abs=0.05)
        assert comparison.max_frequency_change == pytest.approx(-0.54, abs=0.05)

    def test_activity_scales_power_but_not_the_ratio(self, systolic):
        low = compare_to_fpga(systolic.netlist, build_me_array(), activity=0.1,
                              routing=systolic.routing)
        high = compare_to_fpga(systolic.netlist, build_me_array(), activity=0.5,
                               routing=systolic.routing)
        assert (high.array.switched_capacitance_per_cycle
                > low.array.switched_capacitance_per_cycle)
        assert high.power_reduction == pytest.approx(low.power_reduction, abs=1e-9)


class TestCostModelBehaviour:
    def test_larger_netlists_cost_more(self, table1):
        small = domain_specific_cost(table1["scc_direct"].netlist, build_da_array())
        large = domain_specific_cost(table1["cordic_1"].netlist, build_da_array())
        assert large.switched_capacitance_per_cycle > 0
        assert small.switched_capacitance_per_cycle > 0
        assert large.metrics.cluster_usage.total_clusters \
            > small.metrics.cluster_usage.total_clusters

    def test_uncalibrated_cost_is_smaller_than_calibrated_area(self, table1):
        netlist = table1["mixed_rom"].netlist
        calibrated = domain_specific_cost(netlist, build_da_array())
        raw = domain_specific_cost(netlist, build_da_array(),
                                   calibration=UNCALIBRATED)
        assert calibrated.area_elements > raw.area_elements

    def test_power_per_block_scales_with_cycles(self, table1):
        cost = domain_specific_cost(table1["mixed_rom"].netlist, build_da_array())
        assert power_per_block(cost, 26) == pytest.approx(
            2 * power_per_block(cost, 13))

    def test_power_per_block_rejects_non_positive_cycles(self, table1):
        cost = domain_specific_cost(table1["mixed_rom"].netlist, build_da_array())
        with pytest.raises(ValueError):
            power_per_block(cost, 0)

    def test_summary_reports_percentages(self, systolic):
        comparison = compare_to_fpga(systolic.netlist, build_me_array(),
                                     routing=systolic.routing)
        summary = comparison.summary()
        assert set(summary) == {"power_reduction_pct", "area_reduction_pct",
                                "timing_improvement_pct", "max_frequency_change_pct"}
