"""Tests of the switching-activity estimation."""

import numpy as np
import pytest

from repro.power.activity import (
    block_activity,
    cluster_activity,
    combined_activity,
    stream_activity,
    toggle_count,
)


class TestToggleCounting:
    def test_toggle_count_is_hamming_distance(self):
        assert toggle_count(0b1010, 0b0110) == 2
        assert toggle_count(0, 0) == 0
        assert toggle_count(0xFF, 0x00) == 8

    def test_constant_stream_has_zero_activity(self):
        assert stream_activity([7, 7, 7, 7], width_bits=8) == 0.0

    def test_alternating_all_bits_has_full_activity(self):
        assert stream_activity([0x00, 0xFF, 0x00, 0xFF], width_bits=8) == 1.0

    def test_single_sample_has_zero_activity(self):
        assert stream_activity([42], width_bits=8) == 0.0

    def test_activity_bounded_between_zero_and_one(self, rng):
        samples = rng.integers(0, 256, 200).tolist()
        assert 0.0 <= stream_activity(samples, 8) <= 1.0

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            stream_activity([1, 2], width_bits=0)


class TestHigherLevelActivity:
    def test_block_activity_of_smooth_block_below_random(self, rng):
        smooth = np.tile(np.arange(8), (8, 1)) * 2
        random_block = rng.integers(0, 256, (8, 8))
        assert block_activity(smooth) < block_activity(random_block)

    def test_cluster_activity_from_counters(self):
        assert cluster_activity(toggles=40, cycles=10, width_bits=8) == 0.5
        assert cluster_activity(toggles=0, cycles=0, width_bits=8) == 0.0
        assert cluster_activity(toggles=1000, cycles=10, width_bits=8) == 1.0

    def test_combined_activity_is_the_mean(self):
        assert combined_activity([0.2, 0.4]) == pytest.approx(0.3)
        assert combined_activity([]) == 0.0
