"""The virtual-time serving loop: admission, batching, accounting."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.serve import (
    DctJob,
    EncodeJob,
    KernelLibrary,
    ServeSettings,
    execute_serial,
    percentile,
    serve,
)
from repro.video.scenes import scene_frames

LIBRARY = KernelLibrary()


def _dct_job(job_id, arrival, blocks=8, dct_name="mixed_rom"):
    rng = np.random.default_rng(job_id)
    return DctJob(job_id=job_id, arrival_cycle=arrival,
                  blocks=rng.integers(-64, 64, (blocks, 8, 8)),
                  dct_name=dct_name)


def _encode_job(job_id, arrival, frames=2):
    return EncodeJob(job_id=job_id, arrival_cycle=arrival,
                     frames=scene_frames("pan", count=frames, height=32,
                                         width=32, seed=job_id))


class TestSettingsValidation:
    @pytest.mark.parametrize("field, value", [
        ("soc_count", 0), ("queue_capacity", 0), ("max_batch", 0),
        ("starvation_limit", -1), ("batch_setup_cycles", -1)])
    def test_bad_settings_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            ServeSettings(**{field: value})

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            serve([_dct_job(0, 0)], ServeSettings(policy="lifo"),
                  library=LIBRARY)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            serve([_dct_job(1, 0), _dct_job(1, 5)], library=LIBRARY)


class TestVirtualTime:
    def test_empty_trace(self):
        report = serve([], library=LIBRARY)
        assert report.submitted == 0
        assert report.makespan_cycles == 0
        assert report.summary()["completed"] == 0

    def test_single_job_timeline(self):
        job = _dct_job(0, 1000)
        report = serve([job], library=LIBRARY)
        record = report.records[0]
        assert record.start_cycle == 1000
        assert record.completion_cycle > record.start_cycle
        assert record.latency_cycles == record.completion_cycle - 1000
        assert record.wait_cycles == 0
        assert report.makespan_cycles == record.completion_cycle - 1000

    def test_runs_are_deterministic(self):
        jobs = [_dct_job(i, 100 * i, dct_name=("mixed_rom", "cordic2")[i % 2])
                for i in range(8)]
        first = serve(jobs, ServeSettings(policy="affinity"), library=LIBRARY)
        second = serve(jobs, ServeSettings(policy="affinity"), library=LIBRARY)
        assert [r.completion_cycle for r in first.records] == \
            [r.completion_cycle for r in second.records]
        assert first.total_energy == second.total_energy
        assert first.digests == second.digests

    def test_busy_soc_queues_jobs(self):
        jobs = [_encode_job(0, 0), _dct_job(1, 1)]
        report = serve(jobs, ServeSettings(policy="fifo"), library=LIBRARY)
        by_id = {record.job_id: record for record in report.records}
        assert by_id[1].start_cycle >= by_id[0].completion_cycle
        assert by_id[1].wait_cycles > 0


class TestAdmissionControl:
    def test_queue_overflow_rejects(self):
        jobs = [_dct_job(i, 0) for i in range(6)]
        report = serve(jobs, ServeSettings(queue_capacity=2, max_batch=1),
                       library=LIBRARY)
        assert report.rejected > 0
        assert report.submitted == 6
        assert report.completed + report.rejected == 6
        # Later arrivals at the same cycle are the ones shed.
        assert report.rejected_job_ids == sorted(report.rejected_job_ids)

    def test_capacity_bounds_in_flight_jobs(self):
        jobs = [_dct_job(i, i) for i in range(10)]
        report = serve(jobs, ServeSettings(queue_capacity=3, max_batch=1),
                       library=LIBRARY)
        assert report.completed + report.rejected == 10


class TestBatching:
    def test_compatible_jobs_share_a_dispatch(self):
        jobs = [_dct_job(i, 0) for i in range(4)]
        report = serve(jobs, ServeSettings(max_batch=4), library=LIBRARY)
        assert report.batches == 1
        assert {record.batch_size for record in report.records} == {4}
        assert len({record.completion_cycle
                    for record in report.records}) == 1

    def test_max_batch_caps_group_size(self):
        jobs = [_dct_job(i, 0) for i in range(5)]
        report = serve(jobs, ServeSettings(max_batch=2), library=LIBRARY)
        assert report.batches == 3
        assert max(record.batch_size for record in report.records) == 2

    def test_incompatible_jobs_do_not_batch(self):
        jobs = [_dct_job(0, 0, dct_name="mixed_rom"),
                _dct_job(1, 0, dct_name="cordic2")]
        report = serve(jobs, ServeSettings(max_batch=4), library=LIBRARY)
        assert report.batches == 2

    def test_batching_amortises_setup(self):
        jobs = [_dct_job(i, 0) for i in range(4)]
        batched = serve(jobs, ServeSettings(max_batch=4), library=LIBRARY)
        lone = serve(jobs, ServeSettings(max_batch=1), library=LIBRARY)
        assert batched.makespan_cycles < lone.makespan_cycles
        assert batched.digests == lone.digests


class TestAccounting:
    def test_bitstreams_match_the_wrapped_soc_log(self):
        jobs = [_dct_job(0, 0, dct_name="mixed_rom"),
                _dct_job(1, 1, dct_name="cordic2"),
                _dct_job(2, 2, dct_name="mixed_rom")]
        report = serve(jobs, ServeSettings(policy="fifo", max_batch=1),
                       library=LIBRARY)
        assert report.reconfigurations == 3
        assert report.reconfiguration_bits == (
            2 * LIBRARY.bitstream_bits("dct:mixed_rom")
            + LIBRARY.bitstream_bits("dct:cordic2"))
        soc = report.socs[0]
        assert soc.reconfiguration_bits_streamed == report.reconfiguration_bits
        assert [event.kernel_name for event in soc.soc.reconfiguration_log]

    def test_energy_includes_compute_and_noc(self):
        from repro.power.models import serving_compute_energy

        report = serve([_dct_job(0, 0)], library=LIBRARY)
        record = report.records[0]
        result = execute_serial([_dct_job(0, 0)])[0]
        compute = serving_compute_energy(0, result.dct_blocks, 0)
        assert record.energy > compute  # NoC + reconfiguration on top

    def test_multi_soc_spreads_work(self):
        jobs = [_dct_job(i, 0, dct_name=("mixed_rom", "cordic2")[i % 2])
                for i in range(8)]
        report = serve(jobs, ServeSettings(soc_count=2, max_batch=2),
                       library=LIBRARY)
        assert {record.soc for record in report.records} == {"soc0", "soc1"}
        assert sum(soc.jobs_executed for soc in report.socs) == 8

    def test_summary_fields(self):
        report = serve([_dct_job(0, 0)], library=LIBRARY)
        summary = report.summary()
        for key in ("policy", "completed", "rejected", "latency_p50",
                    "latency_p95", "latency_p99", "energy_per_job",
                    "throughput_jobs_per_mcycle", "reconfigurations"):
            assert key in summary


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100
        assert percentile([], 0.5) == 0.0
        assert percentile([7], 0.01) == 7

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            percentile([1], 1.5)


class TestStarvationGuard:
    def _trace(self):
        # A warmup job keeps the SoC busy while the big job queues; by the
        # time the SoC frees, tiny jobs SJF always prefers have arrived.
        warmup = _dct_job(99, 0, blocks=4)
        big = _dct_job(0, 0, blocks=96)
        tiny = [_dct_job(1 + i, 5 + 10 * i, blocks=1) for i in range(30)]
        return [warmup, big] + tiny

    def test_sjf_starves_the_big_job_without_a_guard(self):
        settings = ServeSettings(policy="sjf", max_batch=1,
                                 starvation_limit=10**9, queue_capacity=64)
        report = serve(self._trace(), settings, library=LIBRARY)
        by_id = {record.job_id: record for record in report.records}
        later = sum(1 for i in range(1, 31)
                    if by_id[i].start_cycle > by_id[0].start_cycle)
        assert later <= 2  # essentially everything jumps the big job

    def test_aging_guard_bounds_the_wait(self):
        limit = 500
        settings = ServeSettings(policy="sjf", max_batch=1,
                                 starvation_limit=limit, queue_capacity=64)
        report = serve(self._trace(), settings, library=LIBRARY)
        longest_batch = max(record.completion_cycle - record.start_cycle
                            for record in report.records)
        bound = limit + settings.queue_capacity * longest_batch
        assert all(record.wait_cycles <= bound for record in report.records)
        by_id = {record.job_id: record for record in report.records}
        assert by_id[0].wait_cycles <= limit + longest_batch


class TestSoCLogConsistency:
    def test_report_switch_count_matches_the_soc_log(self):
        jobs = [_dct_job(0, 0, dct_name="mixed_rom"),
                _dct_job(1, 10, dct_name="cordic2"),
                _encode_job(2, 20)]
        report = serve(jobs, ServeSettings(policy="fifo", max_batch=1),
                       library=LIBRARY)
        assert report.reconfigurations == sum(
            soc.reconfiguration_count for soc in report.socs)
        assert report.reconfiguration_bits == sum(
            soc.reconfiguration_bits_streamed for soc in report.socs)
