"""Kernel residency, reconfiguration pricing and the scheduling policies."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.traffic import FLIT_BITS
from repro.power.models import noc_transfer_energy, serving_compute_energy
from repro.serve import (
    POLICIES,
    DctJob,
    EncodeJob,
    FirJob,
    KernelLibrary,
    ServingSoC,
    policy_by_name,
)
from repro.video.scenes import scene_frames

LIBRARY = KernelLibrary()


def _soc(**kwargs):
    return ServingSoC(0, library=LIBRARY, **kwargs)


def _dct_job(job_id=0, dct_name="mixed_rom", qp=16, blocks=4):
    return DctJob(job_id=job_id, arrival_cycle=0,
                  blocks=np.zeros((blocks, 8, 8)), qp=qp, dct_name=dct_name)


def _encode_job(job_id=0, frames=2, **kwargs):
    return EncodeJob(job_id=job_id, arrival_cycle=0,
                     frames=scene_frames("static", count=frames,
                                         height=32, width=32, seed=job_id),
                     **kwargs)


class TestKernelLibrary:
    def test_bits_are_measured_from_the_flow(self):
        from repro.flow import compile as flow_compile
        from repro.video.scenes import dct_implementation_by_name

        bits = LIBRARY.bitstream_bits("dct:mixed_rom")
        reference = flow_compile(dct_implementation_by_name("mixed_rom"))
        assert bits == reference.bitstream.total_bits()
        assert bits > 0

    def test_me_kernels_differ_in_bits(self):
        assert (LIBRARY.bitstream_bits("me:full_r4")
                < LIBRARY.bitstream_bits("me:full_r8"))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            LIBRARY.result("dct:nope")

    def test_prewarm_reports_and_memoises(self):
        stats = LIBRARY.prewarm(["dct:cordic1", "dct:cordic1"])
        assert stats["designs"] <= 1
        LIBRARY.result("dct:cordic1")
        again = LIBRARY.prewarm(["dct:cordic1"])
        assert again == {"designs": 0, "hits": 0, "misses": 0}


class TestServingSoCResidency:
    def test_load_then_resident(self):
        soc = _soc()
        job = _dct_job()
        assert soc.missing_kernels(job) == {"da_array": "dct:mixed_rom"}
        cycles, energy, switches = soc.load_kernels(job)
        assert switches == 1 and cycles > 0 and energy > 0
        assert soc.missing_kernels(job) == {}
        assert soc.load_kernels(job) == (0, 0.0, 0)
        assert soc.resident["da_array"] == "dct:mixed_rom"

    def test_switch_evicts_previous_kernel(self):
        soc = _soc()
        soc.load_kernels(_dct_job(dct_name="mixed_rom"))
        soc.load_kernels(FirJob(job_id=1, arrival_cycle=0,
                                samples=np.arange(8)))
        assert soc.resident["da_array"] == "fir:lowpass8"
        assert soc.reconfiguration_count == 2
        assert soc.reconfiguration_bits_streamed == (
            LIBRARY.bitstream_bits("dct:mixed_rom")
            + LIBRARY.bitstream_bits("fir:lowpass8"))

    def test_encode_job_loads_both_arrays(self):
        soc = _soc()
        cycles, _, switches = soc.load_kernels(_encode_job())
        assert switches == 2
        assert soc.resident == {"da_array": "dct:mixed_rom",
                                "me_array": "me:full_r8"}
        events = soc.soc.reconfiguration_log
        assert {event.array_name for event in events} == {"da_array",
                                                          "me_array"}

    def test_reconfiguration_cost_matches_load(self):
        preview_soc, loaded_soc = _soc(), _soc()
        job = _encode_job()
        preview = preview_soc.reconfiguration_cost(job)
        cycles, energy, _ = loaded_soc.load_kernels(job)
        assert preview == (cycles, energy)

    def test_cost_follows_topology(self):
        mesh = _soc()
        hub = ServingSoC(1, library=LIBRARY, topology_name="hub")
        job = _dct_job()
        assert (mesh.reconfiguration_cost(job)
                != hub.reconfiguration_cost(job))

    def test_transfer_cost_matches_noc_model(self):
        soc = _soc()
        bits = 96 * FLIT_BITS
        cycles, energy = soc.transfer_cost("config", "dct_array", bits)
        source = soc.placement["config"]
        dest = soc.placement["dct_array"]
        assert cycles == soc.topology.transfer_latency(source, dest, 96)
        assert energy == noc_transfer_energy(
            *soc.topology.transfer_aggregates(source, dest, 96))


class TestTopologyTransferHelpers:
    def test_aggregates_match_analytic_single_flow(self):
        from repro.noc import Mesh2D, TrafficMatrix, simulate

        topology = Mesh2D(2, 3)
        agents = tuple(f"n{i}" for i in range(6))
        flits = np.zeros((6, 6), dtype=np.int64)
        flits[0, 5] = 17
        result = simulate(topology, TrafficMatrix(agents, flits),
                          placement={agent: i for i, agent
                                     in enumerate(agents)})
        assert (result.flit_link_cycles, result.flit_router_crossings) == \
            topology.transfer_aggregates(0, 5, 17)

    def test_zero_and_self_transfers_are_free(self):
        from repro.noc import Ring

        ring = Ring(5)
        assert ring.transfer_aggregates(1, 1, 9) == (0, 0)
        assert ring.transfer_aggregates(1, 3, 0) == (0, 0)
        assert ring.transfer_latency(2, 2, 9) == 0

    def test_negative_flits_rejected(self):
        from repro.noc import Ring

        with pytest.raises(ConfigurationError):
            Ring(4).transfer_aggregates(0, 1, -1)


class TestServingComputeEnergy:
    def test_linear_in_activity(self):
        single = serving_compute_energy(10, 2, 3)
        assert serving_compute_energy(20, 4, 6) == pytest.approx(2 * single)
        assert serving_compute_energy(0, 0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            serving_compute_energy(-1, 0)


class TestPolicies:
    def test_registry_round_trip(self):
        assert set(POLICIES) == {"fifo", "sjf", "affinity", "round_robin"}
        for name in POLICIES:
            assert policy_by_name(name).name == name
        with pytest.raises(ConfigurationError):
            policy_by_name("lifo")

    def test_fifo_picks_earliest_arrival(self):
        queue = [_dct_job(job_id=2), _dct_job(job_id=1)]
        queue[0].arrival_cycle = 50
        queue[1].arrival_cycle = 10
        assert policy_by_name("fifo").select(queue, _soc(), 100) == 1

    def test_sjf_picks_smallest_estimate(self):
        queue = [_dct_job(job_id=0, blocks=40), _dct_job(job_id=1, blocks=2)]
        assert policy_by_name("sjf").select(queue, _soc(), 0) == 1

    def test_affinity_prefers_resident_kernel(self):
        soc = _soc()
        soc.load_kernels(_dct_job(dct_name="cordic2"))
        queue = [_dct_job(job_id=0, dct_name="mixed_rom"),
                 _dct_job(job_id=1, dct_name="cordic2")]
        assert policy_by_name("affinity").select(queue, soc, 0) == 1

    def test_affinity_falls_back_to_cheapest_switch(self):
        soc = _soc()
        queue = [_encode_job(job_id=0, search_range=8),
                 _encode_job(job_id=1, search_range=4)]
        # Neither is resident; the r4 systolic kernel is smaller, but both
        # need the same DCT — the cheaper total bitstream wins.
        assert policy_by_name("affinity").select(queue, soc, 0) == 1

    def test_round_robin_stripes_by_job_id(self):
        soc = _soc()
        soc.index, soc.fleet_size = 1, 2
        queue = [_dct_job(job_id=4), _dct_job(job_id=7)]
        assert policy_by_name("round_robin").select(queue, soc, 0) == 1
        soc.index = 0
        assert policy_by_name("round_robin").select(queue, soc, 0) == 0

    def test_round_robin_steals_rather_than_idles(self):
        soc = _soc()
        soc.index, soc.fleet_size = 1, 2
        queue = [_dct_job(job_id=4)]
        assert policy_by_name("round_robin").select(queue, soc, 0) == 0


class TestMoreEdges:
    def test_fir_filter_lookup_and_unknown(self):
        from repro.serve import fir_filter

        assert fir_filter("lowpass8") is fir_filter("lowpass8")
        with pytest.raises(ConfigurationError):
            fir_filter("bandstop")

    def test_library_target_array(self):
        assert LIBRARY.target_array("dct:mixed_rom") == "da_array"
        assert LIBRARY.target_array("me:full_r8") == "me_array"

    def test_soc_guards_and_repr(self):
        with pytest.raises(ConfigurationError):
            ServingSoC(-1, library=LIBRARY)
        soc = _soc()

        class FakeJob:
            job_id = 0
            kernels = {"gpu": "cuda"}

        with pytest.raises(ConfigurationError):
            soc.missing_kernels(FakeJob())
        assert "ServingSoC" in repr(soc)

    def test_base_policy_is_abstract(self):
        from repro.serve import Policy

        policy = Policy()
        assert "Policy" in repr(policy)
        with pytest.raises(NotImplementedError):
            policy.select([], _soc(), 0)
