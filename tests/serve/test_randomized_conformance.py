"""Randomized scheduler conformance: 100 drawn job mixes.

For every drawn trace and policy the scheduled (batched, possibly
multi-SoC, possibly rejecting) execution must

* be **bit-identical** to a naive serial execution of the same jobs
  (batching and scheduling are pure scheduling decisions),
* **conserve jobs** — every submitted job is exactly once completed or
  rejected, and completed jobs report a coherent timeline,
* **never starve** — no job waits past the aging guard's provable bound
  ``starvation_limit + queue_capacity * longest_batch``.

The drawn mixes deliberately skew small (tiny frames, few jobs per
trace) so the whole suite stays affordable while covering all three
traffic mixes x all four policies x varied fleet/queue/batch settings.
"""

import numpy as np
import pytest

from repro.serve import (
    KernelLibrary,
    ServeSettings,
    execute_serial,
    generate_jobs,
    serve,
)
from repro.serve.policies import POLICIES

#: One shared library so place-and-route happens once for the module.
LIBRARY = KernelLibrary()

#: 100 drawn traces, each served under all 4 policies (400 scheduled
#: runs) and checked against its serial reference execution.
CASE_COUNT = 100

MIX_NAMES = ("steady_encode", "kernel_churn", "bursty_mixed")


def _draw_case(case_index: int):
    """Trace + settings for one conformance case, fully seed-determined."""
    rng = np.random.default_rng([2026, case_index])
    mix = MIX_NAMES[case_index % len(MIX_NAMES)]
    job_count = int(rng.integers(4, 9))
    mean_gap = int(rng.integers(2_000, 30_000))
    sequence_frames = int(rng.integers(6, 10)) if case_index % 5 == 0 else None
    jobs = generate_jobs(mix, job_count=job_count, seed=case_index,
                         mean_gap=mean_gap, sequence_frames=sequence_frames)
    settings = dict(
        soc_count=int(rng.integers(1, 3)),
        queue_capacity=int(rng.integers(3, 12)),
        max_batch=int(rng.integers(1, 6)),
        starvation_limit=int(rng.integers(50_000, 500_000)),
    )
    return jobs, settings


@pytest.fixture(scope="module")
def cases():
    drawn = []
    for case_index in range(CASE_COUNT):
        jobs, settings = _draw_case(case_index)
        serial = {result.job_id: result.digest
                  for result in execute_serial(jobs)}
        drawn.append((jobs, settings, serial))
    return drawn


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_scheduled_execution_conforms(policy, cases):
    for case_index, (jobs, settings, serial_digests) in enumerate(cases):
        report = serve(jobs, ServeSettings(policy=policy, **settings),
                       library=LIBRARY)

        # Bit-exactness: every completed job's payload matches the naive
        # serial execution of the same job, bit for bit.
        for job_id, digest in report.digests.items():
            assert digest == serial_digests[job_id], \
                f"case {case_index}: job {job_id} diverged under {policy}"

        # Conservation: submitted == completed + rejected, no duplicates,
        # nothing invented.
        submitted_ids = {job.job_id for job in jobs}
        completed_ids = [record.job_id for record in report.records]
        assert len(set(completed_ids)) == len(completed_ids)
        assert set(completed_ids) | set(report.rejected_job_ids) \
            == submitted_ids
        assert not set(completed_ids) & set(report.rejected_job_ids)
        assert report.completed + report.rejected == len(jobs)

        # Timeline coherence on every record.
        for record in report.records:
            assert record.arrival_cycle <= record.start_cycle \
                < record.completion_cycle

        # Bounded wait under the aging guard.
        if report.records:
            longest_batch = max(record.completion_cycle - record.start_cycle
                                for record in report.records)
            bound = (ServeSettings(**settings).starvation_limit
                     + settings["queue_capacity"] * longest_batch)
            for record in report.records:
                assert record.wait_cycles <= bound, \
                    f"case {case_index}: job {record.job_id} starved " \
                    f"under {policy}"


def test_policies_agree_on_payload_bits(cases):
    """Different policies may reject different jobs, but any job completed
    by two policies produced identical bits."""
    jobs, settings, _ = cases[0]
    digests = {}
    for policy in sorted(POLICIES):
        report = serve(jobs, ServeSettings(policy=policy, **settings),
                       library=LIBRARY)
        for job_id, digest in report.digests.items():
            assert digests.setdefault(job_id, digest) == digest
