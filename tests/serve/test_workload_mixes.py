"""Seed-stability pins for the traffic mixes.

Traces published in benchmarks and papers must never drift: the
generator seeds with ``[seed, TRAFFIC_MIXES.index(mix)]`` so appending a
mix keeps every existing trace bit-identical.  These pins fail loudly if
anyone reorders the tuple or touches a generator's draw sequence.
"""

import numpy as np
import pytest

from repro.serve.workload import TRAFFIC_MIXES, generate_jobs

# (job_id, arrival_cycle, kind) of generate_jobs(mix, 4, seed=0)
PINNED_FINGERPRINTS = {
    "steady_encode": [(0, 27013, "gop"), (1, 43169, "gop"),
                      (2, 56674, "gop"), (3, 76747, "gop")],
    "kernel_churn": [(0, 20443, "fir"), (1, 34066, "fir"),
                     (2, 54696, "gop"), (3, 76158, "fir")],
    "bursty_mixed": [(0, 98767, "gop"), (1, 98767, "fir"),
                     (2, 98767, "gop"), (3, 179604, "dct")],
    "diurnal": [(0, 20077, "fir"), (1, 32170, "dct"),
                (2, 59077, "gop"), (3, 73878, "dct")],
    "flash_crowd": [(0, 27662, "dct"), (1, 29299, "dct"),
                    (2, 45819, "gop"), (3, 62122, "gop")],
}


def _fingerprint(jobs):
    return [(job.job_id, job.arrival_cycle, job.kind) for job in jobs]


class TestSeedStability:
    def test_mix_tuple_is_append_only(self):
        assert TRAFFIC_MIXES[:3] == ("steady_encode", "kernel_churn",
                                     "bursty_mixed")
        assert TRAFFIC_MIXES[3:] == ("diurnal", "flash_crowd")

    @pytest.mark.parametrize("mix", sorted(PINNED_FINGERPRINTS))
    def test_pinned_fingerprints(self, mix):
        assert _fingerprint(generate_jobs(mix, job_count=4,
                                          seed=0)) == PINNED_FINGERPRINTS[mix]

    @pytest.mark.parametrize("mix", TRAFFIC_MIXES)
    def test_regeneration_is_bit_identical(self, mix):
        first = generate_jobs(mix, job_count=6, seed=11, mean_gap=9_000)
        second = generate_jobs(mix, job_count=6, seed=11, mean_gap=9_000)
        assert _fingerprint(first) == _fingerprint(second)
        for a, b in zip(first, second):
            if a.kind in ("gop", "encode"):
                assert all(np.array_equal(x, y)
                           for x, y in zip(a.frames, b.frames))
            elif a.kind == "dct":
                assert np.array_equal(a.blocks, b.blocks)
            else:
                assert np.array_equal(a.samples, b.samples)

    @pytest.mark.parametrize("mix", TRAFFIC_MIXES)
    def test_seeds_diverge(self, mix):
        assert (_fingerprint(generate_jobs(mix, job_count=6, seed=1))
                != _fingerprint(generate_jobs(mix, job_count=6, seed=2)))


class TestDiurnalShape:
    def test_rate_follows_the_sinusoid(self):
        jobs = generate_jobs("diurnal", job_count=400, seed=2,
                             mean_gap=10_000)
        gaps = np.diff([0] + [job.arrival_cycle for job in jobs])
        quarter = len(gaps) // 4
        rising = float(np.mean(gaps[:quarter]))
        falling = float(np.mean(gaps[quarter:2 * quarter]))
        assert rising < falling   # sin >= 0 in the first quarter period

    def test_arrivals_are_strictly_increasing(self):
        arrivals = [job.arrival_cycle
                    for job in generate_jobs("diurnal", job_count=100,
                                             seed=0)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))


class TestFlashCrowdShape:
    def test_window_collapses_gaps(self):
        jobs = generate_jobs("flash_crowd", job_count=100, seed=5,
                             mean_gap=20_000)
        gaps = np.diff([job.arrival_cycle for job in jobs])
        assert gaps.min() < 4_000 < gaps.max()

    def test_window_is_hot_kernel_heavy(self):
        jobs = generate_jobs("flash_crowd", job_count=300, seed=1,
                             mean_gap=2_000)
        steady = generate_jobs("kernel_churn", job_count=300, seed=1,
                               mean_gap=2_000)
        crowd_dct = sum(1 for job in jobs if job.kind == "dct")
        churn_dct = sum(1 for job in steady if job.kind == "dct")
        assert crowd_dct > churn_dct
