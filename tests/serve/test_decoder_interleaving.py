"""Decoder standalone-GOP invariant under scheduler interleavings.

The serving runtime completes GOP shards of one sequence in whatever
order the policy dictates; a client reassembles the encoded stream by
``gop_index``.  These regressions pin the decoder contract that makes
that safe: a closed GOP's substream decodes standalone (the decoder
resets its reference at intra frames), so decoding shards in completion
order, per shard, then reordering yields exactly the frames of decoding
the in-order stream — which itself reproduces the encoder's
reconstructions bit for bit.
"""

import numpy as np
import pytest

from repro.serve import (
    EncodeJob,
    KernelLibrary,
    ServeSettings,
    serve,
    split_sequence_job,
)
from repro.video.codec import EncoderConfiguration
from repro.video.decoder import VideoDecoder
from repro.video.gop import encode_sequence_parallel
from repro.video.scenes import scene_frames

LIBRARY = KernelLibrary()

FRAMES = scene_frames("cut", count=12, height=32, width=32, seed=5)
GOP_SIZE = 4
CUT_THRESHOLD = 35.0


def _reference_decode():
    """In-order GOP encode of the sequence, decoded front to back."""
    outcome = encode_sequence_parallel(FRAMES, EncoderConfiguration(),
                                       gop_size=GOP_SIZE,
                                       scene_cut_threshold=CUT_THRESHOLD,
                                       strategy="serial")
    decoder = VideoDecoder()
    frames = decoder.decode_sequence(outcome.statistics,
                                     frame_shape=FRAMES[0].shape)
    return outcome, frames


@pytest.fixture(scope="module")
def served_shards():
    """The sequence served as GOP shards under SJF (completes out of order)."""
    request = EncodeJob(job_id=0, arrival_cycle=0, frames=FRAMES)
    # The scene cut skews shard sizes, so shortest-job-first reorders
    # the completions.
    shards = split_sequence_job(request, first_job_id=1, gop_size=GOP_SIZE,
                                scene_cut_threshold=CUT_THRESHOLD)
    report = serve(shards, ServeSettings(policy="sjf", max_batch=1),
                   library=LIBRARY)
    assert report.completed == len(shards)
    return report, shards


def test_scheduler_actually_interleaves(served_shards):
    report, _ = served_shards
    completion_order = [record.gop_index for record in report.records]
    assert sorted(completion_order) == list(range(len(completion_order)))
    assert completion_order != sorted(completion_order)


def test_out_of_order_shards_decode_bit_exact(served_shards):
    report, _ = served_shards
    outcome, reference_frames = _reference_decode()

    # Decode every shard standalone, in *completion* order, with one
    # decoder per shard (a fresh session seeking to that GOP).
    decoded_by_gop = {}
    for record in report.records:
        decoder = VideoDecoder()
        shard_frames = decoder.decode_sequence(report.payloads[record.job_id],
                                               frame_shape=FRAMES[0].shape)
        decoded_by_gop[record.gop_index] = shard_frames

    reassembled = [frame for gop_index in sorted(decoded_by_gop)
                   for frame in decoded_by_gop[gop_index]]
    assert len(reassembled) == len(reference_frames)
    for ours, reference in zip(reassembled, reference_frames):
        np.testing.assert_array_equal(ours, reference)


def test_single_decoder_survives_out_of_order_gops(served_shards):
    """One decoder fed whole GOPs in completion order: the intra reset
    makes each GOP independent of whatever was decoded before it."""
    report, shards = served_shards
    _, reference_frames = _reference_decode()
    reference_by_gop = {}
    start = 0
    for shard in shards:
        reference_by_gop[shard.gop_index] = \
            reference_frames[start:start + len(shard.frames)]
        start += len(shard.frames)

    decoder = VideoDecoder()
    for record in report.records:
        decoded = decoder.decode_sequence(report.payloads[record.job_id],
                                          frame_shape=FRAMES[0].shape)
        for ours, reference in zip(decoded,
                                   reference_by_gop[record.gop_index]):
            np.testing.assert_array_equal(ours, reference)


def test_decoded_frames_match_encoder_reconstruction(served_shards):
    """The decode of every shard equals the encoder's own reconstruction
    (PSNR of decoded vs source equals the encoder-reported PSNR)."""
    from repro.video.metrics import psnr
    from repro.video.blocks import pad_frame

    report, shards = served_shards
    by_id = {shard.job_id: shard for shard in shards}
    for record in report.records:
        decoder = VideoDecoder()
        decoded = decoder.decode_sequence(report.payloads[record.job_id],
                                          frame_shape=FRAMES[0].shape)
        statistics = report.payloads[record.job_id]
        for frame, stats, source in zip(decoded, statistics,
                                        by_id[record.job_id].frames):
            assert psnr(pad_frame(np.asarray(source, dtype=np.int64)),
                        frame) == pytest.approx(stats.psnr_db)
