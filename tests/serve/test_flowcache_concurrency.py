"""Concurrency properties of the FlowCache under compile_many + prewarm.

The serving scheduler prewarms the shared flow cache from admission
while benchmark harnesses drive ``compile_many`` from their own pools,
so the cache must keep its counters consistent and its payloads
bit-identical under arbitrary thread interleavings.  These tests hammer
a private cache from a thread pool and assert:

* counter consistency — every lookup is counted exactly once, so
  ``hits + misses`` equals the number of lookups and never goes
  backwards;
* payload bit-identity — results served from the cache carry exactly
  the bitstream words and placements a cold compile produces;
* capacity safety — the entry count never exceeds ``max_entries`` and
  distinct designs never collide.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.flow import Flow, compile_many
from repro.flow.cache import FlowCache, cache_key
from repro.me.systolic import SystolicArray
from repro.video.scenes import dct_implementation_by_name

DCT_NAMES = ("mixed_rom", "cordic1", "cordic2", "scc_evenodd", "scc_direct")


def _designs():
    return [dct_implementation_by_name(name) for name in DCT_NAMES]


def _bitstream_words(result):
    bitstream = result.bitstream
    return ([(c.position, c.kind, c.mode, c.rom_contents, c.rom_word_bits)
             for c in bitstream.cluster_configurations],
            [c.bit_count() for c in bitstream.channel_configurations])


@pytest.fixture(scope="module")
def cold_results():
    """Reference compiles with no cache at all."""
    return {name: compile_many([dct_implementation_by_name(name)],
                               cache=None)[0]
            for name in DCT_NAMES}


class TestConcurrentCompileMany:
    def test_counters_and_bits_under_hammering(self, cold_results):
        cache = FlowCache(max_entries=32)
        rounds, workers = 6, 8
        lookups = rounds * workers * len(DCT_NAMES)

        def one_round(worker_seed):
            return compile_many(_designs(), cache=cache)

        collected = []
        for _ in range(rounds):
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(one_round, w) for w in range(workers)]
                collected.extend(future.result() for future in futures)

        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == lookups
        # Every distinct design missed at least once; concurrent first
        # rounds may race to a handful of extra misses, never more than
        # one per worker per design.
        assert len(DCT_NAMES) <= stats["misses"] <= len(DCT_NAMES) * workers
        assert stats["hits"] >= lookups - len(DCT_NAMES) * workers
        assert stats["entries"] == len(DCT_NAMES)

        for results in collected:
            for name, result in zip(DCT_NAMES, results):
                cold = cold_results[name]
                assert _bitstream_words(result) == _bitstream_words(cold)
                assert result.bitstream.total_bits() == \
                    cold.bitstream.total_bits()
                assert result.placement.assignment == \
                    cold.placement.assignment

    def test_mixed_compile_and_prewarm(self, cold_results):
        cache = FlowCache(max_entries=32)
        errors = []
        barrier = threading.Barrier(6)

        def prewarmer(index):
            try:
                barrier.wait(timeout=30)
                for _ in range(3):
                    cache.prewarm(_designs())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def compiler(index):
            try:
                barrier.wait(timeout=30)
                for _ in range(3):
                    results = compile_many(_designs(), cache=cache)
                    for name, result in zip(DCT_NAMES, results):
                        assert result.bitstream.total_bits() == \
                            cold_results[name].bitstream.total_bits()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = ([threading.Thread(target=prewarmer, args=(i,))
                    for i in range(3)]
                   + [threading.Thread(target=compiler, args=(i,))
                      for i in range(3)])
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats["entries"] == len(DCT_NAMES)
        assert stats["hits"] + stats["misses"] > 0
        # After the dust settles, everything is a guaranteed hit.
        before = cache.stats()["hits"]
        compile_many(_designs(), cache=cache)
        assert cache.stats()["hits"] == before + len(DCT_NAMES)
        assert cache.stats()["misses"] == stats["misses"]

    def test_capacity_is_never_exceeded(self):
        cache = FlowCache(max_entries=2)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(compile_many, _designs(), None,
                                   cache=cache)
                       for _ in range(4)]
            for future in futures:
                future.result()
        assert len(cache) <= 2

    def test_distinct_designs_have_distinct_keys(self):
        flow = Flow.default()
        keys = set()
        for design in _designs() + [SystolicArray(),
                                    SystolicArray(module_count=2)]:
            from repro.flow.design import resolve_fabric

            fabric = resolve_fabric(design)
            keys.add(cache_key(design.build_netlist(), fabric, flow))
        assert len(keys) == len(DCT_NAMES) + 2


class TestServeSchedulerPrewarm:
    def test_admission_prewarm_makes_dispatch_hits(self):
        from repro.flow import cache as flow_cache_module
        from repro.serve import DctJob, KernelLibrary, ServeSettings, serve

        private = FlowCache(max_entries=64)
        original = flow_cache_module.DEFAULT_CACHE
        flow_cache_module.DEFAULT_CACHE = private
        try:
            jobs = [DctJob(job_id=i, arrival_cycle=100 * i,
                           blocks=np.zeros((2, 8, 8)),
                           dct_name=("scc_direct", "cordic1")[i % 2])
                    for i in range(4)]
            report = serve(jobs, ServeSettings(policy="fifo", prewarm=True),
                           library=KernelLibrary())
            assert report.completed == 4
            stats = private.stats()
            # Two distinct kernels: two cold compiles, everything else hit.
            assert stats["misses"] == 2
            assert stats["entries"] == 2
        finally:
            flow_cache_module.DEFAULT_CACHE = original
