"""Job types, batch keys, service estimates and the workload generator."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.serve import (
    TRAFFIC_MIXES,
    DctJob,
    EncodeJob,
    FirJob,
    generate_jobs,
    me_kernel_for_range,
    split_sequence_job,
)
from repro.serve.jobs import JOB_KINDS
from repro.video.scenes import scene_frames


def _frames(count=3, seed=0):
    return scene_frames("pan", count=count, height=32, width=32, seed=seed)


class TestEncodeJob:
    def test_kernels_cover_both_arrays(self):
        job = EncodeJob(job_id=0, arrival_cycle=0, frames=_frames(),
                        dct_name="scc_direct", search_range=4)
        assert job.kernels == {"da_array": "dct:scc_direct",
                               "me_array": "me:full_r4"}

    def test_batch_key_separates_kernels_and_shapes(self):
        base = EncodeJob(job_id=0, arrival_cycle=0, frames=_frames())
        same = EncodeJob(job_id=1, arrival_cycle=5, frames=_frames(seed=9))
        other_kernel = EncodeJob(job_id=2, arrival_cycle=0, frames=_frames(),
                                 dct_name="cordic2")
        other_range = EncodeJob(job_id=3, arrival_cycle=0, frames=_frames(),
                                search_range=4)
        assert base.batch_key == same.batch_key
        assert base.batch_key != other_kernel.batch_key
        assert base.batch_key != other_range.batch_key

    def test_estimate_grows_with_frames_and_range(self):
        small = EncodeJob(job_id=0, arrival_cycle=0, frames=_frames(2),
                          search_range=4)
        longer = EncodeJob(job_id=1, arrival_cycle=0, frames=_frames(4),
                           search_range=4)
        wider = EncodeJob(job_id=2, arrival_cycle=0, frames=_frames(2),
                          search_range=8)
        assert small.service_estimate() < longer.service_estimate()
        assert small.service_estimate() < wider.service_estimate()

    def test_empty_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            EncodeJob(job_id=0, arrival_cycle=0, frames=[])

    def test_unsupported_search_range_rejected(self):
        with pytest.raises(ConfigurationError):
            EncodeJob(job_id=0, arrival_cycle=0, frames=_frames(),
                      search_range=5)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            EncodeJob(job_id=0, arrival_cycle=-1, frames=_frames())

    def test_mixed_frame_shapes_rejected(self):
        frames = _frames(2) + scene_frames("pan", count=1, height=48,
                                           width=48, seed=0)
        with pytest.raises(ConfigurationError):
            EncodeJob(job_id=0, arrival_cycle=0, frames=frames)


class TestKernelInvocationJobs:
    def test_dct_job_validates_block_shape(self):
        with pytest.raises(ConfigurationError):
            DctJob(job_id=0, arrival_cycle=0, blocks=np.zeros((4, 8, 7)))

    def test_dct_job_key_and_estimate(self):
        job = DctJob(job_id=0, arrival_cycle=0, blocks=np.zeros((5, 8, 8)),
                     qp=20, dct_name="cordic1")
        assert job.batch_key == ("dct", 20, "cordic1")
        assert job.kernels == {"da_array": "dct:cordic1"}
        assert job.service_estimate() == 5 * 12

    def test_fir_job_validates_samples(self):
        with pytest.raises(ConfigurationError):
            FirJob(job_id=0, arrival_cycle=0, samples=np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            FirJob(job_id=0, arrival_cycle=0, samples=np.array([]))

    def test_me_kernel_lookup(self):
        assert me_kernel_for_range(4) == "me:full_r4"
        assert me_kernel_for_range(8) == "me:full_r8"
        with pytest.raises(ConfigurationError):
            me_kernel_for_range(99)


class TestSplitSequenceJob:
    def test_shards_cover_the_sequence_in_order(self):
        request = EncodeJob(job_id=50, arrival_cycle=120, frames=_frames(10))
        shards = split_sequence_job(request, first_job_id=100, gop_size=4)
        assert [shard.job_id for shard in shards] == [100, 101, 102]
        assert [len(shard.frames) for shard in shards] == [4, 4, 2]
        assert all(shard.kind == "gop" for shard in shards)
        assert all(shard.sequence_id == 50 for shard in shards)
        assert [shard.gop_index for shard in shards] == [0, 1, 2]
        assert all(shard.arrival_cycle == 120 for shard in shards)
        merged = [frame for shard in shards for frame in shard.frames]
        for original, piece in zip(request.frames, merged):
            np.testing.assert_array_equal(original, piece)


class TestWorkloadGenerator:
    @pytest.mark.parametrize("mix", TRAFFIC_MIXES)
    def test_deterministic_under_seed(self, mix):
        first = generate_jobs(mix, job_count=10, seed=42)
        second = generate_jobs(mix, job_count=10, seed=42)
        assert [job.job_id for job in first] == [job.job_id for job in second]
        assert ([job.arrival_cycle for job in first]
                == [job.arrival_cycle for job in second])
        assert [job.kind for job in first] == [job.kind for job in second]
        assert all(job.kind in JOB_KINDS for job in first)

    @pytest.mark.parametrize("mix", TRAFFIC_MIXES)
    def test_arrivals_sorted_and_ids_unique(self, mix):
        jobs = generate_jobs(mix, job_count=15, seed=3)
        ids = [job.job_id for job in jobs]
        assert len(set(ids)) == len(ids)
        arrivals = [job.arrival_cycle for job in jobs]
        assert arrivals == sorted(arrivals)

    def test_seeds_differ(self):
        first = generate_jobs("kernel_churn", job_count=10, seed=1)
        second = generate_jobs("kernel_churn", job_count=10, seed=2)
        assert ([job.arrival_cycle for job in first]
                != [job.arrival_cycle for job in second])

    def test_churn_actually_churns_kernels(self):
        jobs = generate_jobs("kernel_churn", job_count=20, seed=0)
        kernels = {kernel for job in jobs for kernel in job.kernels.values()}
        assert len(kernels) >= 3

    def test_sequence_request_is_presplit(self):
        jobs = generate_jobs("steady_encode", job_count=5, seed=0,
                             sequence_frames=10)
        shards = [job for job in jobs if job.sequence_id is not None]
        assert len(shards) >= 2
        assert {shard.sequence_id for shard in shards} == {5}

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_jobs("nope", job_count=3)


class TestValidationEdges:
    def test_encode_kind_validated(self):
        with pytest.raises(ConfigurationError):
            EncodeJob(job_id=0, arrival_cycle=0, frames=_frames(), kind="dct")

    def test_dct_and_fir_guards(self):
        with pytest.raises(ConfigurationError):
            DctJob(job_id=0, arrival_cycle=-1, blocks=np.zeros((1, 8, 8)))
        with pytest.raises(ConfigurationError):
            DctJob(job_id=0, arrival_cycle=0, blocks=np.zeros((1, 8, 8)),
                   kind="fir")
        with pytest.raises(ConfigurationError):
            FirJob(job_id=0, arrival_cycle=-1, samples=np.arange(4))
        with pytest.raises(ConfigurationError):
            FirJob(job_id=0, arrival_cycle=0, samples=np.arange(4),
                   kind="dct")

    def test_workload_needs_jobs(self):
        with pytest.raises(ConfigurationError):
            generate_jobs("steady_encode", job_count=0)

    def test_trace_kinds_orders_by_id(self):
        from repro.serve.workload import trace_kinds

        jobs = generate_jobs("bursty_mixed", job_count=6, seed=0)
        assert trace_kinds(jobs) == [job.kind for job in
                                     sorted(jobs, key=lambda j: j.job_id)]
