"""Batched execution is bit-identical to serial, for every job kind."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.serve import (
    DctJob,
    EncodeJob,
    FirJob,
    execute_batch,
    execute_serial,
    payload_digest,
)
from repro.video.codec import EncoderConfiguration, VideoEncoder
from repro.video.scenes import scene_frames


def _encode_jobs(count=3, frames_each=3):
    return [EncodeJob(job_id=i, arrival_cycle=0,
                      frames=scene_frames("pan", count=frames_each,
                                          height=32, width=32, seed=i))
            for i in range(count)]


class TestEncodeExecution:
    def test_batched_equals_serial(self):
        jobs = _encode_jobs(4)
        batched = execute_batch(jobs)
        serial = execute_serial(jobs)
        for a, b in zip(batched, serial):
            assert a.job_id == b.job_id
            assert a.digest == b.digest
            assert a.compute_cycles == b.compute_cycles
            assert a.output_bits == b.output_bits

    def test_serial_single_job_matches_plain_encoder(self):
        job = _encode_jobs(1)[0]
        result = execute_serial([job])[0]
        encoder = VideoEncoder(EncoderConfiguration())
        reference = encoder.encode_sequence(job.frames)
        assert payload_digest(result.payload) == payload_digest(reference)

    def test_activity_aggregates_populated(self):
        result = execute_batch(_encode_jobs(2))[0]
        assert result.sad_operations > 0
        assert result.dct_blocks > 0
        assert result.compute_cycles > 0
        assert result.output_bits > 0

    def test_frame_indices_are_local(self):
        for result in execute_batch(_encode_jobs(3, frames_each=2)):
            assert [stats.frame_index for stats in result.payload] == [0, 1]


class TestDctExecution:
    def test_batched_equals_serial(self, rng):
        jobs = [DctJob(job_id=i, arrival_cycle=0,
                       blocks=rng.integers(-128, 128, (4 + i, 8, 8)))
                for i in range(5)]
        batched = execute_batch(jobs)
        serial = execute_serial(jobs)
        for a, b in zip(batched, serial):
            np.testing.assert_array_equal(a.payload, b.payload)
            assert a.digest == b.digest

    def test_levels_match_direct_quantise(self, rng):
        from repro.dct.quantization import quantise
        from repro.dct.reference import dct_2d_batched

        blocks = rng.integers(-128, 128, (6, 8, 8)).astype(np.float64)
        job = DctJob(job_id=0, arrival_cycle=0, blocks=blocks, qp=18)
        result = execute_batch([job])[0]
        np.testing.assert_array_equal(result.payload,
                                      quantise(dct_2d_batched(blocks), 18))


class TestFirExecution:
    def test_batched_equals_serial(self, rng):
        jobs = [FirJob(job_id=i, arrival_cycle=0,
                       samples=rng.integers(0, 256, 96 + i))
                for i in range(4)]
        for a, b in zip(execute_batch(jobs), execute_serial(jobs)):
            np.testing.assert_array_equal(a.payload, b.payload)
            assert a.digest == b.digest
            assert a.filter_samples == a.payload.size


class TestBatchValidation:
    def test_mixed_keys_rejected(self, rng):
        jobs = [DctJob(job_id=0, arrival_cycle=0,
                       blocks=rng.integers(0, 8, (2, 8, 8)), qp=10),
                DctJob(job_id=1, arrival_cycle=0,
                       blocks=rng.integers(0, 8, (2, 8, 8)), qp=12)]
        with pytest.raises(ConfigurationError):
            execute_batch(jobs)

    def test_empty_batch_is_empty(self):
        assert execute_batch([]) == []


class TestPayloadDigest:
    def test_sensitive_to_array_bits(self, rng):
        values = rng.integers(0, 100, (3, 8, 8))
        tweaked = values.copy()
        tweaked[0, 0, 0] += 1
        assert payload_digest(values) != payload_digest(tweaked)
        assert payload_digest(values) == payload_digest(values.copy())

    def test_sensitive_to_dtype(self):
        values = np.zeros(4, dtype=np.int64)
        assert payload_digest(values) != payload_digest(
            values.astype(np.int32))

    def test_rejects_unknown_payloads(self):
        with pytest.raises(ConfigurationError):
            payload_digest(["not", "statistics"])
