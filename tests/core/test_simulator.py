"""Unit tests of the generic dataflow simulator."""

import pytest

from repro.core.clusters import ClusterKind
from repro.core.exceptions import SimulationError
from repro.core.netlist import Netlist
from repro.core.simulator import DataflowSimulator


def adder_chain() -> Netlist:
    netlist = Netlist("adder_chain")
    netlist.add_node("in0", ClusterKind.ADD_SHIFT)
    netlist.add_node("in1", ClusterKind.ADD_SHIFT)
    netlist.add_node("sum", ClusterKind.ADD_SHIFT, role="adder")
    netlist.add_node("acc", ClusterKind.ADD_SHIFT, role="accumulator")
    netlist.connect("in0", "sum")
    netlist.connect("in1", "sum")
    netlist.connect("sum", "acc")
    return netlist


class TestBinding:
    def test_bind_unknown_node_rejected(self):
        simulator = DataflowSimulator(adder_chain())
        with pytest.raises(SimulationError):
            simulator.bind("nope", lambda inputs: 0)

    def test_drive_unknown_node_rejected(self):
        simulator = DataflowSimulator(adder_chain())
        with pytest.raises(SimulationError):
            simulator.drive("nope", 1)

    def test_step_with_nothing_bound_rejected(self):
        simulator = DataflowSimulator(adder_chain())
        with pytest.raises(SimulationError):
            simulator.step()


class TestExecution:
    def test_combinational_adder_propagates_within_cycle(self):
        simulator = DataflowSimulator(adder_chain())
        simulator.bind_constant("in0", 3)
        simulator.bind_constant("in1", 4)
        simulator.bind("sum", lambda inputs: inputs["in0"] + inputs["in1"])
        simulator.bind("acc", lambda inputs: inputs["sum"])
        values = simulator.step()
        assert values["sum"] == 7
        assert values["acc"] == 7

    def test_registered_node_delays_by_one_cycle(self):
        simulator = DataflowSimulator(adder_chain())
        simulator.bind_constant("in0", 3)
        simulator.bind_constant("in1", 4)
        simulator.bind("sum", lambda inputs: inputs["in0"] + inputs["in1"],
                       registered=True)
        simulator.bind("acc", lambda inputs: inputs["sum"])
        first = simulator.step()
        assert first["acc"] == 0          # register still holds its reset value
        second = simulator.step()
        assert second["acc"] == 7

    def test_stateful_behaviour_accumulates(self):
        simulator = DataflowSimulator(adder_chain())
        simulator.bind_constant("in0", 1)
        simulator.bind_constant("in1", 2)
        simulator.bind("sum", lambda inputs: inputs["in0"] + inputs["in1"])
        state = {"total": 0}

        def accumulate(inputs):
            state["total"] += inputs["sum"]
            return state["total"]

        simulator.bind("acc", accumulate)
        simulator.run(4)
        assert simulator.value_of("acc") == 12

    def test_drive_overrides_external_input(self):
        simulator = DataflowSimulator(adder_chain())
        simulator.bind("sum", lambda inputs: inputs.get("in0", 0) + inputs.get("in1", 0))
        simulator.bind("acc", lambda inputs: inputs["sum"])
        simulator.drive("in0", 10)
        simulator.drive("in1", 20)
        values = simulator.step()
        assert values["sum"] == 30

    def test_reset_restores_zero_state(self):
        simulator = DataflowSimulator(adder_chain())
        simulator.bind_constant("in0", 5)
        simulator.bind_constant("in1", 5)
        simulator.bind("sum", lambda inputs: inputs["in0"] + inputs["in1"])
        simulator.bind("acc", lambda inputs: inputs["sum"])
        simulator.step()
        simulator.reset()
        assert simulator.cycle == 0
        assert simulator.value_of("acc") == 0

    def test_trace_recording(self):
        simulator = DataflowSimulator(adder_chain())
        simulator.record_trace = True
        simulator.bind_constant("in0", 1)
        simulator.bind_constant("in1", 1)
        simulator.bind("sum", lambda inputs: inputs["in0"] + inputs["in1"])
        simulator.bind("acc", lambda inputs: inputs["sum"])
        simulator.run(3)
        assert len(simulator.trace) == 3
        assert simulator.trace[-1].values["sum"] == 2

    def test_negative_cycle_count_rejected(self):
        simulator = DataflowSimulator(adder_chain())
        with pytest.raises(SimulationError):
            simulator.run(-1)
