"""Unit tests of the greedy and annealing placers."""

import pytest

from repro.core.clusters import ClusterKind, ClusterSpec
from repro.core.exceptions import CapacityError
from repro.core.fabric import Fabric
from repro.core.mapper import AnnealingPlacer, GreedyPlacer, Placement, manhattan, wirelength
from repro.core.netlist import Netlist


def make_fabric(rows: int = 4, cols: int = 4) -> Fabric:
    fabric = Fabric("fab", rows, cols)
    fabric.fill_column_band(0, cols - 1, ClusterSpec(ClusterKind.ADD_SHIFT, 16))
    fabric.fill_column_band(cols - 1, cols, ClusterSpec(ClusterKind.MEMORY, 8, 64))
    return fabric


def make_netlist(channels: int = 3) -> Netlist:
    netlist = Netlist("nl")
    for i in range(channels):
        netlist.add_node(f"sr{i}", ClusterKind.ADD_SHIFT, role="shift_register")
        netlist.add_node(f"rom{i}", ClusterKind.MEMORY, depth_words=16)
        netlist.add_node(f"acc{i}", ClusterKind.ADD_SHIFT, role="accumulator")
        netlist.connect(f"sr{i}", f"rom{i}", width_bits=1)
        netlist.connect(f"rom{i}", f"acc{i}", width_bits=8)
    return netlist


class TestHelpers:
    def test_manhattan_distance(self):
        assert manhattan((0, 0), (2, 3)) == 5
        assert manhattan((1, 1), (1, 1)) == 0

    def test_wirelength_weights_by_width(self):
        netlist = Netlist("w")
        netlist.add_node("a", ClusterKind.ADD_SHIFT)
        netlist.add_node("b", ClusterKind.ADD_SHIFT)
        netlist.connect("a", "b", width_bits=8)
        placement = Placement("f", "w", {"a": (0, 0), "b": (0, 2)})
        assert wirelength(netlist, placement) == 16
        assert wirelength(netlist, placement, width_weighted=False) == 2

    def test_placement_lookup_error(self):
        placement = Placement("f", "w", {})
        from repro.core.exceptions import MappingError
        with pytest.raises(MappingError):
            placement.position_of("missing")


class TestGreedyPlacer:
    def test_places_every_node_on_compatible_site(self):
        fabric = make_fabric()
        netlist = make_netlist()
        placement = GreedyPlacer(fabric).place(netlist)
        assert len(placement) == len(netlist)
        for node in netlist.nodes:
            site = fabric.site(placement.position_of(node.name))
            assert site.spec.kind is node.kind

    def test_no_two_nodes_share_a_site(self):
        placement = GreedyPlacer(make_fabric()).place(make_netlist())
        positions = list(placement.assignment.values())
        assert len(positions) == len(set(positions))

    def test_capacity_error_when_netlist_too_big(self):
        fabric = make_fabric(rows=1, cols=2)
        with pytest.raises(CapacityError):
            GreedyPlacer(fabric).place(make_netlist(channels=4))

    def test_connected_nodes_placed_close(self):
        fabric = make_fabric(rows=6, cols=6)
        netlist = make_netlist(channels=2)
        placement = GreedyPlacer(fabric).place(netlist)
        # Each ROM should be adjacent-ish to its accumulator (within a few hops).
        for i in range(2):
            distance = manhattan(placement.position_of(f"rom{i}"),
                                 placement.position_of(f"acc{i}"))
            assert distance <= 6


class TestAnnealingPlacer:
    def test_never_worse_than_greedy(self):
        fabric = make_fabric(rows=6, cols=6)
        netlist = make_netlist(channels=4)
        greedy = GreedyPlacer(fabric).place(netlist)
        greedy_cost = wirelength(netlist, greedy)
        annealed = AnnealingPlacer(fabric, seed=1,
                                   moves_per_temperature=32).place(netlist)
        assert wirelength(netlist, annealed) <= greedy_cost * 1.05

    def test_deterministic_for_fixed_seed(self):
        fabric_a = make_fabric(rows=6, cols=6)
        fabric_b = make_fabric(rows=6, cols=6)
        netlist = make_netlist(channels=4)
        first = AnnealingPlacer(fabric_a, seed=3).place(netlist)
        second = AnnealingPlacer(fabric_b, seed=3).place(netlist)
        assert first.assignment == second.assignment

    def test_result_remains_a_legal_placement(self):
        fabric = make_fabric(rows=6, cols=6)
        netlist = make_netlist(channels=4)
        placement = AnnealingPlacer(fabric, seed=0).place(netlist)
        positions = list(placement.assignment.values())
        assert len(positions) == len(set(positions))
        for node in netlist.nodes:
            assert fabric.site(placement.position_of(node.name)).spec.kind is node.kind
