"""Unit tests of the two-level interconnect mesh."""

import pytest

from repro.core.exceptions import ConfigurationError, RoutingError
from repro.core.interconnect import (
    COARSE_TRACK_BITS,
    Channel,
    Mesh,
    MeshSpec,
    fine_grain_equivalent,
)


class TestChannel:
    def test_wide_signal_uses_coarse_tracks(self):
        channel = Channel(coarse_tracks=4, fine_tracks=4)
        assert channel.tracks_for_width(8) == (1, 0)
        assert channel.tracks_for_width(16) == (2, 0)
        assert channel.tracks_for_width(12) == (2, 0)

    def test_narrow_signal_uses_fine_tracks(self):
        channel = Channel(coarse_tracks=4, fine_tracks=4)
        assert channel.tracks_for_width(1) == (0, 1)
        assert channel.tracks_for_width(2) == (0, 2)

    def test_mid_width_signal_rounds_up_to_coarse(self):
        channel = Channel(coarse_tracks=4, fine_tracks=4)
        assert channel.tracks_for_width(3) == (1, 0)

    def test_occupancy_and_release(self):
        channel = Channel(coarse_tracks=1, fine_tracks=0)
        channel.occupy(8)
        assert not channel.can_route(8)
        channel.release(8)
        assert channel.can_route(8)

    def test_congested_channel_raises(self):
        channel = Channel(coarse_tracks=1, fine_tracks=0)
        channel.occupy(8)
        with pytest.raises(RoutingError):
            channel.occupy(8)

    def test_utilisation_fraction(self):
        channel = Channel(coarse_tracks=2, fine_tracks=2)
        channel.occupy(8)
        assert channel.utilisation == pytest.approx(0.25)


class TestMeshSpec:
    def test_rejects_empty_channel(self):
        with pytest.raises(ConfigurationError):
            MeshSpec(coarse_tracks_per_channel=0, fine_tracks_per_channel=0)

    def test_switch_and_config_counts(self):
        spec = MeshSpec(coarse_tracks_per_channel=2, fine_tracks_per_channel=4,
                        switches_per_track_per_channel=6)
        assert spec.switches_per_channel() == 36
        assert spec.config_bits_per_channel() == 36

    def test_wire_bits_counts_byte_lanes(self):
        spec = MeshSpec(coarse_tracks_per_channel=2, fine_tracks_per_channel=4)
        assert spec.wire_bits_per_channel() == 2 * COARSE_TRACK_BITS + 4

    def test_fine_grain_equivalent_preserves_wire_bits(self):
        spec = MeshSpec(coarse_tracks_per_channel=4, fine_tracks_per_channel=8)
        fine = fine_grain_equivalent(spec)
        assert fine.coarse_tracks_per_channel == 0
        assert fine.wire_bits_per_channel() == spec.wire_bits_per_channel()

    def test_fine_grain_equivalent_needs_more_switches(self):
        spec = MeshSpec(coarse_tracks_per_channel=4, fine_tracks_per_channel=8)
        fine = fine_grain_equivalent(spec)
        assert fine.switches_per_channel() > spec.switches_per_channel()
        assert fine.config_bits_per_channel() > spec.config_bits_per_channel()


class TestMesh:
    def test_channel_count_of_grid(self):
        mesh = Mesh(rows=3, cols=3)
        # 3x3 grid: 2 horizontal channels per row * 3 rows + same vertically.
        assert mesh.channel_count == 12

    def test_neighbours_inside_grid(self):
        mesh = Mesh(rows=2, cols=2)
        assert sorted(mesh.neighbours((0, 0))) == [(0, 1), (1, 0)]
        assert len(mesh.neighbours((1, 1))) == 2

    def test_channel_lookup_requires_adjacency(self):
        mesh = Mesh(rows=3, cols=3)
        with pytest.raises(RoutingError):
            mesh.channel_between((0, 0), (2, 2))

    def test_occupy_path_is_atomic(self):
        mesh = Mesh(rows=1, cols=3, spec=MeshSpec(coarse_tracks_per_channel=1,
                                                  fine_tracks_per_channel=0))
        # Fill the second hop so a two-hop path must fail and roll back.
        mesh.channel_between((0, 1), (0, 2)).occupy(8)
        with pytest.raises(RoutingError):
            mesh.occupy_path([(0, 0), (0, 1), (0, 2)], 8)
        assert mesh.channel_between((0, 0), (0, 1)).coarse_used == 0

    def test_reset_occupancy(self):
        mesh = Mesh(rows=2, cols=2)
        mesh.occupy_path([(0, 0), (0, 1)], 8)
        mesh.reset_occupancy()
        assert mesh.mean_utilisation() == 0.0

    def test_aggregate_statistics_scale_with_size(self):
        small = Mesh(rows=2, cols=2)
        large = Mesh(rows=4, cols=4)
        assert large.total_switches() > small.total_switches()
        assert large.total_config_bits() > small.total_config_bits()
        assert large.total_wire_bits() > small.total_wire_bits()

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Mesh(rows=0, cols=3)
