"""Unit tests of the ASCII visualisation helpers."""

import pytest

from repro.arrays import build_da_array
from repro.core.mapper import GreedyPlacer
from repro.core.router import MeshRouter
from repro.core.visualize import congestion_map, design_report, placement_map
from repro.dct import MixedRomDCT


@pytest.fixture(scope="module")
def mapped_design():
    fabric = build_da_array()
    netlist = MixedRomDCT().build_netlist()
    placement = GreedyPlacer(fabric).place(netlist)
    routing = MeshRouter(fabric).route(netlist, placement)
    return fabric, netlist, placement, routing


class TestPlacementMap:
    def test_grid_dimensions_match_fabric(self, mapped_design):
        fabric, netlist, placement, _ = mapped_design
        lines = placement_map(fabric, placement, netlist).splitlines()
        assert len(lines) == fabric.rows

    def test_occupied_sites_rendered_upper_case(self, mapped_design):
        fabric, netlist, placement, _ = mapped_design
        rendered = placement_map(fabric, placement, netlist)
        assert "ASH" in rendered          # occupied Add-Shift sites
        assert "ash" in rendered          # free Add-Shift sites remain

    def test_occupied_count_matches_placement(self, mapped_design):
        fabric, netlist, placement, _ = mapped_design
        rendered = placement_map(fabric, placement, netlist)
        assert rendered.count("ASH") + rendered.count("MEM") == len(placement)


class TestCongestionMap:
    def test_dimensions_match_fabric(self, mapped_design):
        fabric, *_ = mapped_design
        lines = congestion_map(fabric).splitlines()
        assert len(lines) == fabric.rows
        assert all(len(line) == fabric.cols for line in lines)

    def test_routed_fabric_shows_non_idle_cells(self, mapped_design):
        fabric, *_ = mapped_design
        rendered = congestion_map(fabric)
        assert any(char not in " " for line in rendered.splitlines() for char in line)


class TestDesignReport:
    def test_report_contains_all_sections(self, mapped_design):
        fabric, netlist, placement, routing = mapped_design
        report = design_report(fabric, netlist, placement, routing)
        assert "mixed_rom" in report
        assert "placement map:" in report
        assert "congestion map:" in report
        assert "hops" in report

    def test_report_without_routing_skips_congestion(self, mapped_design):
        fabric, netlist, placement, _ = mapped_design
        report = design_report(fabric, netlist, placement)
        assert "congestion map:" not in report
