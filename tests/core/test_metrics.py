"""Unit tests of the area / timing / configuration metrics."""

import pytest

from repro.core.clusters import ClusterKind, ClusterSpec
from repro.core.fabric import Fabric
from repro.core.mapper import GreedyPlacer
from repro.core.metrics import (
    configuration_bits,
    critical_path_delay,
    evaluate_design,
    logic_area,
    memory_bits,
)
from repro.core.netlist import Netlist
from repro.core.router import MeshRouter


def chain_netlist(length: int = 3, width: int = 16) -> Netlist:
    netlist = Netlist(f"chain{length}")
    previous = None
    for i in range(length):
        netlist.add_node(f"n{i}", ClusterKind.ADD_SHIFT, width_bits=width)
        if previous is not None:
            netlist.connect(previous, f"n{i}", width_bits=width)
        previous = f"n{i}"
    return netlist


def small_fabric() -> Fabric:
    fabric = Fabric("fab", rows=2, cols=4)
    fabric.fill_column_band(0, 3, ClusterSpec(ClusterKind.ADD_SHIFT, 16))
    fabric.fill_column_band(3, 4, ClusterSpec(ClusterKind.MEMORY, 8, 256))
    return fabric


class TestAreaModel:
    def test_logic_area_grows_with_node_count(self):
        assert logic_area(chain_netlist(4)) > logic_area(chain_netlist(2))

    def test_memory_bits_counted_from_rom_nodes(self):
        netlist = Netlist("mem")
        netlist.add_node("rom", ClusterKind.MEMORY, width_bits=8, depth_words=256)
        assert memory_bits(netlist) == 2048
        assert memory_bits(chain_netlist()) == 0

    def test_wider_datapath_costs_more_area(self):
        assert logic_area(chain_netlist(3, width=16)) > logic_area(chain_netlist(3, width=8))


class TestTimingModel:
    def test_longer_chain_has_longer_critical_path(self):
        assert critical_path_delay(chain_netlist(5)) > critical_path_delay(chain_netlist(2))

    def test_routing_hops_add_delay(self):
        fabric = small_fabric()
        netlist = chain_netlist(3)
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        assert critical_path_delay(netlist, routing) >= critical_path_delay(netlist)

    def test_empty_netlist_has_zero_delay(self):
        assert critical_path_delay(Netlist("empty")) == 0.0


class TestConfigurationModel:
    def test_memory_nodes_dominate_configuration(self):
        logic_only = chain_netlist(3)
        with_rom = Netlist("rom")
        with_rom.add_node("rom", ClusterKind.MEMORY, width_bits=8, depth_words=256)
        assert configuration_bits(with_rom) > configuration_bits(logic_only)

    def test_routed_switches_add_bits(self):
        fabric = small_fabric()
        netlist = chain_netlist(3)
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        assert configuration_bits(netlist, routing) >= configuration_bits(netlist)


class TestEvaluateDesign:
    def test_summary_contains_expected_keys(self):
        fabric = small_fabric()
        netlist = chain_netlist(3)
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        metrics = evaluate_design(netlist, fabric, placement, routing)
        summary = metrics.summary()
        for key in ("total_clusters", "total_area_elements", "critical_path_delay",
                    "configuration_bits", "routed_hops"):
            assert key in summary

    def test_max_frequency_is_reciprocal_of_delay(self):
        fabric = small_fabric()
        netlist = chain_netlist(3)
        metrics = evaluate_design(netlist, fabric)
        assert metrics.max_frequency == pytest.approx(1.0 / metrics.critical_path_delay)

    def test_pre_placement_evaluation_has_no_wirelength(self):
        metrics = evaluate_design(chain_netlist(3), small_fabric())
        assert metrics.wirelength == 0.0
        assert metrics.routed_hops == 0
