"""Unit tests of the configuration-bitstream model."""

import pytest

from repro.core.clusters import ClusterKind
from repro.core.configuration import (
    CLUSTER_MODE_BITS,
    ChannelConfiguration,
    ClusterConfiguration,
    ConfigurationBitstream,
    fabric_configuration_capacity,
)
from repro.core.exceptions import ConfigurationError
from repro.arrays import build_da_array, build_me_array


class TestClusterConfiguration:
    def test_mode_bits_follow_kind(self):
        configuration = ClusterConfiguration((0, 0), ClusterKind.ADD_SHIFT, "adder")
        assert configuration.bit_count() == CLUSTER_MODE_BITS[ClusterKind.ADD_SHIFT]

    def test_rom_contents_add_bits(self):
        configuration = ClusterConfiguration((0, 0), ClusterKind.MEMORY, "rom",
                                             rom_contents=tuple(range(16)),
                                             rom_word_bits=8)
        assert configuration.bit_count() == CLUSTER_MODE_BITS[ClusterKind.MEMORY] + 128


class TestBitstream:
    def build(self) -> ConfigurationBitstream:
        bitstream = ConfigurationBitstream("da_array")
        bitstream.add_cluster(ClusterConfiguration((0, 0), ClusterKind.ADD_SHIFT, "adder"))
        bitstream.add_cluster(ClusterConfiguration((0, 1), ClusterKind.MEMORY, "rom",
                                                   rom_contents=(1, 2, 3, 4),
                                                   rom_word_bits=8))
        bitstream.add_channel(ChannelConfiguration(((0, 0), (0, 1)),
                                                   coarse_switches_on=2))
        return bitstream

    def test_total_bits_sum_components(self):
        bitstream = self.build()
        expected = (CLUSTER_MODE_BITS[ClusterKind.ADD_SHIFT]
                    + CLUSTER_MODE_BITS[ClusterKind.MEMORY] + 32 + 2)
        assert bitstream.total_bits() == expected

    def test_bytes_round_up(self):
        bitstream = self.build()
        assert bitstream.total_bytes() == -(-bitstream.total_bits() // 8)

    def test_serialize_length_matches_bit_count(self):
        bitstream = self.build()
        assert len(bitstream.serialize()) == bitstream.total_bytes()

    def test_reconfiguration_cycles_scale_with_bus_width(self):
        bitstream = self.build()
        assert (bitstream.reconfiguration_cycles(bus_width_bits=8)
                > bitstream.reconfiguration_cycles(bus_width_bits=32))

    def test_zero_bus_width_rejected(self):
        with pytest.raises(ConfigurationError):
            self.build().reconfiguration_cycles(bus_width_bits=0)


class TestFabricCapacity:
    def test_capacity_positive_for_both_arrays(self):
        assert fabric_configuration_capacity(build_da_array()) > 0
        assert fabric_configuration_capacity(build_me_array()) > 0

    def test_bigger_fabric_needs_more_configuration(self):
        from repro.arrays.da_array import DAArrayGeometry, build_da_array as build
        small = build(DAArrayGeometry(rows=4, add_shift_columns=2, memory_columns=1))
        large = build(DAArrayGeometry(rows=10, add_shift_columns=6, memory_columns=2))
        assert (fabric_configuration_capacity(large)
                > fabric_configuration_capacity(small))
