"""Unit tests of the heterogeneous fabric."""

import pytest

from repro.core.clusters import ClusterKind, ClusterSpec
from repro.core.exceptions import CapacityError, ConfigurationError
from repro.core.fabric import Fabric


def small_fabric() -> Fabric:
    fabric = Fabric("test", rows=2, cols=3)
    fabric.fill_column_band(0, 2, ClusterSpec(ClusterKind.ADD_SHIFT, 16))
    fabric.fill_column_band(2, 3, ClusterSpec(ClusterKind.MEMORY, 8, 64))
    return fabric


class TestConstruction:
    def test_place_cluster_and_lookup(self):
        fabric = Fabric("f", rows=1, cols=1)
        fabric.place_cluster((0, 0), ClusterSpec(ClusterKind.ABS_DIFF, 8))
        assert fabric.site((0, 0)).spec.kind is ClusterKind.ABS_DIFF

    def test_double_placement_rejected(self):
        fabric = Fabric("f", rows=1, cols=1)
        fabric.place_cluster((0, 0), ClusterSpec(ClusterKind.ABS_DIFF, 8))
        with pytest.raises(ConfigurationError):
            fabric.place_cluster((0, 0), ClusterSpec(ClusterKind.ABS_DIFF, 8))

    def test_out_of_bounds_placement_rejected(self):
        fabric = Fabric("f", rows=1, cols=1)
        with pytest.raises(ConfigurationError):
            fabric.place_cluster((5, 5), ClusterSpec(ClusterKind.ABS_DIFF, 8))

    def test_invalid_band_rejected(self):
        fabric = Fabric("f", rows=2, cols=2)
        with pytest.raises(ConfigurationError):
            fabric.fill_column_band(1, 1, ClusterSpec(ClusterKind.ABS_DIFF, 8))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            Fabric("f", rows=0, cols=1)


class TestQueries:
    def test_capacity_counts_bands(self):
        capacity = small_fabric().capacity()
        assert capacity[ClusterKind.ADD_SHIFT] == 4
        assert capacity[ClusterKind.MEMORY] == 2

    def test_sites_of_kind(self):
        fabric = small_fabric()
        assert len(fabric.sites_of_kind(ClusterKind.MEMORY)) == 2

    def test_check_capacity_accepts_fitting_demand(self):
        small_fabric().check_capacity({ClusterKind.ADD_SHIFT: 4, ClusterKind.MEMORY: 2})

    def test_check_capacity_raises_with_shortfall_detail(self):
        with pytest.raises(CapacityError, match="memory"):
            small_fabric().check_capacity({ClusterKind.MEMORY: 3})

    def test_total_counts(self):
        fabric = small_fabric()
        assert fabric.total_cluster_sites() == 6
        # ADD_SHIFT is 16 bits (4 elements) x4, MEMORY 8 bits (2 elements) x2.
        assert fabric.total_element_count() == 4 * 4 + 2 * 2

    def test_instantiate_builds_behavioural_model(self):
        fabric = small_fabric()
        model = fabric.instantiate((0, 2))
        assert model.depth_words == 64

    def test_instantiate_empty_site_rejected(self):
        fabric = Fabric("f", rows=1, cols=2)
        fabric.place_cluster((0, 0), ClusterSpec(ClusterKind.ABS_DIFF, 8))
        with pytest.raises(ConfigurationError):
            fabric.instantiate((0, 1))

    def test_floorplan_shows_every_site(self):
        plan = small_fabric().floorplan()
        assert plan.count("ASH") == 4
        assert plan.count("MEM") == 2
