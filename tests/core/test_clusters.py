"""Unit tests of the cluster behavioural models."""

import pytest

from repro.core.clusters import (
    ELEMENT_WIDTH_BITS,
    AbsDiffCluster,
    AddAccCluster,
    AddShiftCluster,
    ClusterKind,
    ClusterSpec,
    ClusterUsage,
    ComparatorCluster,
    MemoryCluster,
    RegisterMuxCluster,
    build_cluster,
    elements_for_width,
    to_signed,
    to_unsigned,
)
from repro.core.exceptions import ConfigurationError


class TestWidthHelpers:
    def test_elements_for_width_rounds_up(self):
        assert elements_for_width(1) == 1
        assert elements_for_width(4) == 1
        assert elements_for_width(5) == 2
        assert elements_for_width(8) == 2
        assert elements_for_width(16) == 4

    def test_elements_for_width_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            elements_for_width(0)

    def test_signed_unsigned_round_trip(self):
        for value in (-8, -1, 0, 1, 7):
            assert to_signed(to_unsigned(value, 4), 4) == value

    def test_to_signed_wraps_msb(self):
        assert to_signed(0xF, 4) == -1
        assert to_signed(0x8, 4) == -8
        assert to_signed(0x7, 4) == 7


class TestClusterSpec:
    def test_element_count_follows_width(self):
        spec = ClusterSpec(ClusterKind.ADD_SHIFT, width_bits=16)
        assert spec.element_count == 16 // ELEMENT_WIDTH_BITS

    def test_memory_requires_depth(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(ClusterKind.MEMORY, width_bits=8)

    def test_non_memory_rejects_depth(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(ClusterKind.ADD_SHIFT, width_bits=8, depth_words=16)

    def test_describe_mentions_geometry(self):
        spec = ClusterSpec(ClusterKind.MEMORY, width_bits=8, depth_words=256)
        assert "256" in spec.describe()

    def test_build_cluster_dispatches_every_kind(self):
        for kind in ClusterKind:
            depth = 16 if kind is ClusterKind.MEMORY else 0
            spec = ClusterSpec(kind, width_bits=8, depth_words=depth)
            model = build_cluster(spec)
            assert model.width_bits == 8


class TestRegisterMux:
    def test_unregistered_mux_selects_combinationally(self):
        mux = RegisterMuxCluster(width_bits=8, registered=False)
        assert mux.step(in0=3, in1=9, select=0) == 3
        assert mux.step(in0=3, in1=9, select=1) == 9

    def test_registered_mux_delays_by_one_cycle(self):
        mux = RegisterMuxCluster(width_bits=8, registered=True)
        assert mux.step(in0=5, in1=0, select=0) == 0   # power-on register value
        assert mux.step(in0=7, in1=0, select=0) == 5
        assert mux.step(in0=9, in1=0, select=0) == 7

    def test_values_wrap_to_width(self):
        mux = RegisterMuxCluster(width_bits=4, registered=False)
        assert mux.step(in0=0x1F, in1=0, select=0) == 0xF

    def test_reset_clears_register(self):
        mux = RegisterMuxCluster(width_bits=8)
        mux.step(in0=42, in1=0, select=0)
        mux.reset()
        assert mux.peek() == 0


class TestAbsDiff:
    def test_absolute_difference_is_symmetric(self):
        ad = AbsDiffCluster(width_bits=8)
        assert ad.absolute_difference(200, 55) == 145
        assert ad.absolute_difference(55, 200) == 145

    def test_add_and_subtract_wrap(self):
        ad = AbsDiffCluster(width_bits=8)
        assert ad.add(200, 100) == (300 & 0xFF)
        assert ad.subtract(10, 20) == ((10 - 20) & 0xFF)

    def test_toggle_counter_advances(self):
        ad = AbsDiffCluster(width_bits=8)
        ad.absolute_difference(0, 255)
        assert ad.toggles > 0
        assert ad.cycles == 1


class TestAddAcc:
    def test_accumulates_over_cycles(self):
        acc = AddAccCluster(width_bits=16)
        for value in (10, 20, 30):
            acc.accumulate(value)
        assert acc.accumulator == 60

    def test_accumulate_subtract(self):
        acc = AddAccCluster(width_bits=16)
        acc.accumulate(100)
        acc.accumulate(30, subtract=True)
        assert acc.accumulator == 70

    def test_clear_resets_only_accumulator(self):
        acc = AddAccCluster(width_bits=16)
        acc.accumulate(5)
        acc.clear()
        assert acc.accumulator == 0

    def test_combinational_add_does_not_touch_accumulator(self):
        acc = AddAccCluster(width_bits=16)
        assert acc.add(2, 3) == 5
        assert acc.accumulator == 0

    def test_accumulator_wraps_at_width(self):
        acc = AddAccCluster(width_bits=8)
        acc.accumulate(200)
        acc.accumulate(100)
        assert acc.accumulator == (300 & 0xFF)


class TestComparator:
    def test_tracks_minimum_with_tags(self):
        comp = ComparatorCluster(width_bits=16, track_minimum=True)
        comp.update(500, tag=0)
        comp.update(200, tag=1)
        comp.update(300, tag=2)
        assert comp.best_value == 200
        assert comp.best_tag == 1

    def test_tracks_maximum_when_configured(self):
        comp = ComparatorCluster(width_bits=16, track_minimum=False)
        comp.update(5, tag=0)
        comp.update(50, tag=1)
        assert comp.best_value == 50
        assert comp.best_tag == 1

    def test_ties_keep_the_first_candidate(self):
        comp = ComparatorCluster(width_bits=16)
        comp.update(100, tag=0)
        assert not comp.update(100, tag=1)
        assert comp.best_tag == 0

    def test_pairwise_compare(self):
        comp = ComparatorCluster(width_bits=16, track_minimum=True)
        assert comp.compare(9, 4) == 4
        comp_max = ComparatorCluster(width_bits=16, track_minimum=False)
        assert comp_max.compare(9, 4) == 9

    def test_reset_clears_best(self):
        comp = ComparatorCluster(width_bits=16)
        comp.update(1, tag=3)
        comp.reset()
        assert comp.best_value is None
        assert comp.best_tag is None


class TestAddShift:
    def test_shift_register_emits_lsb_first(self):
        cluster = AddShiftCluster(width_bits=8)
        cluster.load(0b1011)
        bits = [cluster.shift_out_lsb() for _ in range(4)]
        assert bits == [1, 1, 0, 1]

    def test_arithmetic_shift_preserves_sign(self):
        cluster = AddShiftCluster(width_bits=8)
        negative = to_unsigned(-8, 8)
        assert to_signed(cluster.shift(negative, 1, arithmetic=True), 8) == -4

    def test_logical_shift_zero_fills(self):
        cluster = AddShiftCluster(width_bits=8)
        assert cluster.shift(0b10000000, 3) == 0b00010000

    def test_shift_accumulate_signed(self):
        cluster = AddShiftCluster(width_bits=8)
        cluster.load(0)
        cluster.shift_accumulate(to_unsigned(-3, 8))
        assert to_signed(cluster.register, 8) == -3
        cluster.shift_accumulate(5, subtract=True)
        assert to_signed(cluster.register, 8) == -8

    def test_shift_right_arithmetic_on_register(self):
        cluster = AddShiftCluster(width_bits=8)
        cluster.load(to_unsigned(-16, 8))
        cluster.shift_right_arithmetic()
        assert to_signed(cluster.register, 8) == -8

    def test_negative_shift_amount_rejected(self):
        cluster = AddShiftCluster(width_bits=8)
        with pytest.raises(ConfigurationError):
            cluster.shift(1, -1)


class TestMemory:
    def test_load_and_read_round_trip(self):
        memory = MemoryCluster(depth_words=16, width_bits=8)
        memory.load_contents(range(16))
        assert [memory.read(i) for i in range(16)] == list(range(16))

    def test_short_image_zero_pads(self):
        memory = MemoryCluster(depth_words=8, width_bits=8)
        memory.load_contents([1, 2, 3])
        assert memory.dump() == [1, 2, 3, 0, 0, 0, 0, 0]

    def test_oversized_image_rejected(self):
        memory = MemoryCluster(depth_words=4, width_bits=8)
        with pytest.raises(ConfigurationError):
            memory.load_contents(range(5))

    def test_out_of_range_address_rejected(self):
        memory = MemoryCluster(depth_words=4, width_bits=8)
        with pytest.raises(ConfigurationError):
            memory.read(4)

    def test_contents_wrap_to_word_width(self):
        memory = MemoryCluster(depth_words=2, width_bits=4)
        memory.load_contents([0x1F, 0x22])
        assert memory.dump() == [0xF, 0x2]

    def test_read_counter_advances(self):
        memory = MemoryCluster(depth_words=4, width_bits=8)
        memory.load_contents([9, 8, 7, 6])
        memory.read(0)
        memory.read(3)
        assert memory.reads == 2


class TestClusterUsage:
    def test_add_shift_total_sums_roles(self):
        usage = ClusterUsage(adders=4, subtracters=4, shift_registers=8, accumulators=8)
        assert usage.add_shift_total == 24

    def test_total_includes_all_kinds(self):
        usage = ClusterUsage(adders=1, memory_clusters=2, register_mux=3,
                             abs_diff=4, add_acc=5, comparators=6)
        assert usage.total_clusters == 21

    def test_addition_merges_counts_and_extras(self):
        a = ClusterUsage(adders=1, extra={"io": 2})
        b = ClusterUsage(subtracters=3, extra={"io": 1, "dsp": 4})
        merged = a + b
        assert merged.adders == 1
        assert merged.subtracters == 3
        assert merged.extra == {"io": 3, "dsp": 4}

    def test_table_row_matches_paper_columns(self):
        usage = ClusterUsage(adders=4, subtracters=4, shift_registers=8,
                             accumulators=8, memory_clusters=8)
        row = usage.as_table_row()
        assert row["add_shift_total"] == 24
        assert row["memory_clusters"] == 8
        assert row["total_clusters"] == 32
