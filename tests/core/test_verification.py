"""Unit tests of the design-rule checks on mapped designs."""

import pytest

from repro.arrays import build_da_array, build_me_array
from repro.core.mapper import GreedyPlacer, Placement
from repro.core.router import MeshRouter, Route, RoutingResult
from repro.core.verification import (
    verify_mapped_design,
    verify_placement,
    verify_routing,
)
from repro.dct import CordicDCT1, MixedRomDCT
from repro.me import build_systolic_netlist


@pytest.fixture(scope="module")
def legal_design():
    fabric = build_da_array()
    netlist = MixedRomDCT().build_netlist()
    placement = GreedyPlacer(fabric).place(netlist)
    routing = MeshRouter(fabric).route(netlist, placement)
    return fabric, netlist, placement, routing


class TestLegalDesignsPass:
    def test_flow_output_passes_all_checks(self, legal_design):
        report = verify_mapped_design(*legal_design)
        assert report.passed, report.violations
        assert report.checks_run > 0
        assert report.summary().startswith("PASS")

    def test_cordic_netlist_also_passes(self):
        fabric = build_da_array()
        netlist = CordicDCT1().build_netlist()
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        assert verify_mapped_design(fabric, netlist, placement, routing).passed

    def test_systolic_engine_on_me_array_passes(self):
        fabric = build_me_array()
        netlist = build_systolic_netlist(module_count=2, pes_per_module=8)
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        assert verify_mapped_design(fabric, netlist, placement, routing).passed


class TestViolationsAreDetected:
    def test_missing_node_reported(self, legal_design):
        fabric, netlist, placement, _ = legal_design
        broken = Placement(fabric.name, netlist.name, dict(placement.assignment))
        removed = netlist.nodes[0].name
        del broken.assignment[removed]
        report = verify_placement(fabric, netlist, broken)
        assert not report.passed
        assert any(removed in violation for violation in report.violations)

    def test_wrong_site_kind_reported(self, legal_design):
        fabric, netlist, placement, _ = legal_design
        broken = Placement(fabric.name, netlist.name, dict(placement.assignment))
        # Move an Add-Shift node onto a memory site.
        from repro.core.clusters import ClusterKind
        add_shift_node = netlist.nodes_of_kind(ClusterKind.ADD_SHIFT)[0].name
        memory_site = fabric.sites_of_kind(ClusterKind.MEMORY)[-1].position
        broken.assignment[add_shift_node] = memory_site
        report = verify_placement(fabric, netlist, broken)
        assert any("site" in violation for violation in report.violations)

    def test_shared_site_reported(self, legal_design):
        fabric, netlist, placement, _ = legal_design
        broken = Placement(fabric.name, netlist.name, dict(placement.assignment))
        names = [node.name for node in netlist.nodes_of_kind(
            list(netlist.kind_histogram())[0])]
        broken.assignment[names[0]] = broken.assignment[names[1]]
        report = verify_placement(fabric, netlist, broken)
        assert any("shared" in violation for violation in report.violations)

    def test_disconnected_route_reported(self, legal_design):
        fabric, netlist, placement, routing = legal_design
        target = next(route for route in routing.routes if route.hop_count > 0)
        broken_routes = [route for route in routing.routes if route is not target]
        broken_routes.append(Route(target.net_name, target.width_bits,
                                   (target.path[0], (0, 0))))
        broken = RoutingResult(routes=broken_routes)
        report = verify_routing(fabric, netlist, placement, broken)
        assert not report.passed

    def test_missing_route_reported(self, legal_design):
        fabric, netlist, placement, routing = legal_design
        broken = RoutingResult(routes=routing.routes[:-1])
        report = verify_routing(fabric, netlist, placement, broken)
        assert any("no route" in violation for violation in report.violations)

    def test_channel_oversubscription_reported(self, legal_design):
        fabric, netlist, placement, routing = legal_design
        # Duplicate every routed path many times so some channel exceeds its
        # coarse-track capacity when re-derived by the checker.
        duplicated = list(routing.routes)
        widest = max((route for route in routing.routes if route.hop_count > 0),
                     key=lambda route: route.width_bits)
        for _ in range(64):
            duplicated.append(widest)
        report = verify_routing(fabric, netlist, placement,
                                RoutingResult(routes=duplicated))
        assert any("oversubscribes" in violation for violation in report.violations)
