"""Unit tests of the congestion-aware mesh router."""

import pytest

from repro.core.clusters import ClusterKind, ClusterSpec
from repro.core.exceptions import RoutingError
from repro.core.fabric import Fabric
from repro.core.interconnect import MeshSpec
from repro.core.mapper import GreedyPlacer, Placement
from repro.core.netlist import Netlist
from repro.core.router import MeshRouter


def linear_fabric(cols: int = 4, coarse: int = 2, fine: int = 2) -> Fabric:
    spec = MeshSpec(coarse_tracks_per_channel=coarse, fine_tracks_per_channel=fine)
    fabric = Fabric("line", rows=1, cols=cols, mesh_spec=spec)
    for col in range(cols):
        fabric.place_cluster((0, col), ClusterSpec(ClusterKind.ADD_SHIFT, 16))
    return fabric


def two_node_netlist(width: int = 8) -> Netlist:
    netlist = Netlist("pair")
    netlist.add_node("a", ClusterKind.ADD_SHIFT)
    netlist.add_node("b", ClusterKind.ADD_SHIFT)
    netlist.connect("a", "b", width_bits=width)
    return netlist


class TestBasicRouting:
    def test_routes_along_shortest_path(self):
        fabric = linear_fabric()
        netlist = two_node_netlist()
        placement = Placement("line", "pair", {"a": (0, 0), "b": (0, 3)})
        result = MeshRouter(fabric).route(netlist, placement)
        route = result.route_for("a->b")
        assert route.hop_count == 3
        assert route.path[0] == (0, 0) and route.path[-1] == (0, 3)

    def test_same_site_net_consumes_no_mesh(self):
        fabric = linear_fabric()
        netlist = two_node_netlist()
        placement = Placement("line", "pair", {"a": (0, 1), "b": (0, 1)})
        result = MeshRouter(fabric).route(netlist, placement)
        assert result.total_hops == 0
        assert result.route_for("a->b").hop_count == 0

    def test_statistics_accumulate(self):
        fabric = linear_fabric()
        netlist = two_node_netlist(width=16)
        placement = Placement("line", "pair", {"a": (0, 0), "b": (0, 2)})
        result = MeshRouter(fabric).route(netlist, placement)
        assert result.total_hops == 2
        assert result.total_wire_bits == 32
        assert 0.0 < result.peak_channel_utilisation <= 1.0

    def test_missing_route_lookup_raises(self):
        fabric = linear_fabric()
        netlist = two_node_netlist()
        placement = Placement("line", "pair", {"a": (0, 0), "b": (0, 1)})
        result = MeshRouter(fabric).route(netlist, placement)
        with pytest.raises(RoutingError):
            result.route_for("unknown")


class TestCongestion:
    def test_unroutable_when_channel_capacity_exhausted(self):
        # A single coarse track on a 1-D fabric cannot carry two byte buses
        # between the same pair of positions.
        fabric = linear_fabric(cols=2, coarse=1, fine=0)
        netlist = Netlist("congested")
        for name in ("a", "b", "c", "d"):
            netlist.add_node(name, ClusterKind.ADD_SHIFT)
        netlist.connect("a", "b", width_bits=8)
        netlist.connect("c", "d", width_bits=8)
        placement = Placement("line", "congested",
                              {"a": (0, 0), "b": (0, 1), "c": (0, 0), "d": (0, 1)})
        with pytest.raises(RoutingError):
            MeshRouter(fabric).route(netlist, placement)

    def test_congestion_spreads_routes_on_2d_fabric(self):
        spec = MeshSpec(coarse_tracks_per_channel=1, fine_tracks_per_channel=0)
        fabric = Fabric("grid", rows=2, cols=2, mesh_spec=spec)
        for row in range(2):
            for col in range(2):
                fabric.place_cluster((row, col), ClusterSpec(ClusterKind.ADD_SHIFT, 16))
        netlist = Netlist("spread")
        for name in ("a", "b", "c", "d"):
            netlist.add_node(name, ClusterKind.ADD_SHIFT)
        netlist.connect("a", "b", width_bits=8)
        netlist.connect("c", "d", width_bits=8)
        placement = Placement("grid", "spread",
                              {"a": (0, 0), "b": (0, 1), "c": (1, 0), "d": (1, 1)})
        result = MeshRouter(fabric).route(netlist, placement)
        assert result.total_hops == 2

    def test_full_flow_on_placed_netlist(self):
        fabric = linear_fabric(cols=6)
        netlist = Netlist("flow")
        previous = None
        for i in range(5):
            netlist.add_node(f"n{i}", ClusterKind.ADD_SHIFT)
            if previous is not None:
                netlist.connect(previous, f"n{i}", width_bits=16)
            previous = f"n{i}"
        placement = GreedyPlacer(fabric).place(netlist)
        result = MeshRouter(fabric).route(netlist, placement)
        assert len(result.routes) == 4


def random_grid_case(rng, coarse, fine):
    """A random netlist placed on a random small 2-D fabric."""
    import numpy as np

    rows = int(rng.integers(2, 5))
    cols = int(rng.integers(2, 5))
    spec = MeshSpec(coarse_tracks_per_channel=coarse,
                    fine_tracks_per_channel=fine)
    fabric = Fabric("grid", rows=rows, cols=cols, mesh_spec=spec)
    for row in range(rows):
        for col in range(cols):
            fabric.place_cluster((row, col),
                                 ClusterSpec(ClusterKind.ADD_SHIFT, 16))
    node_count = int(rng.integers(2, rows * cols + 1))
    sites = [(r, c) for r in range(rows) for c in range(cols)]
    chosen = [sites[i] for i in rng.choice(len(sites), node_count,
                                           replace=False)]
    netlist = Netlist("random")
    positions = {}
    for index, site in enumerate(chosen):
        netlist.add_node(f"n{index}", ClusterKind.ADD_SHIFT)
        positions[f"n{index}"] = site
    net_count = int(rng.integers(1, 2 * node_count + 1))
    for index in range(net_count):
        source, sink = rng.choice(node_count, 2, replace=False)
        width = int(rng.choice(np.array([1, 2, 8, 16])))
        netlist.connect(f"n{int(source)}", f"n{int(sink)}", width_bits=width,
                        name=f"net{index}")
    return fabric, netlist, Placement("grid", "random", positions)


class TestCapacityProperty:
    """Property-style: routed channels never exceed their track capacity,
    and congestion surfaces as RoutingError, never as silent overflow."""

    @pytest.mark.parametrize("seed", range(12))
    def test_occupancy_never_exceeds_capacity(self, seed):
        import numpy as np

        rng = np.random.default_rng(7000 + seed)
        for _ in range(5):                       # 60 drawn cases
            coarse = int(rng.integers(1, 4))
            fine = int(rng.integers(0, 4))
            fabric, netlist, placement = random_grid_case(rng, coarse, fine)
            try:
                MeshRouter(fabric).route(netlist, placement)
            except RoutingError:
                continue                          # congested: loud, not silent
            mesh = fabric.mesh
            for row in range(mesh.rows):
                for col in range(mesh.cols):
                    for neighbour in mesh.neighbours((row, col)):
                        channel = mesh.channel_between((row, col), neighbour)
                        assert channel.coarse_used <= channel.coarse_tracks
                        assert channel.fine_used <= channel.fine_tracks
                        assert 0.0 <= channel.utilisation <= 1.0

    def test_congested_placement_raises_not_overflows(self):
        # Ten byte buses over a single-coarse-track channel must raise;
        # the channel must never report more tracks used than it has.
        fabric = linear_fabric(cols=2, coarse=1, fine=0)
        netlist = Netlist("overflow")
        positions = {}
        for index in range(10):
            for suffix in ("s", "t"):
                name = f"n{index}{suffix}"
                netlist.add_node(name, ClusterKind.ADD_SHIFT)
                positions[name] = (0, 0) if suffix == "s" else (0, 1)
            netlist.connect(f"n{index}s", f"n{index}t", width_bits=8,
                            name=f"bus{index}")
        placement = Placement("line", "overflow", positions)
        with pytest.raises(RoutingError):
            MeshRouter(fabric).route(netlist, placement)
        channel = fabric.mesh.channel_between((0, 0), (0, 1))
        assert channel.coarse_used <= channel.coarse_tracks
