"""Unit tests of the dataflow-graph netlist."""

import pytest

from repro.core.clusters import ClusterKind
from repro.core.exceptions import ConfigurationError
from repro.core.netlist import Netlist


def simple_chain() -> Netlist:
    netlist = Netlist("chain")
    netlist.add_node("a", ClusterKind.ADD_SHIFT, role="shift_register")
    netlist.add_node("b", ClusterKind.MEMORY, depth_words=16)
    netlist.add_node("c", ClusterKind.ADD_SHIFT, role="accumulator")
    netlist.connect("a", "b", width_bits=1)
    netlist.connect("b", "c", width_bits=8)
    return netlist


class TestConstruction:
    def test_duplicate_node_rejected(self):
        netlist = Netlist("n")
        netlist.add_node("x", ClusterKind.ADD_SHIFT)
        with pytest.raises(ConfigurationError):
            netlist.add_node("x", ClusterKind.ADD_SHIFT)

    def test_connect_requires_existing_nodes(self):
        netlist = Netlist("n")
        netlist.add_node("x", ClusterKind.ADD_SHIFT)
        with pytest.raises(ConfigurationError):
            netlist.connect("x", "missing")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Netlist("")

    def test_len_contains_iteration(self):
        netlist = simple_chain()
        assert len(netlist) == 3
        assert "a" in netlist
        assert "missing" not in netlist
        assert [node.name for node in netlist] == ["a", "b", "c"]


class TestQueries:
    def test_fanin_fanout(self):
        netlist = simple_chain()
        assert [net.sink for net in netlist.fanout("a")] == ["b"]
        assert [net.source for net in netlist.fanin("c")] == ["b"]

    def test_nodes_of_kind(self):
        netlist = simple_chain()
        assert len(netlist.nodes_of_kind(ClusterKind.ADD_SHIFT)) == 2
        assert len(netlist.nodes_of_kind(ClusterKind.MEMORY)) == 1

    def test_kind_histogram(self):
        histogram = simple_chain().kind_histogram()
        assert histogram[ClusterKind.ADD_SHIFT] == 2
        assert histogram[ClusterKind.MEMORY] == 1

    def test_node_lookup_error(self):
        with pytest.raises(ConfigurationError):
            simple_chain().node("nope")


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        netlist = simple_chain()
        order = [node.name for node in netlist.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_tolerates_feedback_loops(self):
        netlist = Netlist("loop")
        netlist.add_node("acc", ClusterKind.ADD_SHIFT, role="accumulator")
        netlist.add_node("rom", ClusterKind.MEMORY, depth_words=4)
        netlist.connect("rom", "acc")
        netlist.connect("acc", "acc")   # accumulator feedback
        order = [node.name for node in netlist.topological_order()]
        assert sorted(order) == ["acc", "rom"]


class TestClusterUsage:
    def test_roles_map_to_table_rows(self):
        netlist = Netlist("roles")
        netlist.add_node("add", ClusterKind.ADD_SHIFT, role="adder")
        netlist.add_node("sub", ClusterKind.ADD_SHIFT, role="subtracter")
        netlist.add_node("sr", ClusterKind.ADD_SHIFT, role="shift_register")
        netlist.add_node("acc", ClusterKind.ADD_SHIFT, role="accumulator")
        netlist.add_node("rom", ClusterKind.MEMORY, depth_words=16)
        usage = netlist.cluster_usage()
        assert usage.adders == 1
        assert usage.subtracters == 1
        assert usage.shift_registers == 1
        assert usage.accumulators == 1
        assert usage.memory_clusters == 1
        assert usage.total_clusters == 5

    def test_unknown_add_shift_role_counts_as_adder(self):
        netlist = Netlist("unknown_role")
        netlist.add_node("x", ClusterKind.ADD_SHIFT, role="weird")
        assert netlist.cluster_usage().adders == 1

    def test_me_cluster_kinds_counted(self):
        netlist = Netlist("me")
        netlist.add_node("mux", ClusterKind.REGISTER_MUX)
        netlist.add_node("ad", ClusterKind.ABS_DIFF)
        netlist.add_node("acc", ClusterKind.ADD_ACC)
        netlist.add_node("cmp", ClusterKind.COMPARATOR)
        usage = netlist.cluster_usage()
        assert (usage.register_mux, usage.abs_diff, usage.add_acc,
                usage.comparators) == (1, 1, 1, 1)


class TestMerge:
    def test_merge_with_prefix_duplicates_structure(self):
        top = Netlist("top")
        channel = simple_chain()
        top.merge(channel, prefix="ch0_")
        top.merge(channel, prefix="ch1_")
        assert len(top) == 6
        assert "ch0_a" in top and "ch1_c" in top
        assert len(top.nets) == 4

    def test_merge_without_prefix_collides(self):
        top = Netlist("top")
        top.merge(simple_chain())
        with pytest.raises(ConfigurationError):
            top.merge(simple_chain())

    def test_validate_passes_on_well_formed_graph(self):
        simple_chain().validate()
