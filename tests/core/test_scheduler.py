"""Unit tests of the resource-constrained list scheduler."""

import pytest

from repro.arrays.da_array import DAArrayGeometry, build_da_array
from repro.core.clusters import ClusterKind
from repro.core.exceptions import MappingError
from repro.core.netlist import Netlist
from repro.core.scheduler import ListScheduler, fold_factor
from repro.dct import CordicDCT2, SCCDirectDCT


def chain(length: int = 4) -> Netlist:
    netlist = Netlist(f"chain{length}")
    previous = None
    for i in range(length):
        netlist.add_node(f"n{i}", ClusterKind.ADD_SHIFT)
        if previous is not None:
            netlist.connect(previous, f"n{i}")
        previous = f"n{i}"
    return netlist


def parallel_nodes(count: int = 6) -> Netlist:
    netlist = Netlist(f"parallel{count}")
    for i in range(count):
        netlist.add_node(f"p{i}", ClusterKind.ADD_SHIFT)
    return netlist


class TestDependencies:
    def test_chain_is_fully_serialised(self):
        schedule = ListScheduler({ClusterKind.ADD_SHIFT: 8}).schedule(chain(5))
        starts = [schedule.operations[f"n{i}"].start_cycle for i in range(5)]
        assert starts == sorted(starts)
        assert schedule.length_cycles == 5

    def test_producers_finish_before_consumers_start(self):
        netlist = chain(4)
        schedule = ListScheduler({ClusterKind.ADD_SHIFT: 2}).schedule(netlist)
        for net in netlist.nets:
            assert (schedule.operations[net.source].end_cycle
                    <= schedule.operations[net.sink].start_cycle)


class TestResourceConstraints:
    def test_unconstrained_parallel_nodes_start_together(self):
        schedule = ListScheduler({ClusterKind.ADD_SHIFT: 6}).schedule(parallel_nodes(6))
        assert schedule.length_cycles == 1
        assert schedule.peak_concurrency(ClusterKind.ADD_SHIFT) == 6

    def test_scarce_clusters_force_time_multiplexing(self):
        schedule = ListScheduler({ClusterKind.ADD_SHIFT: 2}).schedule(parallel_nodes(6))
        assert schedule.length_cycles == 3
        assert schedule.peak_concurrency(ClusterKind.ADD_SHIFT) == 2

    def test_capacity_of_zero_rejected(self):
        with pytest.raises(MappingError):
            ListScheduler({ClusterKind.MEMORY: 4}).schedule(parallel_nodes(2))

    def test_latency_override_lengthens_schedule(self):
        fast = ListScheduler({ClusterKind.ADD_SHIFT: 2}).schedule(parallel_nodes(4))
        slow = ListScheduler({ClusterKind.ADD_SHIFT: 2},
                             latency={ClusterKind.ADD_SHIFT: 3}).schedule(parallel_nodes(4))
        assert slow.length_cycles == 3 * fast.length_cycles

    def test_physical_instances_stay_within_capacity(self):
        schedule = ListScheduler({ClusterKind.ADD_SHIFT: 3}).schedule(parallel_nodes(9))
        assert max(op.physical_instance for op in schedule.operations.values()) <= 2


class TestFabricIntegration:
    def test_for_fabric_uses_cluster_capacities(self):
        fabric = build_da_array()
        scheduler = ListScheduler.for_fabric(fabric)
        schedule = scheduler.schedule(SCCDirectDCT().build_netlist())
        assert schedule.length_cycles >= 1
        assert schedule.utilisation(fabric.capacity()) > 0.0

    def test_small_array_needs_a_longer_schedule(self):
        netlist = CordicDCT2().build_netlist()
        large = ListScheduler.for_fabric(build_da_array()).schedule(netlist)
        # 2x2 Add-Shift sites force the 32 Add-Shift operations to fold 8x,
        # which exceeds the dependency-limited schedule length.
        tiny_fabric = build_da_array(DAArrayGeometry(rows=2, add_shift_columns=2,
                                                     memory_columns=1))
        small = ListScheduler.for_fabric(tiny_fabric).schedule(netlist)
        assert small.length_cycles > large.length_cycles
        assert small.peak_concurrency(ClusterKind.ADD_SHIFT) <= 4

    def test_fold_factor_reflects_oversubscription(self):
        netlist = parallel_nodes(8)
        assert fold_factor(netlist, {ClusterKind.ADD_SHIFT: 8}) == 1.0
        assert fold_factor(netlist, {ClusterKind.ADD_SHIFT: 2}) == 4.0
        with pytest.raises(MappingError):
            fold_factor(netlist, {ClusterKind.MEMORY: 1})

    def test_cordic2_time_sharing_matches_fold_factor(self):
        # Constrain the Add-Shift clusters hard enough (32 operations on 4
        # clusters = 8-way folding) that the schedule must stretch well
        # beyond its dependency-limited length.
        netlist = CordicDCT2().build_netlist()
        generous = ListScheduler({ClusterKind.ADD_SHIFT: 64,
                                  ClusterKind.MEMORY: 16}).schedule(netlist)
        constrained = ListScheduler({ClusterKind.ADD_SHIFT: 4,
                                     ClusterKind.MEMORY: 2}).schedule(netlist)
        assert constrained.length_cycles > generous.length_cycles
        assert constrained.length_cycles >= fold_factor(
            netlist, {ClusterKind.ADD_SHIFT: 4, ClusterKind.MEMORY: 2})
