"""The supported API surface stays clean under warnings-as-errors.

PR 1 left deprecation shims over the old mapping entry points; internal
callers (examples, benchmarks, flow passes, the engine) must reach the
flow through the new API only.  These tests run representative end-to-end
paths with ``DeprecationWarning`` escalated to an error, so any internal
route through a shim fails loudly.
"""

import warnings

import numpy as np
import pytest

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.dct import MixedRomDCT, dct_implementations
from repro.flow import FlowCache, compile, compile_many
from repro.me import SystolicArray
from repro.video import EncoderConfiguration, VideoEncoder, panning_sequence


@pytest.fixture(autouse=True)
def deprecations_are_errors():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestNewApiIsWarningFree:
    def test_compile_and_compile_many(self):
        cache = FlowCache()
        result = compile(MixedRomDCT(), cache=cache)
        assert result.bitstream is not None
        results = compile_many(dct_implementations(), cache=cache)
        assert len(results) == 5

    def test_soc_compile_and_load(self):
        soc = ReconfigurableSoC()
        soc.attach_array(build_da_array())
        soc.attach_array(build_me_array())
        soc.compile_and_load(MixedRomDCT())
        soc.compile_and_load(SystolicArray(module_count=2, pes_per_module=8))
        assert soc.reconfiguration_count() == 2

    def test_batched_encode_path(self):
        sequence = panning_sequence(height=48, width=48, pan=(1, 1), seed=9)
        frames = [sequence.frame(index) for index in range(2)]
        encoder = VideoEncoder(EncoderConfiguration(search_range=3))
        statistics = encoder.encode_sequence(frames)
        assert statistics[-1].psnr_db > 0
        assert np.all(encoder.reference_frame >= 0)
