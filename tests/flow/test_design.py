"""Tests of the Design protocol, adapters and fabric resolution."""

import pytest

from repro.arrays import build_da_array, build_me_array
from repro.core.clusters import ClusterKind
from repro.core.exceptions import ConfigurationError
from repro.core.netlist import Netlist
from repro.dct import dct_implementations
from repro.filters import DistributedArithmeticFIR, symmetric_lowpass
from repro.flow import (
    AdaptedDesign,
    Design,
    NetlistDesign,
    as_design,
    default_fabric,
    register_fabric,
    resolve_fabric,
)
from repro.flow.design import _FABRIC_BUILDERS
from repro.me import ProcessingElement, Systolic1DArray, SystolicArray


def probe_netlist() -> Netlist:
    netlist = Netlist("probe")
    netlist.add_node("a", ClusterKind.ADD_SHIFT, role="adder")
    return netlist


class TestDesignProtocol:
    def test_every_dct_implementation_satisfies_the_protocol(self):
        for implementation in dct_implementations(include_plain_da=True):
            assert isinstance(implementation, Design)
            assert implementation.target_array == "da_array"

    def test_me_engines_satisfy_the_protocol(self):
        for engine in (SystolicArray(), Systolic1DArray(),
                       ProcessingElement()):
            assert isinstance(engine, Design)
            assert engine.target_array == "me_array"

    def test_filter_kernels_satisfy_the_protocol(self):
        fir = DistributedArithmeticFIR(symmetric_lowpass(8, cutoff=0.2))
        assert isinstance(fir, Design)
        assert fir.target_array == "da_array"


class TestAdapters:
    def test_netlists_are_wrapped(self):
        design = as_design(probe_netlist(), target_array="da_array")
        assert isinstance(design, NetlistDesign)
        assert design.name == "probe"
        assert design.target_array == "da_array"
        assert design.build_netlist().name == "probe"

    def test_bare_netlist_without_target_is_rejected(self):
        with pytest.raises(ConfigurationError, match="target_array"):
            as_design(probe_netlist())

    def test_object_without_declared_target_is_rejected(self):
        class Foreign:
            def build_netlist(self):
                return probe_netlist()

        with pytest.raises(ConfigurationError, match="target_array"):
            as_design(Foreign())

    def test_target_array_override(self):
        design = as_design(probe_netlist(), target_array="me_array")
        assert design.target_array == "me_array"

    def test_ready_designs_pass_through_unchanged(self):
        systolic = SystolicArray()
        assert as_design(systolic) is systolic

    def test_matching_explicit_target_keeps_the_design_surface(self):
        # Passing the target the design already declares must not strip
        # capabilities like build_fabric by wrapping in AdaptedDesign.
        systolic = SystolicArray(module_count=4, pes_per_module=20)
        design = as_design(systolic, target_array="me_array")
        assert design is systolic
        assert hasattr(design, "build_fabric")

    def test_mismatched_explicit_target_overrides_via_adapter(self):
        design = as_design(SystolicArray(), target_array="da_array")
        assert isinstance(design, AdaptedDesign)
        assert design.target_array == "da_array"

    def test_third_party_objects_are_adapted(self):
        class Foreign:
            def build_netlist(self):
                return probe_netlist()

        design = as_design(Foreign(), target_array="da_array")
        assert isinstance(design, AdaptedDesign)
        assert design.build_netlist().name == "probe"

    def test_objects_without_build_netlist_are_rejected(self):
        with pytest.raises(ConfigurationError):
            as_design(object(), target_array="da_array")


class TestFabricResolution:
    def test_builtin_arrays_are_registered(self):
        assert default_fabric("da_array").name == "da_array"
        assert default_fabric("me_array").name == "me_array"

    def test_unknown_array_name_raises(self):
        with pytest.raises(ConfigurationError, match="no fabric registered"):
            default_fabric("tpu_array")

    def test_custom_fabrics_can_be_registered(self):
        register_fabric("custom_array", build_da_array)
        try:
            assert default_fabric("custom_array").name == "da_array"
        finally:
            _FABRIC_BUILDERS.pop("custom_array", None)

    def test_explicit_fabric_wins(self):
        fabric = build_me_array()
        assert resolve_fabric(as_design(probe_netlist(), "da_array"), fabric) is fabric

    def test_factory_fabric_is_called(self):
        resolved = resolve_fabric(as_design(probe_netlist(), "da_array"), build_me_array)
        assert resolved.name == "me_array"

    def test_design_build_fabric_beats_the_default(self):
        big = SystolicArray(module_count=8, pes_per_module=16)
        fabric = resolve_fabric(big)
        # Sized for 8 modules: wider than the default 4-module array.
        assert fabric.cols > build_me_array().cols

    def test_non_fabric_argument_is_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_fabric(as_design(probe_netlist(), "da_array"), fabric="da_array")
