"""Tests of the content-addressed result cache and batch compilation."""

import pytest

from repro.arrays import build_da_array
from repro.arrays.da_array import DAArrayGeometry
from repro.core.clusters import ClusterKind
from repro.core.exceptions import ConfigurationError
from repro.core.netlist import Netlist
from repro.dct import MixedRomDCT, dct_implementations
from repro.flow import (
    Flow,
    FlowCache,
    NetlistDesign,
    compile,
    compile_many,
    fabric_fingerprint,
    netlist_fingerprint,
)


def small_netlist(extra_node: bool = False) -> Netlist:
    netlist = Netlist("cache_probe")
    netlist.add_node("a", ClusterKind.ADD_SHIFT, role="adder")
    netlist.add_node("b", ClusterKind.ADD_SHIFT, role="accumulator")
    netlist.connect("a", "b")
    if extra_node:
        netlist.add_node("c", ClusterKind.ADD_SHIFT, role="shift_register")
        netlist.connect("b", "c")
    return netlist


class TestFingerprints:
    def test_identical_netlists_share_a_fingerprint(self):
        assert netlist_fingerprint(small_netlist()) == \
            netlist_fingerprint(small_netlist())

    def test_netlist_mutation_changes_the_fingerprint(self):
        assert netlist_fingerprint(small_netlist()) != \
            netlist_fingerprint(small_netlist(extra_node=True))

    def test_node_role_is_part_of_the_content_hash(self):
        one = Netlist("n")
        one.add_node("x", ClusterKind.ADD_SHIFT, role="adder")
        other = Netlist("n")
        other.add_node("x", ClusterKind.ADD_SHIFT, role="subtracter")
        assert netlist_fingerprint(one) != netlist_fingerprint(other)

    def test_fabric_geometry_is_part_of_the_content_hash(self):
        default = build_da_array()
        wider = build_da_array(DAArrayGeometry(rows=12))
        assert fabric_fingerprint(default) == fabric_fingerprint(build_da_array())
        assert fabric_fingerprint(default) != fabric_fingerprint(wider)


class TestFlowCache:
    def test_second_identical_compile_is_a_hit(self):
        cache = FlowCache()
        first = compile(MixedRomDCT(), cache=cache)
        second = compile(MixedRomDCT(), cache=cache)
        assert not first.cache_hit
        assert second.cache_hit
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "entries": 1}
        assert second.table_row() == first.table_row()
        assert second.placement is first.placement

    def test_netlist_mutation_misses(self):
        cache = FlowCache()
        fabric = build_da_array
        compile(NetlistDesign(small_netlist(), "da_array"),
                fabric=fabric, cache=cache)
        mutated = compile(NetlistDesign(small_netlist(extra_node=True),
                                        "da_array"),
                          fabric=fabric, cache=cache)
        assert not mutated.cache_hit
        assert cache.misses == 2

    def test_fabric_geometry_change_misses(self):
        cache = FlowCache()
        design = MixedRomDCT()
        compile(design, cache=cache)
        other = compile(design,
                        fabric=build_da_array(DAArrayGeometry(rows=12)),
                        cache=cache)
        assert not other.cache_hit

    def test_pass_configuration_change_misses(self):
        cache = FlowCache()
        design = MixedRomDCT()
        compile(design, cache=cache)
        annealed = compile(design, placer="annealing", seed=1, cache=cache)
        assert not annealed.cache_hit
        reannealed = compile(design, placer="annealing", seed=1, cache=cache)
        assert reannealed.cache_hit
        differently_seeded = compile(design, placer="annealing", seed=2,
                                     cache=cache)
        assert not differently_seeded.cache_hit

    def test_lru_eviction_respects_max_entries(self):
        cache = FlowCache(max_entries=2)
        designs = dct_implementations()[:3]
        for design in designs:
            compile(design, cache=cache)
        assert len(cache) == 2
        # The oldest entry was evicted, so it misses again.
        evicted = compile(designs[0], cache=cache)
        assert not evicted.cache_hit

    def test_get_refreshes_recency(self):
        # Touching an entry must protect it from eviction: with room for
        # two, hitting the oldest before inserting a third should evict
        # the *other* entry.
        cache = FlowCache(max_entries=2)
        designs = dct_implementations()[:3]
        compile(designs[0], cache=cache)
        compile(designs[1], cache=cache)
        refreshed = compile(designs[0], cache=cache)     # refresh oldest
        assert refreshed.cache_hit
        compile(designs[2], cache=cache)                 # evicts designs[1]
        assert compile(designs[0], cache=cache).cache_hit
        assert not compile(designs[1], cache=cache).cache_hit

    def test_default_shared_cache_is_bounded(self):
        from repro.flow.cache import DEFAULT_CACHE
        assert DEFAULT_CACHE.max_entries == 256

    def test_put_evicts_down_to_bound_under_batch_compiles(self):
        cache = FlowCache(max_entries=2)
        compile_many(dct_implementations(), cache=cache, max_workers=4)
        assert len(cache) == 2
        # Every compile was a miss and a put; all but the two survivors
        # were evicted, and stats() exposes the count.
        stats = cache.stats()
        assert stats["evictions"] == stats["misses"] - 2

    def test_clear_resets_counters(self):
        cache = FlowCache()
        compile(MixedRomDCT(), cache=cache)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0,
                                 "entries": 0}

    def test_zero_capacity_cache_is_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowCache(max_entries=0)


class TestCompileMany:
    def test_results_preserve_input_order(self):
        designs = dct_implementations()
        results = compile_many(designs, cache=None)
        assert [r.design_name for r in results] == [d.name for d in designs]

    def test_deterministic_with_fixed_seed(self):
        designs = dct_implementations()
        flow = Flow.default(placer="annealing", seed=11)
        first = compile_many(designs, flow=flow, cache=None, max_workers=4)
        second = compile_many(designs, flow=flow, cache=None, max_workers=2)
        serial = compile_many(designs, flow=flow, cache=None, max_workers=1)
        for a, b, c in zip(first, second, serial):
            assert a.placement.assignment == b.placement.assignment
            assert a.placement.assignment == c.placement.assignment
            assert a.metrics.wirelength == b.metrics.wirelength == \
                c.metrics.wirelength

    def test_shared_cache_across_batches(self):
        cache = FlowCache()
        compile_many(dct_implementations(), cache=cache)
        again = compile_many(dct_implementations(), cache=cache)
        assert all(result.cache_hit for result in again)
        assert cache.hits == 5

    def test_empty_batch_returns_empty_list(self):
        assert compile_many([], cache=None) == []

    def test_shared_fabric_instance_is_rejected(self):
        with pytest.raises(ConfigurationError, match="factory"):
            compile_many(dct_implementations(), fabric=build_da_array(),
                         cache=None)
