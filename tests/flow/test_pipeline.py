"""Tests of the unified pass pipeline: ordering, stages, results."""

import pytest

from repro.arrays import build_da_array, build_me_array
from repro.core.clusters import ClusterKind
from repro.core.exceptions import CapacityError, ConfigurationError, MappingError
from repro.core.netlist import Netlist
from repro.dct import MixedRomDCT, dct_implementations
from repro.dct.mapping import PAPER_TABLE1
from repro.flow import (
    AnnealingPlacePass,
    Flow,
    GenerateBitstreamPass,
    GreedyPlacePass,
    MetricsPass,
    NetlistDesign,
    Pass,
    RoutePass,
    SchedulePass,
    VerifyPass,
    compile,
    compile_many,
)
from repro.me import ProcessingElement, Systolic1DArray, SystolicArray


class TestPassOrdering:
    def test_default_flow_runs_stages_in_paper_order(self):
        flow = Flow.default()
        assert [p.name for p in flow.passes] == [
            "schedule", "place.greedy", "route", "bitstream", "verify",
            "metrics"]

    def test_stage_timings_follow_pass_order(self):
        result = Flow.default().compile(MixedRomDCT())
        assert list(result.stage_timings) == [
            "schedule", "place.greedy", "route", "bitstream", "verify",
            "metrics"]
        assert all(seconds >= 0 for seconds in result.stage_timings.values())

    def test_route_without_placement_is_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="requires"):
            Flow([SchedulePass(), RoutePass()])

    def test_bitstream_without_routing_is_rejected(self):
        with pytest.raises(ConfigurationError, match="requires"):
            Flow([GreedyPlacePass(), GenerateBitstreamPass()])

    def test_reordered_default_pipeline_is_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow([RoutePass(), GreedyPlacePass()])

    def test_empty_flow_is_rejected(self):
        with pytest.raises(ConfigurationError):
            Flow([])

    def test_verify_before_route_is_rejected(self):
        # verify can run without routing, but not when routing is produced
        # later in the same flow — that would silently skip routing DRC.
        with pytest.raises(ConfigurationError, match="later passes"):
            Flow([GreedyPlacePass(), VerifyPass(), RoutePass()])

    def test_metrics_before_route_is_rejected(self):
        with pytest.raises(ConfigurationError, match="later passes"):
            Flow([GreedyPlacePass(), MetricsPass(), RoutePass()])

    def test_verify_without_routing_anywhere_is_allowed(self):
        flow = Flow([GreedyPlacePass(), VerifyPass(), MetricsPass()])
        result = flow.compile(MixedRomDCT(), fabric=build_da_array())
        assert result.verification.passed
        assert result.routing is None

    def test_custom_pass_participates_in_validation(self):
        class NeedsEverything(Pass):
            name = "late"
            requires = ("placement", "routing", "bitstream")

            def run(self, context):
                pass

        Flow([GreedyPlacePass(), RoutePass(), GenerateBitstreamPass(),
              NeedsEverything()])
        with pytest.raises(ConfigurationError):
            Flow([NeedsEverything()])


class TestPlacementAsPassChoice:
    def test_greedy_and_annealing_are_swappable_passes(self):
        transform = MixedRomDCT()
        greedy = Flow.default(placer="greedy").compile(transform)
        annealed = Flow.default(placer="annealing", seed=3).compile(transform)
        assert greedy.placement is not None and annealed.placement is not None
        assert "place.greedy" in greedy.stage_timings
        assert "place.annealing" in annealed.stage_timings

    def test_pass_instance_can_be_injected_directly(self):
        flow = Flow.default(placer=AnnealingPlacePass(seed=9,
                                                      moves_per_temperature=8))
        result = flow.compile(MixedRomDCT())
        assert result.verification.passed

    def test_unknown_placer_name_raises(self):
        with pytest.raises(ConfigurationError):
            Flow.default(placer="quantum")


class TestCompileResults:
    def test_all_table1_designs_compile_through_one_entry_point(self):
        results = compile_many(dct_implementations())
        assert [r.design_name for r in results] == [
            "mixed_rom", "cordic_1", "cordic_2", "scc_even_odd", "scc_direct"]
        for result in results:
            assert result.table_row() == PAPER_TABLE1[result.design_name]
            assert result.fabric_name == "da_array"
            assert result.verification.passed
            assert result.bitstream.total_bits() > 0
            assert result.metrics.routed_hops == result.routing.total_hops

    def test_me_engines_compile_through_the_same_entry_point(self):
        systolic = compile(SystolicArray())
        assert systolic.fabric_name == "me_array"
        assert systolic.usage.total_clusters == 193
        assert systolic.verification.passed

        pe = compile(ProcessingElement())
        assert pe.usage.total_clusters == 3

        one_dimensional = compile(Systolic1DArray())
        assert one_dimensional.usage.register_mux == 16

    def test_bare_netlists_are_adapted(self):
        netlist = Netlist("adhoc")
        netlist.add_node("a", ClusterKind.ADD_SHIFT, role="adder")
        netlist.add_node("b", ClusterKind.ADD_SHIFT, role="accumulator")
        netlist.connect("a", "b")
        result = compile(NetlistDesign(netlist, "da_array"))
        assert result.design_name == "adhoc"
        assert result.usage.adders == 1

    def test_estimate_flow_skips_physical_design(self):
        result = Flow.estimate().compile(SystolicArray())
        assert result.placement is None
        assert result.routing is None
        assert result.bitstream is None
        assert result.usage.total_clusters == 193
        assert result.metrics.logic_area_elements > 0

    def test_design_sized_fabric_is_used_for_large_engines(self):
        big = SystolicArray(module_count=4, pes_per_module=20)
        result = compile(big)
        assert result.usage.total_clusters == 4 * 20 * 3 + 1
        assert result.verification.passed

    def test_oversubscribed_fabric_raises_capacity_error(self):
        from repro.arrays.me_array import MEArrayGeometry
        fabric = build_me_array(MEArrayGeometry(rows=2, mux_columns=1,
                                                abs_diff_columns=1,
                                                add_acc_columns=1,
                                                comparator_columns=1))
        with pytest.raises(CapacityError):
            compile(SystolicArray(), fabric=fabric, cache=None)

    def test_strict_verify_raises_mapping_error_on_violations(self):
        class Sabotage(Pass):
            name = "sabotage"
            requires = ("placement",)

            def run(self, context):
                node = context.netlist.nodes[0].name
                other = context.netlist.nodes[1].name
                context.placement.assignment[node] = \
                    context.placement.assignment[other]

        flow = Flow([GreedyPlacePass(), Sabotage(), VerifyPass(strict=True)])
        with pytest.raises(MappingError):
            flow.compile(MixedRomDCT(), fabric=build_da_array())

    def test_lenient_verify_records_report_instead(self):
        flow = Flow([GreedyPlacePass(), VerifyPass(strict=False),
                     MetricsPass()])
        result = flow.compile(MixedRomDCT(), fabric=build_da_array())
        assert result.verification.passed

    def test_summary_carries_headline_numbers(self):
        result = compile(MixedRomDCT())
        summary = result.summary()
        assert summary["design"] == "mixed_rom"
        assert summary["total_clusters"] == 32
        assert summary["bitstream_bits"] == result.bitstream.total_bits()
        assert summary["flow_seconds"] >= 0
