"""Regression tests: the deprecated mapping entry points still work, warn,
and return Table-1-identical results."""

import pytest

from repro.arrays import ReconfigurableSoC, build_da_array, build_me_array
from repro.dct import MixedRomDCT
from repro.dct.mapping import (
    PAPER_TABLE1,
    TABLE1_ORDER,
    generate_table1,
    map_implementation,
)
from repro.me.mapping import map_me_design, map_pe, map_systolic_array
from repro.me.pe import build_pe_netlist


class TestDCTShims:
    def test_generate_table1_warns_and_matches_paper(self):
        with pytest.warns(DeprecationWarning, match="compile_many"):
            results = generate_table1()
        for name in TABLE1_ORDER:
            assert results[name].table_row() == PAPER_TABLE1[name], name

    def test_map_implementation_warns_and_preserves_shape(self):
        with pytest.warns(DeprecationWarning, match="repro.flow.compile"):
            mapped = map_implementation(MixedRomDCT())
        assert mapped.name == "mixed_rom"
        assert mapped.figure == "Fig. 5"
        assert mapped.usage.total_clusters == 32
        assert mapped.placement is not None
        assert mapped.routing is not None
        assert mapped.metrics.routed_hops == mapped.routing.total_hops
        assert mapped.cycles_per_transform > 0

    def test_map_implementation_without_place_and_route(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_implementation(MixedRomDCT(),
                                        run_place_and_route=False)
        assert mapped.placement is None
        assert mapped.usage.total_clusters == 32


class TestMEShims:
    def test_map_pe_warns_and_maps(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_pe()
        assert mapped.usage.total_clusters == 3

    def test_map_systolic_array_warns_and_maps(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_systolic_array()
        assert mapped.usage.total_clusters == 193
        assert len(mapped.placement) == 193

    def test_map_me_design_warns(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_me_design(build_pe_netlist())
        assert mapped.name == "me_pe"


class TestSoCShims:
    @pytest.fixture
    def soc(self) -> ReconfigurableSoC:
        soc = ReconfigurableSoC()
        soc.attach_array(build_da_array())
        soc.attach_array(build_me_array())
        return soc

    def test_map_kernel_warns_and_returns_mapped_kernel(self, soc):
        with pytest.warns(DeprecationWarning, match="compile"):
            kernel = soc.map_kernel(MixedRomDCT().build_netlist(), "da_array")
        assert kernel.array_name == "da_array"
        assert kernel.bitstream.total_bits() > 0

    def test_map_and_load_warns_and_records_event(self, soc):
        with pytest.warns(DeprecationWarning):
            kernel = soc.map_and_load(MixedRomDCT().build_netlist(),
                                      "da_array")
        assert soc.loaded_kernel("da_array") is kernel
        assert soc.reconfiguration_count("da_array") == 1

    def test_shim_and_flow_paths_agree_bit_for_bit(self, soc):
        with pytest.warns(DeprecationWarning):
            kernel = soc.map_kernel(MixedRomDCT().build_netlist(), "da_array")
        result = soc.compile(MixedRomDCT())
        assert kernel.bitstream.total_bits() == result.bitstream.total_bits()
        assert kernel.placement.assignment == result.placement.assignment

    def test_flow_native_compile_and_load_does_not_warn(self, soc):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = soc.compile_and_load(MixedRomDCT())
        assert soc.loaded_kernel("da_array") is result
        assert soc.reconfiguration_count("da_array") == 1
