"""Traffic matrices: validation, conservation and workload extraction."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import SATURATION_UTILISATION, simulate
from repro.noc.topology import Mesh2D
from repro.noc.traffic import (
    ADVERSARIAL_PATTERNS,
    FLIT_BITS,
    PIXEL_BITS,
    SEARCH_SWITCH_BITS,
    TrafficMatrix,
    adversarial_traffic,
    burst_traffic,
    gop_worker_agents,
    hotspot_traffic,
    shuffle_traffic,
    tile_grid_for,
    tornado_traffic,
    traffic_from_gop_shards,
    traffic_from_reconfiguration,
    traffic_from_routing,
    traffic_from_video,
    transpose_traffic,
    uniform_traffic,
)


class TestTrafficMatrix:
    def test_totals_and_flows(self):
        matrix = TrafficMatrix(("a", "b"), np.array([[0, 3], [1, 0]]))
        assert matrix.total_flits == 4
        assert matrix.flow_count == 2
        assert matrix.flows() == [(0, 1, 3), (1, 0, 1)]

    def test_diagonal_traffic_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(("a", "b"), np.array([[1, 0], [0, 0]]))

    def test_negative_flits_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(("a", "b"), np.array([[0, -1], [0, 0]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(("a", "b", "c"), np.zeros((2, 2), dtype=np.int64))

    def test_scaling_preserves_flow_structure(self):
        matrix = TrafficMatrix(("a", "b", "c"),
                               np.array([[0, 1000, 1], [0, 0, 500], [0, 0, 0]]))
        scaled = matrix.scaled_to(10)
        assert scaled.flits.max() == 10
        assert scaled.flow_count == matrix.flow_count   # small flows survive
        assert scaled.flits[0, 2] >= 1

    def test_scaling_is_identity_when_under_cap(self):
        matrix = uniform_traffic(4, 3)
        assert matrix.scaled_to(100) is matrix

    def test_scaling_never_exceeds_the_cap(self):
        # Float ceil(187 * 6/187) lands on 7; integer division must not.
        matrix = TrafficMatrix(("a", "b"), np.array([[0, 187], [0, 0]]))
        for cap in (6, 13, 64):
            assert matrix.scaled_to(cap).flits.max() == cap

    def test_scaled_peak_scales_up_as_well_as_down(self):
        matrix = TrafficMatrix(("a", "b", "c"),
                               np.array([[0, 8, 1], [0, 0, 4], [0, 0, 0]]))
        up = matrix.scaled_peak(32)
        assert up.flits.max() == 32
        assert up.flits[1, 2] == 16                    # ratios preserved
        assert up.flits[0, 2] == 4
        down = matrix.scaled_peak(2)
        assert down.flits.max() == 2
        assert down.flow_count == matrix.flow_count    # small flows survive

    def test_scaled_peak_is_identity_at_the_natural_peak(self):
        matrix = uniform_traffic(4, 3)
        assert matrix.scaled_peak(3) is matrix
        empty = TrafficMatrix(("a", "b"), np.zeros((2, 2), dtype=np.int64))
        assert empty.scaled_peak(10) is empty          # nothing to scale

    def test_scaled_peak_lands_exactly_on_the_level(self):
        matrix = TrafficMatrix(("a", "b"), np.array([[0, 187], [0, 0]]))
        for level in (6, 13, 187, 500):
            assert matrix.scaled_peak(level).flits.max() == level

    def test_scaled_peak_preserves_the_duty_cycle(self):
        bursty = uniform_traffic(4, 2).with_burst(2, 6)
        assert bursty.scaled_peak(16).burst == (2, 6)

    def test_scaled_peak_rejects_nonpositive_levels(self):
        with pytest.raises(ConfigurationError):
            uniform_traffic(4, 2).scaled_peak(0)
        with pytest.raises(ConfigurationError):
            uniform_traffic(4, 2).scaled_peak(-3)

    def test_merge_requires_same_agents(self):
        with pytest.raises(ConfigurationError):
            uniform_traffic(3).merged_with(uniform_traffic(4))

    def test_merge_adds_flits(self):
        merged = uniform_traffic(3, 2).merged_with(uniform_traffic(3, 5))
        assert merged.total_flits == uniform_traffic(3, 7).total_flits


class TestBurstTraffic:
    def test_with_burst_keeps_flows_and_names_the_variant(self):
        base = transpose_traffic(6, 5)
        bursty = base.with_burst(4, 12)
        assert bursty.burst == (4, 12)
        assert bursty.name == "transpose_burst4_12"
        assert bursty.flows() == base.flows()

    def test_invalid_duty_cycles_rejected(self):
        base = uniform_traffic(4, 2)
        with pytest.raises(ConfigurationError):
            base.with_burst(0, 4)
        with pytest.raises(ConfigurationError):
            base.with_burst(2, -1)

    def test_scaling_preserves_the_duty_cycle(self):
        heavy = TrafficMatrix(("a", "b"), np.array([[0, 500], [0, 0]]),
                              burst=(2, 6))
        assert heavy.scaled_to(10).burst == (2, 6)

    def test_renamed_preserves_the_duty_cycle(self):
        bursty = uniform_traffic(4, 2).with_burst(2, 6)
        assert bursty.renamed("other").burst == (2, 6)
        assert bursty.renamed(bursty.name) is bursty

    def test_merge_requires_matching_duty_cycles(self):
        plain = uniform_traffic(4, 2)
        bursty = plain.with_burst(2, 6)
        with pytest.raises(ConfigurationError):
            plain.merged_with(bursty)
        merged = bursty.merged_with(uniform_traffic(4, 3).with_burst(2, 6))
        assert merged.burst == (2, 6)


class TestAdversarialDispatch:
    def test_every_pattern_is_constructible(self):
        for pattern in ADVERSARIAL_PATTERNS:
            traffic = adversarial_traffic(pattern, 8, flits_per_flow=3)
            assert traffic.name == pattern
            assert traffic.total_flits > 0

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            adversarial_traffic("zigzag", 8)

    def test_hotspot_centres_on_the_corner_agent(self):
        traffic = adversarial_traffic("hotspot", 9, flits_per_flow=4)
        hot = traffic.index_of(traffic.agents[0])
        assert traffic.flits[:, hot].sum() > 0
        # every other agent sends to the hotspot
        assert int((traffic.flits[:, hot] > 0).sum()) == 8

    def test_burst_traffic_combines_pattern_and_duty_cycle(self):
        traffic = burst_traffic("tornado", 8, flits_per_flow=4,
                                burst_on=2, burst_off=6)
        assert traffic.burst == (2, 6)
        assert traffic.name == "tornado_burst2_6"
        assert traffic.flows() == tornado_traffic(8, 4).flows()


class TestConservation:
    """Flits injected equal flits delivered, end to end through the sim."""

    @pytest.mark.parametrize("pattern", [
        uniform_traffic(6, 3), hotspot_traffic(6, 2, 4),
        transpose_traffic(6, 5), tornado_traffic(6, 4),
        shuffle_traffic(6, 4)])
    def test_injected_equals_delivered(self, pattern):
        result = simulate(Mesh2D(2, 3), pattern, model="wormhole")
        assert result.delivered_flits == result.total_flits
        assert result.total_flits == pattern.total_flits
        # Everything arrived, so saturation can only come from the
        # utilisation knee — the busiest link running nearly every cycle.
        assert result.saturated == (result.peak_link_utilisation
                                    > SATURATION_UTILISATION)
        assert result.censored_flow_count == 0

    def test_power_of_two_shuffle_conserves_flits(self):
        pattern = shuffle_traffic(8, 3)
        result = simulate(Mesh2D(2, 4), pattern, model="wormhole")
        assert result.delivered_flits == pattern.total_flits

    def test_link_loads_account_for_every_crossing(self):
        traffic = uniform_traffic(4, 2)
        result = simulate(Mesh2D(2, 2), traffic, model="wormhole")
        # Every flit crosses hop_distance links exactly once.
        topology = Mesh2D(2, 2)
        expected = sum(count * topology.hop_distance(a, b)
                       for a, b, count in traffic.flows())
        assert int(result.link_loads.sum()) == expected


class TestRoutingExtraction:
    def compiled_routing(self):
        from repro.dct import MixedRomDCT
        from repro.flow import compile as flow_compile

        return flow_compile(MixedRomDCT())

    def test_tile_crossings_become_flows(self):
        result = self.compiled_routing()
        traffic = traffic_from_routing(result.routing, result.fabric.rows,
                                       result.fabric.cols, tiles=(2, 2))
        assert traffic.agents == tile_grid_for((2, 2))
        assert traffic.total_flits > 0
        # Only adjacent-tile crossings are generated by path walking.
        for source, sink, _ in traffic.flows():
            row_a, col_a = divmod(source, 2)
            row_b, col_b = divmod(sink, 2)
            assert abs(row_a - row_b) + abs(col_a - col_b) == 1

    def test_finer_tiling_sees_more_traffic(self):
        result = self.compiled_routing()
        coarse = traffic_from_routing(result.routing, result.fabric.rows,
                                      result.fabric.cols, tiles=(2, 2))
        fine = traffic_from_routing(result.routing, result.fabric.rows,
                                    result.fabric.cols, tiles=(4, 4))
        assert fine.total_flits >= coarse.total_flits

    def test_single_tile_generates_no_traffic(self):
        result = self.compiled_routing()
        traffic = traffic_from_routing(result.routing, result.fabric.rows,
                                       result.fabric.cols, tiles=(1, 1))
        assert traffic.total_flits == 0


class TestVideoExtraction:
    def statistics(self, count=4):
        from repro.video import EncoderConfiguration, VideoEncoder
        from repro.video.frames import SyntheticSequence

        sequence = SyntheticSequence(height=32, width=32,
                                     global_motion=(1, 1), seed=7)
        encoder = VideoEncoder(EncoderConfiguration(search_range=2))
        return encoder.encode_sequence(
            [sequence.frame(index) for index in range(count)])

    def test_every_frame_moves_through_the_pipeline(self):
        statistics = self.statistics()
        traffic = traffic_from_video(statistics, (32, 32))
        frame_flits = (32 * 32 * PIXEL_BITS) // FLIT_BITS
        io_to_memory = traffic.flits[traffic.index_of("io"),
                                     traffic.index_of("memory")]
        assert io_to_memory == len(statistics) * frame_flits

    def test_p_frames_fetch_the_reference(self):
        statistics = self.statistics()
        p_count = sum(1 for stats in statistics if stats.frame_type == "P")
        assert p_count > 0
        traffic = traffic_from_video(statistics, (32, 32))
        frame_flits = (32 * 32 * PIXEL_BITS) // FLIT_BITS
        memory_to_me = traffic.flits[traffic.index_of("memory"),
                                     traffic.index_of("me_array")]
        assert memory_to_me == (len(statistics) + p_count) * frame_flits

    def test_entropy_bits_reach_the_cpu(self):
        statistics = self.statistics()
        traffic = traffic_from_video(statistics, (32, 32))
        dct_to_cpu = traffic.flits[traffic.index_of("dct_array"),
                                   traffic.index_of("cpu")]
        assert dct_to_cpu > 0


class TestGopShardExtraction:
    def test_shards_mirror_the_engine_split(self):
        from repro.engine.sharding import shard_sizes

        traffic = traffic_from_gop_shards(10, 3, (32, 32))
        sizes = shard_sizes(10, 3)
        frame_flits = (32 * 32 * PIXEL_BITS) // FLIT_BITS
        io = traffic.index_of("io")
        for worker, size in enumerate(sizes):
            to_worker = traffic.flits[io,
                                      traffic.index_of(f"worker{worker}")]
            assert to_worker == size * frame_flits

    def test_measured_substream_sizes_flow_back(self):
        bits = [1000, 2000, 3000, 4000]
        traffic = traffic_from_gop_shards(4, 2, (32, 32),
                                          encoded_bits_per_frame=bits)
        cpu = traffic.index_of("cpu")
        first = traffic.flits[traffic.index_of("worker0"), cpu]
        second = traffic.flits[traffic.index_of("worker1"), cpu]
        assert first == -(-3000 // FLIT_BITS)
        assert second == -(-7000 // FLIT_BITS)

    def test_agent_naming(self):
        assert gop_worker_agents(2) == ("io", "worker0", "worker1", "cpu")

    def test_wrong_bits_length_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_from_gop_shards(4, 2, (32, 32),
                                    encoded_bits_per_frame=[1, 2, 3])


class TestReconfigurationExtraction:
    BITS = {"mixed_rom": 1357, "scc_direct": 16892, "cordic2": 754}

    def test_only_changes_generate_bitstream_traffic(self):
        plan = [{"search_name": "full", "dct_name": "mixed_rom"},
                {"search_name": "full", "dct_name": "mixed_rom"},
                {"search_name": "three_step", "dct_name": "scc_direct"}]
        traffic = traffic_from_reconfiguration(plan, self.BITS)
        config = traffic.index_of("config")
        dct = traffic.index_of("dct_array")
        me = traffic.index_of("me_array")
        expected_dct = (-(-self.BITS["mixed_rom"] // FLIT_BITS)
                        + -(-self.BITS["scc_direct"] // FLIT_BITS))
        assert traffic.flits[config, dct] == expected_dct
        assert traffic.flits[config, me] == -(-SEARCH_SWITCH_BITS // FLIT_BITS)

    def test_stable_plan_loads_only_the_initial_kernel(self):
        plan = [{"search_name": "full", "dct_name": "mixed_rom"}] * 5
        traffic = traffic_from_reconfiguration(plan, self.BITS)
        assert traffic.total_flits == -(-self.BITS["mixed_rom"] // FLIT_BITS)

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_from_reconfiguration([], self.BITS)

    def test_planned_scene_produces_reconfiguration_traffic(self):
        from repro.video.scenes import plan_reconfiguration, scene_frames

        plan = plan_reconfiguration(scene_frames("cut", count=8, height=32,
                                                 width=32))
        traffic = traffic_from_reconfiguration(plan, self.BITS)
        assert traffic.total_flits > 0


class TestSyntheticPatterns:
    """Tornado and shuffle: classic adversarial benchmark patterns."""

    def test_tornado_sends_halfway_around(self):
        traffic = tornado_traffic(8, 4)
        assert traffic.flow_count == 8
        for source, sink, flits in traffic.flows():
            assert sink == (source + 4) % 8
            assert flits == 4

    def test_tornado_odd_agent_count(self):
        traffic = tornado_traffic(5, 2)
        assert traffic.flow_count == 5
        for source, sink, _ in traffic.flows():
            assert sink == (source + 2) % 5

    def test_shuffle_rotates_the_address_bits(self):
        traffic = shuffle_traffic(8, 2)
        # 0b000 and 0b111 map to themselves and are dropped.
        assert traffic.flow_count == 6
        partners = {source: sink for source, sink, _ in traffic.flows()}
        assert partners == {1: 2, 2: 4, 3: 6, 4: 1, 5: 3, 6: 5}

    def test_shuffle_non_power_of_two_uses_modular_doubling(self):
        traffic = shuffle_traffic(6, 2)
        partners = {source: sink for source, sink, _ in traffic.flows()}
        # partner(i) = 2i mod 5; agents 0 (self-loop) and 5 (idle) drop out
        assert partners == {1: 2, 2: 4, 3: 1, 4: 3}

    def test_small_fleets_rejected(self):
        with pytest.raises(ConfigurationError):
            tornado_traffic(1)
        with pytest.raises(ConfigurationError):
            shuffle_traffic(1)

    def test_clustered_is_local_heavy_global_light(self):
        from repro.noc.traffic import clustered_traffic

        traffic = clustered_traffic(8, cluster_size=4, local_flits=8,
                                    global_flits=1)
        flows = {(source, sink): flits
                 for source, sink, flits in traffic.flows()}
        assert flows[(0, 1)] == 8                      # same cluster
        assert flows[(0, 4)] == 1                      # next-cluster stream
        assert flows[(5, 1)] == 1                      # wraps around
        assert (1, 5) not in {pair for pair in flows
                              if flows[pair] == 8}     # no cross-cluster bulk
        # 8 agents, 2 clusters: 2 * 4*3 local pairs + 8 global streams.
        assert traffic.total_flits == 2 * 12 * 8 + 8 * 1

    def test_clustered_ragged_tail_cluster(self):
        from repro.noc.traffic import clustered_traffic

        traffic = clustered_traffic(6, cluster_size=4, local_flits=2,
                                    global_flits=1)
        flows = {(source, sink): flits
                 for source, sink, flits in traffic.flows()}
        assert flows[(4, 5)] == 2                      # 2-agent tail cluster
        assert flows[(4, 2)] == 1                      # global stream wraps

    def test_clustered_validation(self):
        from repro.noc.traffic import clustered_traffic

        with pytest.raises(ConfigurationError):
            clustered_traffic(1)
        with pytest.raises(ConfigurationError):
            clustered_traffic(8, cluster_size=0)
        with pytest.raises(ConfigurationError):
            clustered_traffic(8, local_flits=-1)
