"""Hierarchical topology families: structure and randomized invariants.

Covers the five hierarchical families (cluster-hub mesh, sparse-pillar
3-D mesh, pillar torus, express mesh, center-IO chiplet grid) with the
same invariant battery the flat families pass — route symmetry,
strictly-decreasing minimal-outport distances, the escape-hop DAG
property — over randomly drawn knob settings, plus scalar-vs-batched
simulator parity on at least one instance of every new family.
"""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import simulate, simulate_batched
from repro.noc.topology import (
    HUB_LINK_CYCLES,
    LINK_CYCLES,
    TSV_CYCLES,
    ClusterHubMesh,
    ExpressMesh,
    Mesh3D,
    Mesh3DSparse,
    MeshIoCenter,
    PillarTorus,
    Torus2D,
)
from repro.noc.traffic import TrafficMatrix


def random_instances(seed):
    """One randomly-knobbed instance of every hierarchical family."""
    rng = np.random.default_rng(seed)
    return [
        ClusterHubMesh(int(rng.integers(1, 3)), int(rng.integers(1, 3)),
                       cluster_side=int(rng.integers(1, 4)),
                       hub_speedup=int(rng.integers(1, 4))),
        Mesh3DSparse(int(rng.integers(2, 5)), int(rng.integers(2, 5)),
                     layers=int(rng.integers(2, 4)),
                     pillar_stride=int(rng.integers(1, 4)),
                     tsv_latency=int(rng.integers(1, 4))),
        PillarTorus(int(rng.integers(2, 5)), int(rng.integers(2, 5)),
                    layers=2, pillar_stride=int(rng.integers(1, 4)),
                    tsv_latency=int(rng.integers(1, 4))),
        ExpressMesh(int(rng.integers(2, 6)), int(rng.integers(3, 7)),
                    stride=int(rng.integers(2, 5))),
        MeshIoCenter(int(rng.integers(1, 5)), int(rng.integers(2, 6)),
                     io_link_latency=int(rng.integers(1, 4))),
    ]


class TestRandomizedInvariants:
    """The uniform-surface battery over random knob draws."""

    @pytest.mark.parametrize("seed", range(6))
    def test_routes_are_minimal_symmetric_valid_walks(self, seed):
        # Links are undirected, so the latency distance is symmetric and
        # every deterministic route must achieve it exactly.  (The hop
        # count may legitimately differ per direction when an express
        # bypass ties a multi-hop local path on latency.)
        for topology in random_instances(seed):
            for a in range(topology.node_count):
                for b in range(a + 1, topology.node_count):
                    distance = topology.latency_distance(a, b)
                    assert distance == topology.latency_distance(b, a)
                    for source, sink in ((a, b), (b, a)):
                        path = topology.route(source, sink)
                        assert path[0] == source and path[-1] == sink
                        assert len(set(path)) == len(path)
                        links = sum(topology.link_latency(x, y)
                                    for x, y in zip(path, path[1:]))
                        assert links == distance

    @pytest.mark.parametrize("seed", range(6))
    def test_minimal_outports_strictly_decrease_the_distance(self, seed):
        for topology in random_instances(seed):
            for dest in range(topology.node_count):
                table = topology.routing_table(dest)
                assert set(table) == \
                    set(range(topology.node_count)) - {dest}
                for node, outports in table.items():
                    assert outports
                    here = topology.latency_distance(node, dest)
                    for neighbour in outports:
                        there = topology.latency_distance(neighbour, dest)
                        assert there < here
                        assert (here - there
                                == topology.link_latency(node, neighbour))

    @pytest.mark.parametrize("seed", range(6))
    def test_escape_hops_form_a_dag_reaching_the_destination(self, seed):
        # Following only escape hops must reach the destination with the
        # latency distance strictly decreasing at every step — the walk
        # can never revisit a node, so the escape channel is a DAG and
        # deadlock-free on every hierarchical family.
        for topology in random_instances(seed):
            for dest in range(topology.node_count):
                for start in range(topology.node_count):
                    node, steps = start, 0
                    while node != dest:
                        there = topology.escape_hop(node, dest)
                        assert (topology.latency_distance(there, dest)
                                < topology.latency_distance(node, dest))
                        node = there
                        steps += 1
                        assert steps <= topology.node_count

    @pytest.mark.parametrize("seed", range(3))
    def test_degree_sums_to_twice_link_count(self, seed):
        for topology in random_instances(seed):
            total = sum(topology.degree(node)
                        for node in range(topology.node_count))
            assert total == 2 * topology.link_count


class TestSimulatorParity:
    """Scalar vs batched integer identity on each hierarchical family."""

    @pytest.mark.parametrize("model", ["analytic", "wormhole",
                                       "wormhole_adaptive"])
    @pytest.mark.parametrize("seed", range(2))
    def test_batched_matches_scalar(self, model, seed):
        rng = np.random.default_rng(7000 + seed)
        for topology in random_instances(seed):
            agent_count = int(rng.integers(2, topology.node_count + 1))
            agents = tuple(f"n{i}" for i in range(agent_count))
            batch = []
            for index in range(3):
                flits = rng.integers(0, 6, (agent_count, agent_count))
                np.fill_diagonal(flits, 0)
                batch.append(TrafficMatrix(agents, flits.astype(np.int64),
                                           name=f"t{index}"))
            batched = simulate_batched(topology, batch, model=model,
                                       max_flits_per_flow=None)
            for traffic, result in zip(batch, batched):
                scalar = simulate(topology, traffic, model=model,
                                  max_flits_per_flow=None)
                assert np.array_equal(scalar.per_flow_latency,
                                      result.per_flow_latency)
                assert np.array_equal(scalar.link_loads, result.link_loads)
                assert scalar.delivered_flits == result.delivered_flits
                assert scalar.cycles == result.cycles
                assert scalar.energy == result.energy
                assert scalar.saturated == result.saturated


class TestClusterHubMesh:
    def test_structure_and_latencies(self):
        chub = ClusterHubMesh(2, 3, cluster_side=2, hub_speedup=3)
        assert chub.cluster_count == 6
        assert chub.leaf_count == 24
        assert chub.node_count == 30
        assert chub.name == "chub_2x3s2f3"
        # Leaf 0 hangs off its cluster's hub at the leaf-clock latency;
        # adjacent hubs talk at the fast hub clock.
        assert chub.link_latency(0, chub.hub_of(0)) == 3
        assert chub.link_latency(chub.hub_of(0), chub.hub_of(1)) == 1
        assert chub.hub_nodes() == list(range(24, 30))

    def test_leaf_to_leaf_goes_through_the_hubs(self):
        chub = ClusterHubMesh(1, 2, cluster_side=2, hub_speedup=2)
        path = chub.route(0, chub.leaves_per_cluster)  # cluster 0 -> 1
        assert path == (0, chub.hub_of(0), chub.hub_of(1),
                        chub.leaves_per_cluster)

    def test_cluster_of_maps_leaves_and_hubs(self):
        chub = ClusterHubMesh(2, 2, cluster_side=2)
        assert chub.cluster_of(0) == 0
        assert chub.cluster_of(chub.leaves_per_cluster) == 1
        assert chub.cluster_of(chub.hub_of(3)) == 3

    def test_router_area_grows_with_hub_degree(self):
        # A bigger cluster side concentrates more leaf ports on each
        # hub: the hub degree rises and the quadratic crossbar model
        # must charge more total router area per router.
        small = ClusterHubMesh(2, 2, cluster_side=2)
        large = ClusterHubMesh(2, 2, cluster_side=3)
        assert large.max_degree() > small.max_degree()
        assert (large.router_area_elements() / large.node_count
                > small.router_area_elements() / small.node_count)

    def test_speedup_changes_the_fingerprint_not_the_node_count(self):
        slow = ClusterHubMesh(2, 2, cluster_side=2, hub_speedup=1)
        fast = ClusterHubMesh(2, 2, cluster_side=2, hub_speedup=3)
        assert slow.node_count == fast.node_count
        assert slow.fingerprint() != fast.fingerprint()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterHubMesh(0, 2)
        with pytest.raises(ConfigurationError):
            ClusterHubMesh(2, 2, cluster_side=0)
        with pytest.raises(ConfigurationError):
            ClusterHubMesh(2, 2, hub_speedup=0)


class TestMesh3DSparse:
    def test_full_stride_recovers_mesh3d(self):
        sparse = Mesh3DSparse(3, 3, layers=2, pillar_stride=1)
        full = Mesh3D(3, 3, layers=2)
        assert sparse.link_count == full.link_count
        assert sparse.pillar_sites() == [(r, c) for r in range(3)
                                         for c in range(3)]

    def test_sparse_pillars_thin_the_verticals(self):
        sparse = Mesh3DSparse(3, 3, layers=2, pillar_stride=2)
        assert sparse.pillar_sites() == [(0, 0), (0, 2), (2, 0), (2, 2)]
        full = Mesh3D(3, 3, layers=2)
        assert full.link_count - sparse.link_count == 9 - 4

    def test_origin_is_always_a_pillar(self):
        sparse = Mesh3DSparse(2, 2, layers=3, pillar_stride=5)
        assert sparse.pillar_sites() == [(0, 0)]
        # Still connected: every pair routes through the lone pillar.
        assert sparse.hop_distance(sparse.node_at(0, 1, 1),
                                   sparse.node_at(2, 1, 1)) > 0

    def test_cross_layer_routes_detour_via_a_pillar(self):
        sparse = Mesh3DSparse(3, 3, layers=2, pillar_stride=2,
                              tsv_latency=1)
        path = sparse.route(sparse.node_at(0, 1, 1),
                            sparse.node_at(1, 1, 1))
        pillar_ids = {sparse.node_at(layer, row, col)
                      for layer in range(2)
                      for row, col in sparse.pillar_sites()}
        assert pillar_ids & set(path)        # must touch a pillar
        assert len(path) > 2                 # no direct vertical exists

    def test_tsv_latency_prices_the_pillars(self):
        sparse = Mesh3DSparse(2, 2, layers=2, pillar_stride=1,
                              tsv_latency=4)
        assert sparse.link_latency(sparse.node_at(0, 0, 0),
                                   sparse.node_at(1, 0, 0)) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Mesh3DSparse(0, 3)
        with pytest.raises(ConfigurationError):
            Mesh3DSparse(3, 3, pillar_stride=0)


class TestPillarTorus:
    def test_wraparound_plus_pillars(self):
        ptorus = PillarTorus(3, 3, layers=2, pillar_stride=2)
        per_plane = Torus2D(3, 3).link_count
        assert ptorus.link_count == 2 * per_plane + 4
        assert ptorus.name == "ptorus_3x3x2p2"

    def test_wraparound_shortens_in_plane_paths(self):
        ptorus = PillarTorus(4, 4, layers=2, pillar_stride=2)
        assert ptorus.hop_distance(ptorus.node_at(0, 0, 0),
                                   ptorus.node_at(0, 0, 3)) == 1

    def test_short_dimensions_get_no_duplicate_links(self):
        ptorus = PillarTorus(2, 2, layers=2, pillar_stride=1)
        # 2x2 planes are fully mesh-connected; no wraparounds to add.
        assert ptorus.link_count == 2 * 4 + 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PillarTorus(2, 0)
        with pytest.raises(ConfigurationError):
            PillarTorus(2, 2, pillar_stride=-1)


class TestExpressMesh:
    def test_express_links_skip_routers(self):
        xmesh = ExpressMesh(1, 7, stride=3)
        # Express hop 0->3 crosses one router instead of three.
        assert xmesh.hop_distance(0, 3) == 1
        assert xmesh.link_latency(0, 3) == 3
        plain = ExpressMesh(1, 7, stride=6)   # express span too long to land
        assert plain.hop_distance(0, 3) == 3

    def test_express_beats_local_hops_on_route_latency(self):
        xmesh = ExpressMesh(1, 7, stride=3, express_latency=2)
        # 0 -> 6: two express hops at 2 cycles each strictly beat six
        # local hops, so the deterministic route must ride the bypass.
        assert xmesh.hop_distance(0, 6) == 2
        assert xmesh.route_latency(0, 6) < 6 * (1 + LINK_CYCLES)

    def test_link_count_adds_the_express_channels(self):
        xmesh = ExpressMesh(4, 4, stride=2)
        mesh_links = 4 * 3 * 2
        express = 4 * 1 + 4 * 1                # one per row + one per column
        assert xmesh.link_count == mesh_links + express

    def test_custom_express_latency(self):
        xmesh = ExpressMesh(1, 5, stride=2, express_latency=1)
        assert xmesh.link_latency(0, 2) == 1

    def test_stride_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ExpressMesh(3, 3, stride=1)

    def test_tiny_mesh_has_no_express_links(self):
        xmesh = ExpressMesh(2, 2, stride=2)
        assert xmesh.link_count == 4           # plain 2x2 mesh


class TestMeshIoCenter:
    def test_io_column_sits_in_the_middle(self):
        meshio = MeshIoCenter(3, 4)
        assert meshio.node_count == 3 * 5
        assert meshio.io_col == 2
        assert meshio.io_nodes() == [2, 7, 12]

    def test_die_crossing_links_cost_more(self):
        meshio = MeshIoCenter(2, 2, io_link_latency=3)
        io = meshio.io_nodes()[0]
        assert meshio.link_latency(io - 1, io) == 3       # compute -> IO
        assert meshio.link_latency(io, io + 1) == 3       # IO -> compute
        assert meshio.link_latency(meshio.node_at(0, 0),
                                   meshio.node_at(1, 0)) == LINK_CYCLES
        assert meshio.link_latency(meshio.io_nodes()[0],
                                   meshio.io_nodes()[1]) == LINK_CYCLES

    def test_default_latency_is_the_chiplet_crossing(self):
        meshio = MeshIoCenter(2, 2)
        io = meshio.io_nodes()[0]
        assert meshio.link_latency(io - 1, io) == HUB_LINK_CYCLES

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeshIoCenter(0, 4)
        with pytest.raises(ConfigurationError):
            MeshIoCenter(3, 1)
