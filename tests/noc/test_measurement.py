"""Regression tests for saturated-NoC measurement fixes.

Each test pins a behaviour that was wrong before this change: censored
flows used to drag the reported mean latency toward the cycle budget
with no way to see it, the utilisation-knee saturation check silently
skipped the cycle-stepped models, out-of-range placements crashed deep
inside the simulator instead of naming the bad agent, and saturation
curves re-simulated identical traffic at every level above the
workload's natural peak, inflating the reported knee.
"""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.explore import saturation_curve
from repro.noc.sim import SATURATION_UTILISATION, simulate
from repro.noc.topology import Mesh2D, Ring
from repro.noc.traffic import (
    TrafficMatrix,
    transpose_traffic,
    uniform_traffic,
)


def heavy_matrix(agent_count, flits):
    agents = tuple(f"n{i}" for i in range(agent_count))
    matrix = np.full((agent_count, agent_count), flits, dtype=np.int64)
    np.fill_diagonal(matrix, 0)
    return TrafficMatrix(agents, matrix, name="heavy")


class TestCensoredLatency:
    """Budget-censored flows must not masquerade as delivered latency."""

    def test_saturated_run_separates_delivered_from_censored(self):
        # A budget far too small to drain the matrix: some flows finish,
        # the rest are recorded at the budget.
        result = simulate(Mesh2D(3, 3), heavy_matrix(9, 6),
                          model="wormhole", max_cycles=12)
        assert result.censored_flow_count > 0
        assert result.delivered_flits < result.total_flits
        # The censored flows sit exactly at the budget, so the mean over
        # all flows is inflated; the delivered-only mean is not.
        assert (result.delivered_mean_latency_cycles
                < result.mean_latency_cycles)
        delivered = result.per_flow_latency[result.per_flow_delivered]
        assert result.delivered_mean_latency_cycles == float(
            delivered.mean())

    def test_unsaturated_run_has_no_censoring(self):
        result = simulate(Mesh2D(3, 3), uniform_traffic(9, 2),
                          model="wormhole")
        assert result.censored_flow_count == 0
        assert (result.delivered_mean_latency_cycles
                == result.mean_latency_cycles)

    def test_fully_censored_run_reports_zero_delivered_mean(self):
        result = simulate(Mesh2D(3, 3), heavy_matrix(9, 6),
                          model="wormhole", max_cycles=1)
        assert result.censored_flow_count == result.flow_count
        assert result.delivered_mean_latency_cycles == 0.0

    def test_summary_carries_both_statistics(self):
        summary = simulate(Mesh2D(3, 3), heavy_matrix(9, 6),
                           model="wormhole", max_cycles=12).summary()
        assert summary["censored_flows"] > 0
        assert (summary["delivered_mean_latency_cycles"]
                < summary["mean_latency_cycles"])


class TestSaturationFlag:
    """The utilisation knee applies to every model, not just analytic."""

    @pytest.mark.parametrize("model", ["wormhole", "wormhole_adaptive"])
    def test_over_the_knee_wormhole_run_is_flagged(self, model):
        # Everything is delivered (no budget censoring), but the busiest
        # link runs nearly every cycle: the network is past its knee and
        # the cycle-stepped models must say so.
        result = simulate(Ring(4), transpose_traffic(4, 32), model=model)
        assert result.delivered_flits == result.total_flits
        assert result.peak_link_utilisation > SATURATION_UTILISATION
        assert result.saturated

    @pytest.mark.parametrize("model", ["analytic", "wormhole",
                                       "wormhole_adaptive"])
    def test_light_load_is_not_flagged(self, model):
        # One flit over several hops: each link is busy a single cycle
        # of a multi-cycle journey, well under the knee in every model.
        agents = tuple(f"n{i}" for i in range(8))
        flits = np.zeros((8, 8), dtype=np.int64)
        flits[0, 4] = 1
        traffic = TrafficMatrix(agents, flits, name="light")
        result = simulate(Ring(8), traffic, model=model)
        assert not result.saturated

    def test_flag_agrees_with_the_published_threshold(self):
        result = simulate(Ring(4), transpose_traffic(4, 32),
                          model="wormhole")
        assert result.saturated == (
            result.delivered_flits < result.total_flits
            or result.peak_link_utilisation > SATURATION_UTILISATION)


class TestSaturationKnee:
    """Levels above the workload's natural peak must inject more flits.

    The curve used to scale each level with the shrink-only
    ``scaled_to``, so a workload whose largest flow was 2 flits
    re-simulated the *same* traffic at levels 4/8/16/32/64 — every
    point above the peak inherited the light load's unsaturated flag
    and the knee read as the top level swept instead of the level the
    network can actually absorb.
    """

    LEVELS = (1, 2, 4, 8, 16, 32, 64)

    def curve(self):
        # Two flows, natural peak of 2 flits, swept far past it.  Light
        # levels idle the busiest link most of the journey; heavy levels
        # stream it nearly every cycle, so the knee sits strictly inside
        # the sweep.
        agents = tuple(f"n{i}" for i in range(9))
        flits = np.zeros((9, 9), dtype=np.int64)
        flits[0, 8] = 2
        flits[2, 6] = 1
        traffic = TrafficMatrix(agents, flits, name="sparse")
        return saturation_curve(Mesh2D(3, 3), traffic,
                                levels=self.LEVELS, model="wormhole")

    def test_injected_flits_grow_with_the_level(self):
        totals = [point.total_flits for point in self.curve().points]
        assert totals == sorted(set(totals)), \
            "levels above the natural peak re-simulated identical traffic"
        # The peak flow carries exactly ``level`` flits and the 1-flit
        # flow scales with the same ceiling ratio.
        assert totals == [level + (level + 1) // 2 for level in self.LEVELS]

    def test_knee_does_not_exceed_achievable_injection(self):
        curve = self.curve()
        # 64 flits per flow is far past the knee; with the shrink-only
        # scaling every level above the natural peak of 2 cloned the
        # unsaturated 2-flit run and the knee was reported as 64.
        assert curve.points[-1].saturated
        assert curve.knee is not None
        assert curve.knee < max(self.LEVELS)
        assert not curve.points[0].saturated


class TestPlacementValidation:
    """Agents must land on routers the topology actually has."""

    def test_router_beyond_the_topology_is_rejected_by_name(self):
        traffic = uniform_traffic(4, 1)
        placement = {agent: index for index, agent in
                     enumerate(traffic.agents)}
        placement[traffic.agents[2]] = 99
        with pytest.raises(ConfigurationError) as error:
            simulate(Mesh2D(2, 2), traffic, placement=placement)
        assert traffic.agents[2] in str(error.value)
        assert "99" in str(error.value)

    def test_negative_router_is_rejected(self):
        traffic = uniform_traffic(4, 1)
        placement = {agent: index for index, agent in
                     enumerate(traffic.agents)}
        placement[traffic.agents[0]] = -1
        with pytest.raises(ConfigurationError):
            simulate(Mesh2D(2, 2), traffic, placement=placement)

    def test_valid_placement_still_accepted(self):
        traffic = uniform_traffic(4, 1)
        placement = {agent: 3 - index for index, agent in
                     enumerate(traffic.agents)}
        result = simulate(Mesh2D(2, 2), traffic, placement=placement)
        assert result.delivered_flits == result.total_flits
