"""Flow integration: the NoC passes inside ``repro.flow.compile``."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct import MixedRomDCT, SCCDirectDCT
from repro.flow import Flow, FlowCache
from repro.noc.passes import NocMapPass, NocMetricsPass
from repro.noc.topology import HubAndSpoke, Torus2D


class TestFlowWithNoc:
    def test_compile_reports_noc_metrics(self):
        result = Flow.with_noc().compile(MixedRomDCT())
        assert result.noc_map is not None
        assert result.noc is not None
        assert result.metrics.noc_latency_cycles > 0
        assert result.metrics.noc_energy > 0
        summary = result.summary()
        assert summary["noc_latency_cycles"] == result.metrics.noc_latency_cycles
        assert summary["noc_energy"] == round(result.metrics.noc_energy, 2)

    def test_default_flow_leaves_noc_fields_zero(self):
        result = Flow.default().compile(MixedRomDCT())
        assert result.noc is None
        assert result.metrics.noc_latency_cycles == 0
        assert result.metrics.noc_energy == 0.0

    def test_alternative_topology_changes_the_mapping(self):
        mesh = Flow.with_noc(tiles=(3, 3)).compile(MixedRomDCT())
        torus = Flow.with_noc(topology=Torus2D(3, 3),
                              tiles=(3, 3)).compile(MixedRomDCT())
        assert mesh.noc.topology_name == "mesh_3x3"
        assert torus.noc.topology_name == "torus_3x3"
        assert torus.noc.max_latency_cycles <= mesh.noc.max_latency_cycles

    def test_traffic_is_conserved_through_the_flow(self):
        result = Flow.with_noc().compile(SCCDirectDCT())
        assert result.noc.delivered_flits == result.noc.total_flits
        assert result.noc.total_flits == result.noc_map.traffic.total_flits

    def test_wormhole_model_available_in_flow(self):
        result = Flow.with_noc(model="wormhole").compile(MixedRomDCT())
        assert result.noc.model == "wormhole"
        assert result.noc.delivered_flits == result.noc.total_flits

    def test_analytic_metrics_track_the_full_traffic_volume(self):
        from repro.noc.sim import WORMHOLE_FLIT_CAP

        # The analytic pass runs uncapped: the simulated flit count is
        # the extracted matrix's, however heavy, so a 2x-heavier design
        # reports 2x the transfer energy instead of a clamped value.
        assert NocMetricsPass().max_flits_per_flow is None
        assert (NocMetricsPass(model="wormhole").max_flits_per_flow
                == WORMHOLE_FLIT_CAP)
        assert NocMetricsPass(max_flits_per_flow=8).max_flits_per_flow == 8
        result = Flow.with_noc().compile(SCCDirectDCT())
        assert result.noc.total_flits == result.noc_map.traffic.total_flits

    def test_topology_smaller_than_tiles_rejected(self):
        flow = Flow.with_noc(topology=HubAndSpoke(2), tiles=(3, 3))
        with pytest.raises(ConfigurationError):
            flow.compile(MixedRomDCT())

    def test_oversized_tiles_clamp_to_an_aligned_topology(self):
        # The traffic extractor clamps a too-fine tile grid to the fabric;
        # the default mesh must be built from the same clamped grid, so
        # adjacent tiles stay adjacent routers.
        result = Flow.with_noc(tiles=(3, 99)).compile(MixedRomDCT())
        tile_rows, tile_cols = 3, result.fabric.cols
        assert result.noc_map.topology.node_count == tile_rows * tile_cols
        placement = result.noc_map.placement
        topology = result.noc_map.topology
        for source, sink, _ in result.noc_map.traffic.flows():
            a = placement[result.noc_map.traffic.agents[source]]
            b = placement[result.noc_map.traffic.agents[sink]]
            assert topology.hop_distance(a, b) == 1


class TestCaching:
    def test_noc_flow_misses_the_default_flow_cache(self):
        cache = FlowCache()
        plain = Flow.default().compile(MixedRomDCT(), cache=cache)
        with_noc = Flow.with_noc().compile(MixedRomDCT(), cache=cache)
        assert not plain.cache_hit
        assert not with_noc.cache_hit         # different pass signature
        again = Flow.with_noc().compile(MixedRomDCT(), cache=cache)
        assert again.cache_hit
        assert again.noc is not None
        assert again.metrics.noc_latency_cycles > 0

    def test_signatures_cover_parameters(self):
        assert (NocMapPass(tiles=(2, 2)).signature()
                != NocMapPass(tiles=(4, 4)).signature())
        assert (NocMapPass(topology=Torus2D(2, 2)).signature()
                != NocMapPass().signature())
        assert (NocMetricsPass(model="analytic").signature()
                != NocMetricsPass(model="wormhole").signature())

    def test_signature_sees_link_latency_not_just_the_name(self):
        from repro.noc.topology import Mesh3D

        fast = Mesh3D(2, 2, 2, tsv_latency=1)
        slow = Mesh3D(2, 2, 2, tsv_latency=10)
        assert fast.name == slow.name
        assert (NocMapPass(topology=fast).signature()
                != NocMapPass(topology=slow).signature())

    def test_same_name_different_latency_misses_the_cache(self):
        from repro.noc.topology import Mesh3D

        cache = FlowCache()
        fast = Flow.with_noc(topology=Mesh3D(2, 2, 2, tsv_latency=1),
                             tiles=(2, 2)).compile(MixedRomDCT(), cache=cache)
        slow = Flow.with_noc(topology=Mesh3D(2, 2, 2, tsv_latency=10),
                             tiles=(2, 2)).compile(MixedRomDCT(), cache=cache)
        assert not slow.cache_hit                 # stale metrics would hide here
        assert slow.noc.flit_link_cycles >= fast.noc.flit_link_cycles


class TestValidation:
    def test_metrics_pass_requires_the_map(self):
        from repro.flow import GreedyPlacePass, MetricsPass, RoutePass, SchedulePass

        with pytest.raises(ConfigurationError):
            Flow([SchedulePass(), GreedyPlacePass(), RoutePass(),
                  MetricsPass(), NocMetricsPass()])

    def test_map_pass_requires_routing(self):
        from repro.flow import GreedyPlacePass, SchedulePass

        with pytest.raises(ConfigurationError):
            Flow([SchedulePass(), GreedyPlacePass(), NocMapPass()])

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            NocMetricsPass(model="quantum")

    def test_unknown_placement_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            NocMapPass(placement_strategy="random")
