"""Reporting surfaces and error paths of the NoC subsystem."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import simulate, simulate_batched
from repro.noc.topology import Mesh2D, Ring, standard_topologies
from repro.noc.traffic import (
    TrafficMatrix,
    kernel_bitstream_bits,
    traffic_from_reconfiguration,
    uniform_traffic,
)


class TestDescribeAndSummary:
    def test_describe_carries_headline_numbers(self):
        for topology in standard_topologies(6):
            description = topology.describe()
            assert description["routers"] == topology.node_count
            assert description["links"] == topology.link_count
            assert description["router_area_elements"] > 0

    def test_sim_summary_round_trips_the_result(self):
        result = simulate(Mesh2D(2, 3), uniform_traffic(6, 3))
        summary = result.summary()
        assert summary["topology"] == "mesh_2x3"
        assert summary["flits"] == result.total_flits
        assert summary["max_latency_cycles"] == result.max_latency_cycles
        assert summary["noc_energy"] == round(result.energy, 2)

    def test_reprs_are_informative(self):
        topology = Ring(5)
        traffic = uniform_traffic(5, 2)
        assert "ring_5" in repr(topology)
        assert "uniform" in repr(traffic)
        assert "ring_5" in repr(simulate(topology, traffic))

    def test_empty_traffic_simulates_to_zero(self):
        empty = TrafficMatrix(("a", "b"), np.zeros((2, 2), dtype=np.int64))
        for model in ("analytic", "wormhole"):
            result = simulate(Mesh2D(2, 2), empty, model=model)
            assert result.cycles == 0
            assert result.energy == 0.0
            assert not result.saturated
            assert result.mean_latency_cycles == 0.0


class TestErrorPaths:
    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate(Mesh2D(2, 2), uniform_traffic(4), model="optical")
        with pytest.raises(ConfigurationError):
            simulate_batched(Mesh2D(2, 2), [uniform_traffic(4)],
                             model="optical")

    def test_batched_requires_uniform_agents(self):
        with pytest.raises(ConfigurationError):
            simulate_batched(Mesh2D(3, 3), [uniform_traffic(4),
                                            uniform_traffic(5)])

    def test_batched_empty_input_is_empty_output(self):
        assert simulate_batched(Mesh2D(2, 2), []) == []

    def test_incomplete_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate(Mesh2D(2, 2), uniform_traffic(4), placement={"n0": 0})

    def test_unknown_agent_lookup_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_traffic(3).index_of("memory")

    def test_scaling_needs_positive_cap(self):
        with pytest.raises(ConfigurationError):
            uniform_traffic(3).scaled_to(0)


class TestKernelBitstreams:
    def test_measured_bits_feed_the_extractor(self):
        bits = kernel_bitstream_bits(("mixed_rom",))
        assert bits["mixed_rom"] > 0
        plan = [{"search_name": "full", "dct_name": "mixed_rom"}]
        traffic = traffic_from_reconfiguration(plan)   # compiles on demand
        assert traffic.total_flits == -(-bits["mixed_rom"] // 32)


class TestEnergyModel:
    def test_energy_is_linear_in_the_aggregates(self):
        from repro.power.models import (
            NOC_LINK_ENERGY_PER_FLIT_CYCLE,
            NOC_ROUTER_ENERGY_PER_FLIT,
            noc_transfer_energy,
        )

        assert noc_transfer_energy(0, 0) == 0.0
        assert noc_transfer_energy(10, 4) == pytest.approx(
            10 * NOC_LINK_ENERGY_PER_FLIT_CYCLE
            + 4 * NOC_ROUTER_ENERGY_PER_FLIT)

    def test_negative_aggregates_rejected(self):
        from repro.power.models import noc_transfer_energy

        with pytest.raises(ValueError):
            noc_transfer_energy(-1, 0)

    def test_analytic_energy_scales_with_traffic_volume(self):
        topology = Mesh2D(2, 3)
        base = uniform_traffic(6, 4)
        doubled = TrafficMatrix(base.agents, base.flits * 2, name="2x")
        assert (simulate(topology, doubled).energy
                == 2 * simulate(topology, base).energy)

    def test_slow_tsv_links_cost_more_energy(self):
        from repro.noc.topology import Mesh3D

        # Unit-latency links: flit-link-cycles equal raw crossings.
        flat = simulate(Mesh2D(2, 4), uniform_traffic(8, 2))
        assert flat.flit_link_cycles == int(flat.link_loads.sum())
        # TSV crossings integrate extra cycles, so the aggregate exceeds
        # the crossing count.
        stacked = simulate(Mesh3D(2, 2, 2), uniform_traffic(8, 2))
        assert stacked.flit_link_cycles > int(stacked.link_loads.sum())