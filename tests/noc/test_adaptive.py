"""Congestion-aware adaptive routing: table properties, deadlock
freedom on adversarial patterns at full injection, and the headline
adaptive-beats-static result the benchmarks pin."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.sim import ADAPTIVE_BUFFER_DEPTH, simulate
from repro.noc.topology import (
    ClusterHubMesh,
    ExpressMesh,
    HubAndSpoke,
    Mesh2D,
    Mesh3D,
    Mesh3DSparse,
    MeshIoCenter,
    PillarTorus,
    Ring,
    Torus2D,
)
from repro.noc.traffic import (
    ADVERSARIAL_PATTERNS,
    adversarial_traffic,
    burst_traffic,
    hotspot_traffic,
    tornado_traffic,
    transpose_traffic,
)

TOPOLOGIES = [Mesh2D(3, 3), Torus2D(3, 4), Ring(8), Mesh3D(2, 2, layers=2),
              HubAndSpoke(6), ClusterHubMesh(2, 2, cluster_side=2),
              Mesh3DSparse(3, 3, layers=2, pillar_stride=2),
              PillarTorus(3, 3, layers=2, pillar_stride=2),
              ExpressMesh(3, 4, stride=2), MeshIoCenter(3, 3)]


class TestRoutingTables:
    """Per-hop minimal outport tables derived from the weighted routes."""

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: t.name)
    def test_every_outport_strictly_approaches_the_destination(
            self, topology):
        for dest in range(topology.node_count):
            table = topology.routing_table(dest)
            for node, outports in table.items():
                assert outports, (node, dest)
                here = topology.latency_distance(node, dest)
                for neighbour in outports:
                    gain = here - topology.latency_distance(neighbour, dest)
                    assert gain == topology.link_latency(node, neighbour)

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: t.name)
    def test_table_covers_every_node_except_the_destination(self, topology):
        for dest in range(topology.node_count):
            table = topology.routing_table(dest)
            assert set(table) == set(range(topology.node_count)) - {dest}

    def test_torus_offers_path_diversity(self):
        # Opposite corners of a torus reach the destination through
        # several equally minimal first hops; a mesh corner flow along
        # one edge has exactly one.
        torus = Torus2D(4, 4)
        assert len(torus.minimal_outports(0, 10)) >= 2
        mesh = Mesh2D(3, 3)
        assert mesh.minimal_outports(0, 2) == (1,)

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: t.name)
    def test_escape_hop_is_the_static_route_first_hop(self, topology):
        for dest in range(topology.node_count):
            for node in range(topology.node_count):
                if node == dest:
                    with pytest.raises(ConfigurationError):
                        topology.escape_hop(node, dest)
                    continue
                assert (topology.escape_hop(node, dest)
                        == topology.route(node, dest)[1])

    @pytest.mark.parametrize("topology", TOPOLOGIES,
                             ids=lambda t: t.name)
    def test_escape_hop_is_always_a_minimal_outport(self, topology):
        # The escape channel routes along the deterministic shortest
        # path, so it always appears in the adaptive candidate set —
        # falling back to it never lengthens a journey.
        for dest in range(topology.node_count):
            for node in range(topology.node_count):
                if node != dest:
                    assert (topology.escape_hop(node, dest)
                            in topology.minimal_outports(node, dest))

    def test_minimal_outports_at_destination_is_empty(self):
        assert Mesh2D(2, 2).minimal_outports(3, 3) == ()


class TestDeadlockFreedom:
    """Full-injection adversarial patterns must always drain: every
    outport strictly decreases the distance to the destination, so the
    routing graph per destination is a DAG and the lowest outstanding
    flit always advances."""

    CASES = [
        (Mesh2D(3, 3), "transpose"),
        (Mesh2D(3, 3), "tornado"),
        (Mesh2D(4, 4), "transpose"),
        (Torus2D(3, 4), "tornado"),
        (Torus2D(4, 4), "shuffle"),
        (Ring(8), "tornado"),
        (Mesh3D(2, 2, layers=2), "hotspot"),
        (HubAndSpoke(6), "hotspot"),
    ]

    @pytest.mark.parametrize("topology,pattern", CASES,
                             ids=lambda v: getattr(v, "name", v))
    def test_full_injection_always_drains(self, topology, pattern):
        # 64 flits per flow with every flow injecting from cycle zero —
        # sustained 1.0 injection rate, far beyond every knee.
        traffic = adversarial_traffic(pattern, topology.node_count,
                                      flits_per_flow=64)
        result = simulate(topology, traffic, model="wormhole_adaptive")
        assert result.delivered_flits == result.total_flits
        assert result.censored_flow_count == 0
        assert result.cycles < result.total_flits * 4  # finite, not stalled

    @pytest.mark.parametrize("topology,pattern", CASES,
                             ids=lambda v: getattr(v, "name", v))
    def test_burst_variant_also_drains(self, topology, pattern):
        traffic = burst_traffic(pattern, topology.node_count,
                                flits_per_flow=16, burst_on=4, burst_off=12)
        result = simulate(topology, traffic, model="wormhole_adaptive")
        assert result.delivered_flits == result.total_flits


class TestAdaptiveBeatsStatic:
    """The congestion-aware router's reason to exist, pinned: lower
    delivered latency than deterministic routing on a corner hotspot."""

    def test_hotspot_mean_delivered_latency(self):
        traffic = hotspot_traffic(9, 0, 16)
        static = simulate(Mesh2D(3, 3), traffic, model="wormhole")
        adaptive = simulate(Mesh2D(3, 3), traffic,
                            model="wormhole_adaptive")
        assert static.delivered_flits == static.total_flits
        assert adaptive.delivered_flits == adaptive.total_flits
        assert (adaptive.delivered_mean_latency_cycles
                < static.delivered_mean_latency_cycles)

    def test_torus_tornado_mean_delivered_latency(self):
        traffic = tornado_traffic(12, 16)
        static = simulate(Torus2D(3, 4), traffic, model="wormhole")
        adaptive = simulate(Torus2D(3, 4), traffic,
                            model="wormhole_adaptive")
        assert (adaptive.delivered_mean_latency_cycles
                < static.delivered_mean_latency_cycles)

    def test_mesh_transpose_mean_delivered_latency(self):
        traffic = transpose_traffic(16, 16)
        static = simulate(Mesh2D(4, 4), traffic, model="wormhole")
        adaptive = simulate(Mesh2D(4, 4), traffic,
                            model="wormhole_adaptive")
        assert (adaptive.delivered_mean_latency_cycles
                < static.delivered_mean_latency_cycles)

    def test_adaptive_never_loses_on_a_contention_free_flow(self):
        # A single flow has nothing to adapt around: both models must
        # deliver at the identical zero-load latency.
        agents = tuple(f"n{i}" for i in range(9))
        flits = np.zeros((9, 9), dtype=np.int64)
        flits[0, 8] = 8
        from repro.noc.traffic import TrafficMatrix
        traffic = TrafficMatrix(agents, flits, name="single")
        static = simulate(Mesh2D(3, 3), traffic, model="wormhole")
        adaptive = simulate(Mesh2D(3, 3), traffic,
                            model="wormhole_adaptive")
        assert (adaptive.per_flow_latency.tolist()
                == static.per_flow_latency.tolist())


class TestBurstInjection:
    def test_bursts_stretch_the_makespan(self):
        base = transpose_traffic(9, 16)
        bursty = base.with_burst(2, 14)
        contiguous = simulate(Mesh2D(3, 3), base,
                              model="wormhole_adaptive")
        spread = simulate(Mesh2D(3, 3), bursty,
                          model="wormhole_adaptive")
        assert spread.cycles > contiguous.cycles
        assert spread.delivered_flits == contiguous.delivered_flits

    def test_off_cycles_relieve_contention(self):
        # With long idle gaps each burst drains before the next fires,
        # so the busiest link is idle most of the time.
        bursty = burst_traffic("transpose", 9, flits_per_flow=16,
                               burst_on=1, burst_off=15)
        result = simulate(Mesh2D(3, 3), bursty, model="wormhole_adaptive")
        assert result.delivered_flits == result.total_flits
        assert result.peak_link_utilisation < 0.5

    def test_analytic_model_ignores_burst_timing(self):
        base = transpose_traffic(9, 16)
        plain = simulate(Mesh2D(3, 3), base, model="analytic")
        bursty = simulate(Mesh2D(3, 3), base.with_burst(2, 14),
                          model="analytic")
        assert plain.cycles == bursty.cycles
        assert plain.mean_latency_cycles == bursty.mean_latency_cycles

    def test_all_adversarial_patterns_have_burst_variants(self):
        for pattern in ADVERSARIAL_PATTERNS:
            traffic = burst_traffic(pattern, 8, flits_per_flow=4,
                                    burst_on=3, burst_off=5)
            assert traffic.burst == (3, 5)
            assert traffic.name.endswith("burst3_5")


class TestBufferDepth:
    def test_depth_is_small_and_positive(self):
        # The credit loop only adapts while buffers can fill; a huge
        # depth would degenerate to static shortest-path routing.
        assert 1 <= ADAPTIVE_BUFFER_DEPTH <= 16
