"""Design-space explorer: sweeps, grids and Pareto-front properties."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.explore import (
    TOPOLOGY_GRID_FAMILIES,
    DesignPoint,
    default_grid,
    grid_sweep,
    pareto_by_workload,
    pareto_front,
    pareto_front_reference,
    saturation_curve,
    saturation_curves,
    sweep,
)
from repro.noc.topology import TOPOLOGY_FAMILIES, Mesh2D, Ring
from repro.noc.traffic import (
    burst_traffic,
    clustered_traffic,
    hotspot_traffic,
    transpose_traffic,
    uniform_traffic,
)


def small_sweep():
    return sweep({"uniform": uniform_traffic(8, 3),
                  "hotspot": hotspot_traffic(8, 0, 5)},
                 placements=("linear",))


class TestSweep:
    def test_covers_every_family_and_workload(self):
        points = small_sweep()
        assert {point.topology.split("_")[0] for point in points} == \
            {"mesh", "torus", "ring", "mesh3d", "hub",
             "chub", "mesh3ds", "ptorus", "xmesh", "meshio"}
        assert {point.workload for point in points} == {"uniform", "hotspot"}
        assert len(points) == len(TOPOLOGY_FAMILIES) * 2

    def test_explicit_topologies_and_placements(self):
        points = sweep({"transpose": transpose_traffic(6, 4)},
                       topologies=[Mesh2D(2, 3), Ring(6)],
                       placements=("linear", "spread"))
        assert len(points) == 4
        assert {point.placement for point in points} == {"linear", "spread"}

    def test_points_carry_consistent_metrics(self):
        for point in small_sweep():
            assert point.latency_cycles >= 1
            assert point.energy > 0
            assert point.router_area > 0
            assert point.node_count >= 8
            summary = point.summary()
            assert summary["topology"] == point.topology
            assert summary["latency_cycles"] == point.latency_cycles

    def test_batched_grouping_matches_individual_sweeps(self):
        together = sweep({"uniform": uniform_traffic(8, 3),
                          "hotspot": hotspot_traffic(8, 0, 5)},
                         placements=("linear",))
        alone = (sweep({"uniform": uniform_traffic(8, 3)},
                       placements=("linear",))
                 + sweep({"hotspot": hotspot_traffic(8, 0, 5)},
                         placements=("linear",)))
        key = lambda p: (p.topology, p.workload)
        assert {key(p): (p.latency_cycles, p.energy) for p in together} == \
            {key(p): (p.latency_cycles, p.energy) for p in alone}

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep({})


class TestGridSweep:
    def workloads(self):
        return {"uniform": uniform_traffic(8, 3),
                "clustered": clustered_traffic(8, 4)}

    def test_default_grid_covers_every_family(self):
        specs = default_grid(16)
        assert {family for family, _ in specs} == set(TOPOLOGY_GRID_FAMILIES)
        assert set(TOPOLOGY_GRID_FAMILIES) == set(TOPOLOGY_FAMILIES)

    def test_default_grid_enumerates_the_knob_product(self):
        specs = default_grid(16, families=("mesh3d_sparse",),
                             pillar_strides=(1, 2, 3),
                             tsv_latencies=(2, 4))
        assert len(specs) == 6
        assert {(p["pillar_stride"], p["tsv_latency"])
                for _, p in specs} == {(s, t) for s in (1, 2, 3)
                                       for t in (2, 4)}

    def test_default_grid_rejects_unknown_families(self):
        with pytest.raises(ConfigurationError):
            default_grid(16, families=("hypercube",))

    def test_point_count_is_the_full_product(self):
        specs = default_grid(8)
        points = grid_sweep(self.workloads(), specs=specs,
                            placements=("linear", "spread"))
        assert len(points) == len(specs) * 2 * 2

    def test_matches_sweep_on_identical_topologies(self):
        from repro.noc.topology import build_topology

        specs = [("mesh", {"rows": 3, "cols": 3}),
                 ("ring", {"count": 8})]
        from_grid = grid_sweep(self.workloads(), specs=specs,
                               placements=("linear",))
        from_sweep = sweep(self.workloads(),
                           topologies=[build_topology(family, **params)
                                       for family, params in specs],
                           placements=("linear",))
        assert from_grid == from_sweep

    def test_processes_path_is_bit_identical_to_serial(self):
        specs = default_grid(8)
        serial = grid_sweep(self.workloads(), specs=specs)
        parallel = grid_sweep(self.workloads(), specs=specs,
                              parallel="processes", workers=2)
        assert parallel == serial

    def test_unknown_parallel_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(self.workloads(), parallel="threads")

    def test_undersized_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep(self.workloads(),
                       specs=[("mesh", {"rows": 2, "cols": 2})])

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep({})
        with pytest.raises(ConfigurationError):
            grid_sweep(self.workloads(), specs=[])


class TestParetoFront:
    def test_front_is_nonempty_subset(self):
        points = small_sweep()
        front = pareto_front(points)
        assert front
        assert set(id(p) for p in front) <= set(id(p) for p in points)

    def test_no_front_point_dominates_another(self):
        front = pareto_front(small_sweep())
        for a in front:
            for b in front:
                if a is b:
                    continue
                better_everywhere = (
                    a.latency_cycles <= b.latency_cycles
                    and a.energy <= b.energy
                    and a.router_area <= b.router_area
                    and a.saturated <= b.saturated
                    and (a.latency_cycles, a.energy, a.router_area,
                         a.saturated)
                    != (b.latency_cycles, b.energy, b.router_area,
                        b.saturated))
                assert not better_everywhere

    def test_front_contains_the_minimum_of_each_objective(self):
        points = small_sweep()
        front = pareto_front(points)
        front_keys = {(p.topology, p.workload, p.placement) for p in front}
        for objective in ("latency_cycles", "energy", "router_area"):
            best = min(points, key=lambda p: (getattr(p, objective),
                                              p.saturated))
            dominated_keys = {(p.topology, p.workload, p.placement)
                              for p in points
                              if getattr(p, objective)
                              == getattr(best, objective)}
            assert front_keys & dominated_keys

    def test_dominated_point_is_dropped(self):
        good = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 10.0, 10.0,
                           0.5, False)
        bad = DesignPoint("ring", "linear", "w", 4, 4, 20, 9.0, 20.0, 20.0,
                          0.5, False)
        assert pareto_front([good, bad]) == [good]

    def test_incomparable_points_both_survive(self):
        fast = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 30.0, 10.0,
                           0.5, False)
        frugal = DesignPoint("ring", "linear", "w", 4, 4, 30, 9.0, 10.0, 5.0,
                             0.5, False)
        assert pareto_front([fast, frugal]) == [fast, frugal]

    def test_unknown_objective_rejected(self):
        point = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 10.0, 10.0,
                            0.5, False)
        with pytest.raises(ConfigurationError):
            pareto_front([point], objectives=("beauty",))

    def test_per_workload_fronts_partition_the_sweep(self):
        points = small_sweep()
        fronts = pareto_by_workload(points)
        assert set(fronts) == {"uniform", "hotspot"}
        for workload, front in fronts.items():
            assert front
            assert all(point.workload == workload for point in front)

    def test_vectorized_front_matches_the_reference_on_random_points(self):
        # Conformance oracle for the skyline scan: on randomized point
        # sets (small integer coordinates force heavy ties, duplicates
        # and dominance chains) the vectorized front must equal the
        # O(n^2) scan exactly — same points, same input order.
        import numpy as np

        rng = np.random.default_rng(2004)
        for trial in range(25):
            count = int(rng.integers(1, 120))
            points = [
                DesignPoint(f"t{i}", "linear", "w", 4, 4,
                            int(rng.integers(1, 6)),
                            float(rng.integers(1, 6)),
                            float(rng.integers(1, 6)),
                            float(rng.integers(1, 6)),
                            0.5, bool(rng.integers(0, 2)))
                for i in range(count)]
            assert pareto_front(points) == pareto_front_reference(points)

    def test_vectorized_front_matches_the_reference_on_a_real_sweep(self):
        points = small_sweep()
        assert pareto_front(points) == pareto_front_reference(points)

    def test_empty_front(self):
        assert pareto_front([]) == []
        assert pareto_front_reference([]) == []

    def test_duplicate_points_all_survive(self):
        point = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 10.0, 10.0,
                            0.5, False)
        twin = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 10.0, 10.0,
                           0.5, False)
        assert pareto_front([point, twin]) == [point, twin]
        assert pareto_front_reference([point, twin]) == [point, twin]

class TestSaturationCurve:
    def curve(self, model="wormhole_adaptive"):
        return saturation_curve(Mesh2D(3, 3),
                                burst_traffic("transpose", 9, 64, 1, 7),
                                levels=(1, 2, 4, 8, 16), model=model)

    def test_points_cover_the_levels_in_order(self):
        curve = self.curve()
        assert [point.level for point in curve.points] == [1, 2, 4, 8, 16]
        assert curve.topology == "mesh_3x3"
        assert curve.model == "wormhole_adaptive"

    def test_levels_are_deduplicated_and_sorted(self):
        curve = saturation_curve(Mesh2D(3, 3),
                                 burst_traffic("transpose", 9, 64, 1, 7),
                                 levels=(8, 2, 8, 2), model="wormhole")
        assert [point.level for point in curve.points] == [2, 8]

    def test_knee_is_the_largest_unsaturated_level(self):
        curve = self.curve()
        unsaturated = [p.level for p in curve.points if not p.saturated]
        assert curve.knee == max(unsaturated)

    def test_knee_is_none_when_every_level_saturates(self):
        curve = saturation_curve(Mesh2D(3, 3), hotspot_traffic(9, 0, 64),
                                 levels=(4, 16, 64), model="wormhole")
        assert all(point.saturated for point in curve.points)
        assert curve.knee is None

    def test_points_match_individual_simulation(self):
        from repro.noc.sim import simulate
        curve = self.curve()
        traffic = burst_traffic("transpose", 9, 64, 1, 7)
        for point in curve.points:
            alone = simulate(Mesh2D(3, 3), traffic.scaled_peak(point.level),
                             model="wormhole_adaptive")
            assert point.delivered_flits == alone.delivered_flits
            assert point.mean_latency_cycles == alone.mean_latency_cycles
            assert (point.delivered_mean_latency_cycles
                    == alone.delivered_mean_latency_cycles)
            assert point.saturated == alone.saturated

    def test_latency_grows_with_injection_level(self):
        curve = self.curve()
        delivered = [point.delivered_mean_latency_cycles
                     for point in curve.points]
        assert delivered == sorted(delivered)

    def test_summary_round_trips(self):
        summary = self.curve().summary()
        assert summary["knee"] == self.curve().knee
        assert len(summary["points"]) == 5
        assert summary["points"][0]["level"] == 1

    def test_analytic_model_rejected(self):
        with pytest.raises(ConfigurationError):
            self.curve(model="analytic")

    def test_empty_or_invalid_levels_rejected(self):
        traffic = uniform_traffic(4, 8)
        with pytest.raises(ConfigurationError):
            saturation_curve(Mesh2D(2, 2), traffic, levels=())
        with pytest.raises(ConfigurationError):
            saturation_curve(Mesh2D(2, 2), traffic, levels=(0, 2))

    def test_plural_covers_the_product(self):
        curves = saturation_curves(
            [Mesh2D(2, 2), Ring(4)],
            {"uniform": uniform_traffic(4, 16),
             "transpose": transpose_traffic(4, 16)},
            levels=(1, 4), model="wormhole")
        assert len(curves) == 4
        assert {(c.topology, c.workload) for c in curves} == {
            ("mesh_2x2", "uniform"), ("mesh_2x2", "transpose"),
            ("ring_4", "uniform"), ("ring_4", "transpose")}
