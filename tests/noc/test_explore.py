"""Design-space explorer: sweeps and Pareto-front properties."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.explore import (
    DesignPoint,
    pareto_by_workload,
    pareto_front,
    sweep,
)
from repro.noc.topology import TOPOLOGY_FAMILIES, Mesh2D, Ring
from repro.noc.traffic import hotspot_traffic, transpose_traffic, uniform_traffic


def small_sweep():
    return sweep({"uniform": uniform_traffic(8, 3),
                  "hotspot": hotspot_traffic(8, 0, 5)},
                 placements=("linear",))


class TestSweep:
    def test_covers_every_family_and_workload(self):
        points = small_sweep()
        assert {point.topology.split("_")[0] for point in points} == \
            {"mesh", "torus", "ring", "mesh3d", "hub"}
        assert {point.workload for point in points} == {"uniform", "hotspot"}
        assert len(points) == len(TOPOLOGY_FAMILIES) * 2

    def test_explicit_topologies_and_placements(self):
        points = sweep({"transpose": transpose_traffic(6, 4)},
                       topologies=[Mesh2D(2, 3), Ring(6)],
                       placements=("linear", "spread"))
        assert len(points) == 4
        assert {point.placement for point in points} == {"linear", "spread"}

    def test_points_carry_consistent_metrics(self):
        for point in small_sweep():
            assert point.latency_cycles >= 1
            assert point.energy > 0
            assert point.router_area > 0
            assert point.node_count >= 8
            summary = point.summary()
            assert summary["topology"] == point.topology
            assert summary["latency_cycles"] == point.latency_cycles

    def test_batched_grouping_matches_individual_sweeps(self):
        together = sweep({"uniform": uniform_traffic(8, 3),
                          "hotspot": hotspot_traffic(8, 0, 5)},
                         placements=("linear",))
        alone = (sweep({"uniform": uniform_traffic(8, 3)},
                       placements=("linear",))
                 + sweep({"hotspot": hotspot_traffic(8, 0, 5)},
                         placements=("linear",)))
        key = lambda p: (p.topology, p.workload)
        assert {key(p): (p.latency_cycles, p.energy) for p in together} == \
            {key(p): (p.latency_cycles, p.energy) for p in alone}

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep({})


class TestParetoFront:
    def test_front_is_nonempty_subset(self):
        points = small_sweep()
        front = pareto_front(points)
        assert front
        assert set(id(p) for p in front) <= set(id(p) for p in points)

    def test_no_front_point_dominates_another(self):
        front = pareto_front(small_sweep())
        for a in front:
            for b in front:
                if a is b:
                    continue
                better_everywhere = (
                    a.latency_cycles <= b.latency_cycles
                    and a.energy <= b.energy
                    and a.router_area <= b.router_area
                    and a.saturated <= b.saturated
                    and (a.latency_cycles, a.energy, a.router_area,
                         a.saturated)
                    != (b.latency_cycles, b.energy, b.router_area,
                        b.saturated))
                assert not better_everywhere

    def test_front_contains_the_minimum_of_each_objective(self):
        points = small_sweep()
        front = pareto_front(points)
        front_keys = {(p.topology, p.workload, p.placement) for p in front}
        for objective in ("latency_cycles", "energy", "router_area"):
            best = min(points, key=lambda p: (getattr(p, objective),
                                              p.saturated))
            dominated_keys = {(p.topology, p.workload, p.placement)
                              for p in points
                              if getattr(p, objective)
                              == getattr(best, objective)}
            assert front_keys & dominated_keys

    def test_dominated_point_is_dropped(self):
        good = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 10.0, 10.0,
                           0.5, False)
        bad = DesignPoint("ring", "linear", "w", 4, 4, 20, 9.0, 20.0, 20.0,
                          0.5, False)
        assert pareto_front([good, bad]) == [good]

    def test_incomparable_points_both_survive(self):
        fast = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 30.0, 10.0,
                           0.5, False)
        frugal = DesignPoint("ring", "linear", "w", 4, 4, 30, 9.0, 10.0, 5.0,
                             0.5, False)
        assert pareto_front([fast, frugal]) == [fast, frugal]

    def test_unknown_objective_rejected(self):
        point = DesignPoint("mesh", "linear", "w", 4, 4, 10, 5.0, 10.0, 10.0,
                            0.5, False)
        with pytest.raises(ConfigurationError):
            pareto_front([point], objectives=("beauty",))

    def test_per_workload_fronts_partition_the_sweep(self):
        points = small_sweep()
        fronts = pareto_by_workload(points)
        assert set(fronts) == {"uniform", "hotspot"}
        for workload, front in fronts.items():
            assert front
            assert all(point.workload == workload for point in front)
