"""Seeded randomized parity: batched NoC simulation against the scalar
reference, mirroring ``tests/engine/test_randomized_parity.py``.

Random (topology, traffic-batch) pairs are drawn under fixed seeds across
every topology family, both simulation models, mixed flow densities and
flit loads — asserting the batched implementation is **integer-identical**
to per-matrix scalar simulation: per-flow latencies, link loads,
delivered-flit counts, cycle counts and the integer energy aggregates.
"""

import numpy as np
import pytest

from repro.noc.sim import simulate, simulate_batched
from repro.noc.topology import (
    ClusterHubMesh,
    ExpressMesh,
    HubAndSpoke,
    Mesh2D,
    Mesh3D,
    Mesh3DSparse,
    MeshIoCenter,
    PillarTorus,
    Ring,
    Torus2D,
)
from repro.noc.traffic import TrafficMatrix


def random_topology(rng):
    kind = int(rng.integers(0, 10))
    if kind == 0:
        return Mesh2D(int(rng.integers(2, 4)), int(rng.integers(2, 4)))
    if kind == 1:
        return Torus2D(int(rng.integers(2, 4)), int(rng.integers(3, 5)))
    if kind == 2:
        return Ring(int(rng.integers(3, 9)))
    if kind == 3:
        return Mesh3D(int(rng.integers(1, 3)), int(rng.integers(2, 4)),
                      layers=2)
    if kind == 4:
        return ClusterHubMesh(int(rng.integers(1, 3)),
                              int(rng.integers(1, 3)),
                              cluster_side=int(rng.integers(1, 3)),
                              hub_speedup=int(rng.integers(1, 4)))
    if kind == 5:
        return Mesh3DSparse(int(rng.integers(2, 4)), int(rng.integers(2, 4)),
                            layers=2,
                            pillar_stride=int(rng.integers(1, 4)))
    if kind == 6:
        return PillarTorus(int(rng.integers(2, 4)), int(rng.integers(2, 4)),
                           layers=2,
                           pillar_stride=int(rng.integers(1, 4)))
    if kind == 7:
        return ExpressMesh(int(rng.integers(2, 5)), int(rng.integers(3, 6)),
                           stride=int(rng.integers(2, 4)))
    if kind == 8:
        return MeshIoCenter(int(rng.integers(1, 4)), int(rng.integers(2, 5)))
    return HubAndSpoke(int(rng.integers(2, 8)),
                       hubs=int(rng.integers(1, 3)))


def random_traffic_batch(rng, agent_count, batch):
    """A batch of matrices over one agent set with mixed densities."""
    agents = tuple(f"n{i}" for i in range(agent_count))
    matrices = []
    for index in range(batch):
        density = float(rng.uniform(0.1, 0.9))
        flits = rng.integers(1, 12, (agent_count, agent_count))
        mask = rng.random((agent_count, agent_count)) < density
        matrix = np.where(mask, flits, 0).astype(np.int64)
        np.fill_diagonal(matrix, 0)
        matrices.append(TrafficMatrix(agents, matrix, name=f"t{index}"))
    return matrices


def assert_results_identical(scalar, batched):
    assert np.array_equal(scalar.per_flow_latency, batched.per_flow_latency)
    assert np.array_equal(scalar.per_flow_delivered,
                          batched.per_flow_delivered)
    assert np.array_equal(scalar.link_loads, batched.link_loads)
    assert scalar.delivered_flits == batched.delivered_flits
    assert scalar.censored_flow_count == batched.censored_flow_count
    assert (scalar.delivered_mean_latency_cycles
            == batched.delivered_mean_latency_cycles)
    assert scalar.cycles == batched.cycles
    assert scalar.flit_link_cycles == batched.flit_link_cycles
    assert scalar.flit_router_crossings == batched.flit_router_crossings
    assert scalar.energy == batched.energy
    assert scalar.saturated == batched.saturated


class TestAnalyticParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_cases(self, seed):
        rng = np.random.default_rng(4000 + seed)
        for _ in range(4):                        # 40 drawn batches
            topology = random_topology(rng)
            agent_count = int(rng.integers(2, topology.node_count + 1))
            batch = int(rng.integers(1, 5))
            traffics = random_traffic_batch(rng, agent_count, batch)
            batched = simulate_batched(topology, traffics, model="analytic")
            for traffic, result in zip(traffics, batched):
                scalar = simulate(topology, traffic, model="analytic")
                assert_results_identical(scalar, result)


class TestWormholeParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_cases(self, seed):
        rng = np.random.default_rng(5000 + seed)
        for _ in range(3):                        # 30 drawn batches
            topology = random_topology(rng)
            agent_count = int(rng.integers(2, topology.node_count + 1))
            batch = int(rng.integers(1, 4))
            traffics = random_traffic_batch(rng, agent_count, batch)
            batched = simulate_batched(topology, traffics, model="wormhole")
            for traffic, result in zip(traffics, batched):
                scalar = simulate(topology, traffic, model="wormhole")
                assert_results_identical(scalar, result)

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_under_exhausted_cycle_budget(self, seed):
        """Saturation censoring must match flit for flit."""
        rng = np.random.default_rng(6000 + seed)
        topology = random_topology(rng)
        agent_count = topology.node_count
        # Dense, heavy matrices: every pair ships >= 5 flits, so a budget
        # of a few cycles is guaranteed to censor some of them.
        agents = tuple(f"n{i}" for i in range(agent_count))
        traffics = []
        for index in range(3):
            matrix = rng.integers(5, 12, (agent_count, agent_count))
            np.fill_diagonal(matrix, 0)
            traffics.append(TrafficMatrix(agents, matrix, name=f"t{index}"))
        budget = int(rng.integers(2, 9))
        batched = simulate_batched(topology, traffics, model="wormhole",
                                   max_cycles=budget)
        for traffic, result in zip(traffics, batched):
            scalar = simulate(topology, traffic, model="wormhole",
                              max_cycles=budget)
            assert_results_identical(scalar, result)
            assert scalar.saturated
            assert scalar.delivered_flits < scalar.total_flits

    def test_parity_with_scaling(self):
        rng = np.random.default_rng(6500)
        topology = Mesh2D(3, 3)
        traffics = random_traffic_batch(rng, 9, 2)
        heavy = [TrafficMatrix(t.agents, t.flits * 1000, name=t.name)
                 for t in traffics]
        batched = simulate_batched(topology, heavy, model="wormhole",
                                   max_flits_per_flow=6)
        for traffic, result in zip(heavy, batched):
            scalar = simulate(topology, traffic, model="wormhole",
                              max_flits_per_flow=6)
            assert_results_identical(scalar, result)


class TestAdaptiveWormholeParity:
    """Congestion-aware routing decisions must be bit-identical between
    the scalar reference and the batched implementation: same outport
    choices, same escape fallbacks, same link arbitration."""

    @pytest.mark.parametrize("seed", range(13))
    def test_random_cases(self, seed):
        """>= 52 random (topology, batch) draws across every family."""
        rng = np.random.default_rng(7000 + seed)
        for _ in range(4):                        # 52 drawn batches
            topology = random_topology(rng)
            agent_count = int(rng.integers(2, topology.node_count + 1))
            batch = int(rng.integers(1, 4))
            traffics = random_traffic_batch(rng, agent_count, batch)
            batched = simulate_batched(topology, traffics,
                                       model="wormhole_adaptive")
            for traffic, result in zip(traffics, batched):
                scalar = simulate(topology, traffic,
                                  model="wormhole_adaptive")
                assert_results_identical(scalar, result)

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_under_exhausted_cycle_budget(self, seed):
        """Censoring under a tiny budget must match flit for flit."""
        rng = np.random.default_rng(7500 + seed)
        topology = random_topology(rng)
        agent_count = topology.node_count
        agents = tuple(f"n{i}" for i in range(agent_count))
        traffics = []
        for index in range(3):
            matrix = rng.integers(5, 12, (agent_count, agent_count))
            np.fill_diagonal(matrix, 0)
            traffics.append(TrafficMatrix(agents, matrix, name=f"t{index}"))
        budget = int(rng.integers(2, 9))
        batched = simulate_batched(topology, traffics,
                                   model="wormhole_adaptive",
                                   max_cycles=budget)
        for traffic, result in zip(traffics, batched):
            scalar = simulate(topology, traffic, model="wormhole_adaptive",
                              max_cycles=budget)
            assert_results_identical(scalar, result)
            assert scalar.saturated
            assert scalar.delivered_flits < scalar.total_flits

    @pytest.mark.parametrize("seed", range(4))
    def test_parity_with_burst_injection(self, seed):
        """Duty-cycled injection must replay identically in both
        implementations (and in the static wormhole model)."""
        rng = np.random.default_rng(7800 + seed)
        topology = random_topology(rng)
        agent_count = int(rng.integers(2, topology.node_count + 1))
        traffics = [t.with_burst(int(rng.integers(1, 5)),
                                 int(rng.integers(0, 9)))
                    for t in random_traffic_batch(rng, agent_count, 2)]
        for model in ("wormhole", "wormhole_adaptive"):
            batched = simulate_batched(topology, traffics, model=model)
            for traffic, result in zip(traffics, batched):
                scalar = simulate(topology, traffic, model=model)
                assert_results_identical(scalar, result)


class TestModelAgreement:
    """The two models agree on structure even though latencies differ."""

    @pytest.mark.parametrize("seed", range(4))
    def test_loads_and_energy_match_across_models(self, seed):
        rng = np.random.default_rng(6600 + seed)
        topology = random_topology(rng)
        traffic = random_traffic_batch(rng, topology.node_count, 1)[0]
        analytic = simulate(topology, traffic, model="analytic")
        wormhole = simulate(topology, traffic, model="wormhole")
        assert wormhole.delivered_flits == wormhole.total_flits
        # Fully delivered: both models see identical link crossings and
        # therefore identical transfer energy.
        assert np.array_equal(analytic.link_loads, wormhole.link_loads)
        assert analytic.flit_link_cycles == wormhole.flit_link_cycles
        assert (analytic.flit_router_crossings
                == wormhole.flit_router_crossings)
        assert analytic.energy == wormhole.energy

    def test_wormhole_never_beats_zero_load_latency(self):
        rng = np.random.default_rng(6700)
        topology = Mesh2D(3, 3)
        traffic = random_traffic_batch(rng, 9, 1)[0]
        result = simulate(topology, traffic, model="wormhole")
        placement = {agent: index for index, agent in
                     enumerate(traffic.agents)}
        for latency, (source, sink, flits) in zip(result.per_flow_latency,
                                                  traffic.flows()):
            zero_load = (topology.route_latency(placement[traffic.agents[source]],
                                                placement[traffic.agents[sink]])
                         + flits - 1)
            assert latency >= zero_load - topology.hop_distance(
                placement[traffic.agents[source]],
                placement[traffic.agents[sink]])
