"""Topology invariants: distances, wraparound, degrees, placement."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.noc.topology import (
    TOPOLOGY_FAMILIES,
    TSV_CYCLES,
    HubAndSpoke,
    Link,
    Mesh2D,
    Mesh3D,
    Ring,
    Torus2D,
    place_agents,
    standard_topologies,
    topology_by_name,
)


def every_topology():
    return [Mesh2D(3, 4), Torus2D(3, 4), Ring(7), Mesh3D(2, 3, 2),
            HubAndSpoke(6), HubAndSpoke(6, hubs=2)]


class TestInvariants:
    @pytest.mark.parametrize("topology", every_topology(),
                             ids=lambda t: t.name)
    def test_hop_distance_is_symmetric(self, topology):
        for a in range(topology.node_count):
            for b in range(a + 1, topology.node_count):
                assert topology.hop_distance(a, b) == topology.hop_distance(b, a)

    @pytest.mark.parametrize("topology", every_topology(),
                             ids=lambda t: t.name)
    def test_routes_are_valid_walks(self, topology):
        for a in range(topology.node_count):
            for b in range(topology.node_count):
                path = topology.route(a, b)
                assert path[0] == a and path[-1] == b
                for here, there in zip(path, path[1:]):
                    assert there in topology.neighbours(here)
                assert len(set(path)) == len(path)   # no revisits

    @pytest.mark.parametrize("topology", every_topology(),
                             ids=lambda t: t.name)
    def test_degree_sums_to_twice_link_count(self, topology):
        total = sum(topology.degree(node)
                    for node in range(topology.node_count))
        assert total == 2 * topology.link_count


class TestMesh:
    def test_dimensions_and_counts(self):
        mesh = Mesh2D(3, 4)
        assert mesh.node_count == 12
        assert mesh.link_count == 3 * 3 + 2 * 4        # rows*(cols-1) + (rows-1)*cols
        assert mesh.diameter() == (3 - 1) + (4 - 1)

    def test_corner_has_degree_two(self):
        mesh = Mesh2D(3, 3)
        assert mesh.degree(mesh.node_at(0, 0)) == 2
        assert mesh.degree(mesh.node_at(1, 1)) == 4


class TestTorus:
    def test_wraparound_shortens_opposite_edges(self):
        torus = Torus2D(4, 4)
        assert torus.hop_distance(torus.node_at(0, 0),
                                  torus.node_at(0, 3)) == 1
        assert torus.hop_distance(torus.node_at(0, 0),
                                  torus.node_at(3, 0)) == 1

    def test_diameter_is_half_the_mesh(self):
        assert Torus2D(4, 4).diameter() == 4
        assert Mesh2D(4, 4).diameter() == 6

    def test_short_dimension_gets_no_duplicate_links(self):
        torus = Torus2D(2, 4)
        # Wrap only on the length-4 dimension: 2 rows of 3+1 links, plus
        # 4 column links (rows=2 is already fully connected columnwise).
        assert torus.link_count == 2 * 4 + 4

    def test_every_node_degree_four_on_large_torus(self):
        torus = Torus2D(3, 3)
        assert all(torus.degree(node) == 4
                   for node in range(torus.node_count))


class TestRing:
    def test_two_links_per_node(self):
        ring = Ring(6)
        assert all(ring.degree(node) == 2 for node in range(6))
        assert ring.link_count == 6

    def test_diameter_is_half_the_ring(self):
        assert Ring(6).diameter() == 3
        assert Ring(7).diameter() == 3

    def test_too_small_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            Ring(2)


class TestMesh3D:
    def test_vertical_links_are_slower(self):
        stacked = Mesh3D(2, 2, 2)
        below = stacked.node_at(0, 0, 0)
        above = stacked.node_at(1, 0, 0)
        assert stacked.link_latency(below, above) == TSV_CYCLES
        assert stacked.link_latency(below, stacked.node_at(0, 0, 1)) == 1

    def test_node_and_link_counts(self):
        stacked = Mesh3D(2, 3, 2)
        assert stacked.node_count == 12
        in_plane = 2 * (2 * 2 + 1 * 3)                 # per layer
        assert stacked.link_count == in_plane + 6       # plus one TSV per site

    def test_routes_prefer_in_plane_paths(self):
        # Crossing layers twice costs 2*TSV; staying in plane wins.
        stacked = Mesh3D(1, 3, 2, tsv_latency=4)
        path = stacked.route(stacked.node_at(0, 0, 0),
                             stacked.node_at(0, 0, 2))
        assert all(node < 3 for node in path)           # layer 0 only


class TestHubAndSpoke:
    def test_hub_degree_equals_spoke_count(self):
        hub = HubAndSpoke(6)
        assert hub.degree(hub.hub_nodes()[0]) == 6
        assert all(hub.degree(spoke) == 1 for spoke in range(6))

    def test_spoke_to_spoke_goes_through_hub(self):
        hub = HubAndSpoke(5)
        path = hub.route(0, 4)
        assert path == (0, hub.hub_nodes()[0], 4)

    def test_two_hubs_share_the_spokes(self):
        hub = HubAndSpoke(6, hubs=2)
        first, second = hub.hub_nodes()
        assert hub.degree(first) == 3 + 1               # spokes + peer hub
        assert hub.degree(second) == 3 + 1
        assert hub.hop_distance(0, 1) == 3              # spoke-hub-hub-spoke


class TestRegistry:
    def test_families_cover_the_issue_set(self):
        assert set(TOPOLOGY_FAMILIES) == {
            "mesh", "torus", "ring", "mesh3d", "hub",
            "cluster_hub", "mesh3d_sparse", "pillar_torus", "express",
            "mesh_io"}

    def test_classes_mirror_the_family_registry(self):
        from repro.noc.topology import TOPOLOGY_CLASSES

        assert set(TOPOLOGY_CLASSES) == set(TOPOLOGY_FAMILIES)

    @pytest.mark.parametrize("family", sorted(TOPOLOGY_FAMILIES))
    def test_factories_fit_requested_agents(self, family):
        for count in (1, 3, 5, 9, 16, 25):
            topology = topology_by_name(family, count)
            assert topology.node_count >= count

    def test_build_topology_matches_the_class(self):
        from repro.noc.topology import ClusterHubMesh, build_topology

        built = build_topology("cluster_hub", cluster_rows=2, cluster_cols=2,
                               cluster_side=2, hub_speedup=3)
        direct = ClusterHubMesh(2, 2, cluster_side=2, hub_speedup=3)
        assert built.fingerprint() == direct.fingerprint()

    def test_build_topology_rejects_unknown_family(self):
        from repro.noc.topology import build_topology

        with pytest.raises(ConfigurationError):
            build_topology("hypercube", rows=2, cols=2)

    def test_standard_topologies_instantiates_every_family(self):
        names = [topology.name for topology in standard_topologies(8)]
        assert len(names) == len(TOPOLOGY_FAMILIES)

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            topology_by_name("hypercube", 8)

    def test_duplicate_links_rejected(self):
        from repro.noc.topology import Topology

        with pytest.raises(ConfigurationError):
            Topology("dup", 2, [Link(0, 1), Link(1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Link(1, 1)


class TestNearSquare:
    """Regression: the grid sizer rounds to the *nearest* square root.

    Truncating ``sqrt`` gave 3 agents a degenerate 1x3 strip and 8
    agents a 2x4 — the nearest-root grids are 2x2 and 3x3.
    """

    @pytest.mark.parametrize("count,shape", [
        (1, (1, 1)), (2, (1, 2)), (3, (2, 2)), (4, (2, 2)), (5, (2, 3)),
        (6, (2, 3)), (7, (3, 3)), (8, (3, 3)), (9, (3, 3)), (12, (3, 4)),
        (13, (4, 4)), (16, (4, 4))])
    def test_pinned_shapes(self, count, shape):
        from repro.noc.topology import _near_square

        assert _near_square(count) == shape
        assert shape[0] * shape[1] >= count

    def test_mesh_names_reflect_the_new_shapes(self):
        assert topology_by_name("mesh", 3).name == "mesh_2x2"
        assert topology_by_name("mesh", 8).name == "mesh_3x3"

    def test_changed_shapes_change_cache_keys_safely(self):
        # The 8-agent mesh is now structurally a 3x3: its fingerprint —
        # the digest NocMapPass signatures and FlowCache keys hang off —
        # must equal a directly built 3x3 and differ from the old 2x4,
        # so stale cached metrics cannot be served for the new shape.
        from repro.noc.passes import NocMapPass

        resized = topology_by_name("mesh", 8)
        assert resized.fingerprint() == Mesh2D(3, 3).fingerprint()
        assert resized.fingerprint() != Mesh2D(2, 4).fingerprint()
        assert (NocMapPass(topology=resized).signature()
                != NocMapPass(topology=Mesh2D(2, 4)).signature())


class TestPlacement:
    def test_linear_takes_ids_in_order(self):
        placement = place_agents(["a", "b", "c"], Mesh2D(2, 2))
        assert placement == {"a": 0, "b": 1, "c": 2}

    def test_spread_uses_the_full_id_range(self):
        placement = place_agents(["a", "b"], Ring(8), strategy="spread")
        assert placement["a"] == 0 and placement["b"] == 7

    def test_spread_assigns_distinct_nodes(self):
        agents = [f"a{i}" for i in range(5)]
        placement = place_agents(agents, Mesh2D(2, 3), strategy="spread")
        assert len(set(placement.values())) == len(agents)

    def test_spread_is_deterministic_injective_and_in_range(self):
        # Property test over many (node_count, agent_count) pairs: the
        # spread placement never collides, never leaves the id range,
        # and is a pure function of its inputs.
        for node_count in range(1, 30):
            topology = Ring(node_count) if node_count >= 3 \
                else Mesh2D(1, node_count)
            for agent_count in range(1, node_count + 1):
                agents = [f"a{i}" for i in range(agent_count)]
                first = place_agents(agents, topology, strategy="spread")
                second = place_agents(agents, topology, strategy="spread")
                assert first == second
                nodes = list(first.values())
                assert len(set(nodes)) == agent_count
                assert all(0 <= node < node_count for node in nodes)
                # Endpoint agents anchor the ends of the id range.
                assert first[agents[0]] == 0
                if agent_count > 1:
                    assert first[agents[-1]] == node_count - 1

    def test_collisions_probe_outward_not_around(self):
        # Regression: the old resolver wrapped (node + 1) % count, which
        # teleported a late agent from the top of the id range to router
        # 0.  The probe must find the *closest* free slot instead.
        from repro.noc.topology import _nearest_free

        assert _nearest_free(7, {7, 6}, 8) == 5      # walks down, not to 0
        assert _nearest_free(4, {4}, 8) == 5         # ties prefer higher ids
        assert _nearest_free(0, {0, 1}, 8) == 2
        assert _nearest_free(3, set(), 8) == 3
        with pytest.raises(ConfigurationError):
            _nearest_free(0, {0, 1}, 2)

    def test_hub_strategy_puts_first_agent_on_highest_degree(self):
        hub = HubAndSpoke(5)
        placement = place_agents(["memory", "a", "b"], hub, strategy="hub")
        assert placement["memory"] == hub.hub_nodes()[0]

    def test_too_many_agents_rejected(self):
        with pytest.raises(ConfigurationError):
            place_agents([f"a{i}" for i in range(5)], Mesh2D(2, 2))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            place_agents(["a"], Mesh2D(2, 2), strategy="random")
