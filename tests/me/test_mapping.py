"""Tests of the ME architecture mapping onto the ME array."""

import pytest

from repro.arrays.me_array import MEArrayGeometry, build_me_array
from repro.core.exceptions import CapacityError
from repro.me.mapping import (
    build_systolic_netlist,
    map_me_design,
    map_pe,
    map_systolic_array,
)


class TestSystolicNetlist:
    def test_cluster_counts_for_default_geometry(self):
        netlist = build_systolic_netlist()
        usage = netlist.cluster_usage()
        assert usage.register_mux == 64
        assert usage.abs_diff == 64
        assert usage.add_acc == 64
        assert usage.comparators == 1
        assert usage.total_clusters == 193

    def test_smaller_geometry_scales_linearly(self):
        netlist = build_systolic_netlist(module_count=2, pes_per_module=4)
        usage = netlist.cluster_usage()
        assert usage.register_mux == 8
        assert usage.total_clusters == 8 * 3 + 1

    def test_pixel_shift_chain_connects_neighbouring_pes(self):
        netlist = build_systolic_netlist(module_count=1, pes_per_module=4)
        assert any(net.source == "m0_pe0_mux" and net.sink == "m0_pe1_mux"
                   for net in netlist.nets)

    def test_every_module_feeds_the_comparator(self):
        netlist = build_systolic_netlist(module_count=4, pes_per_module=4)
        sources = {net.source for net in netlist.fanin("min_comparator")}
        assert len(sources) == 4


class TestMappingFlow:
    # These exercise the deprecated shims on purpose; internal code goes
    # through repro.flow.compile instead.
    def test_single_pe_maps_onto_default_array(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_pe()
        assert mapped.usage.total_clusters == 3
        assert mapped.routing is not None

    def test_full_systolic_engine_fits_the_default_array(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_systolic_array()
        assert mapped.usage.total_clusters == 193
        assert len(mapped.placement) == 193
        assert mapped.metrics.routed_hops > 0

    def test_too_small_array_raises_capacity_error(self):
        tiny = build_me_array(MEArrayGeometry(rows=2, mux_columns=1,
                                              abs_diff_columns=1,
                                              add_acc_columns=1,
                                              comparator_columns=1))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(CapacityError):
                map_me_design(build_systolic_netlist(), tiny)

    def test_skipping_place_and_route_is_faster_path(self):
        with pytest.warns(DeprecationWarning):
            mapped = map_systolic_array(run_place_and_route=False)
        assert mapped.placement is None
        assert mapped.usage.total_clusters == 193
