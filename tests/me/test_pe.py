"""Tests of the ME processing element (Fig. 10)."""

import numpy as np
import pytest

from repro.me.pe import ProcessingElement, build_pe_netlist
from repro.me.sad import sad


class TestProcessingElement:
    def test_accumulates_absolute_differences(self):
        pe = ProcessingElement()
        pe.cycle(100, 90)
        pe.cycle(10, 30)
        assert pe.sad == 10 + 20

    def test_matches_software_sad_over_a_row(self, rng):
        current = rng.integers(0, 256, 16)
        reference = rng.integers(0, 256, 16)
        pe = ProcessingElement()
        for c, r in zip(current, reference):
            pe.cycle(int(c), int(r))
        assert pe.sad == sad(current.reshape(1, -1), reference.reshape(1, -1))

    def test_reset_clears_state(self):
        pe = ProcessingElement()
        pe.cycle(200, 0)
        pe.reset()
        assert pe.sad == 0
        assert pe.cycles == 0

    def test_delayed_reference_path_uses_previous_broadcast(self):
        pe = ProcessingElement()
        pe.cycle(0, 50)                                   # loads 50 into the mux register
        pe.cycle(0, 99, use_delayed_reference=True)       # uses the delayed 50
        assert pe.sad == 50 + 50

    def test_activity_counters_accumulate(self):
        pe = ProcessingElement()
        pe.cycle(255, 0)
        assert pe.total_toggles() > 0

    def test_cluster_usage_matches_fig10(self):
        usage = ProcessingElement.cluster_usage()
        assert usage.register_mux == 1
        assert usage.abs_diff == 1
        assert usage.add_acc == 1
        assert usage.total_clusters == 3


class TestPENetlist:
    def test_netlist_has_three_clusters_and_two_nets(self):
        netlist = build_pe_netlist()
        assert len(netlist) == 3
        assert len(netlist.nets) == 2

    def test_netlist_usage_matches_behavioural_model(self):
        assert (build_pe_netlist().cluster_usage().as_table_row()
                == ProcessingElement.cluster_usage().as_table_row())
