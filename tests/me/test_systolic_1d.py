"""Tests of the 1-D systolic baseline and the throughput comparison."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.me.full_search import full_search
from repro.me.systolic import SystolicArray
from repro.me.systolic_1d import Systolic1DArray, required_frequency


class TestSystolic1D:
    def test_motion_vector_matches_full_search(self, frame_pair):
        reference, current = frame_pair
        hardware = Systolic1DArray().search(current, reference, 16, 16, 16, 3)
        software = full_search(current, reference, 16, 16, 16, 3)
        assert hardware.motion_vector == software.motion_vector
        assert hardware.best.sad == software.best.sad

    def test_needs_four_times_the_cycles_of_the_2d_array(self, frame_pair):
        # One candidate at a time versus four concurrent PE modules.
        reference, current = frame_pair
        one_d = Systolic1DArray().search(current, reference, 16, 16, 16, 2)
        two_d = SystolicArray().search(current, reference, 16, 16, 16, 2)
        assert one_d.cycles == 4 * two_d.cycles

    def test_first_sad_latency_matches_block_rows(self, frame_pair):
        reference, current = frame_pair
        result = Systolic1DArray().search(current, reference, 16, 16, 16, 2)
        assert result.first_sad_cycle == 16

    def test_uses_quarter_of_the_pes(self):
        assert Systolic1DArray().pe_total == SystolicArray().pe_count // 4

    def test_invalid_pe_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Systolic1DArray(pe_count=0)

    def test_block_outside_frame_rejected(self, frame_pair):
        reference, current = frame_pair
        with pytest.raises(ConfigurationError):
            Systolic1DArray().search(current, reference, 60, 60, 16, 2)


class TestThroughputRequirement:
    def test_higher_cycle_count_needs_higher_frequency(self):
        slow = required_frequency(4096, architecture="1d")
        fast = required_frequency(1024, architecture="2d")
        assert slow.required_frequency_hz == 4 * fast.required_frequency_hz

    def test_qcif_at_30fps_macroblock_rate(self):
        requirement = required_frequency(1000)
        assert requirement.macroblocks_per_second == pytest.approx(11 * 9 * 30.0)

    def test_1d_array_needs_higher_clock_for_the_same_workload(self, frame_pair):
        # The motivation of Sec. 4: 1-D arrays "require high operating
        # frequencies in order to fulfill the data-flow requirements".
        reference, current = frame_pair
        one_d = Systolic1DArray().search(current, reference, 16, 16, 16, 4)
        two_d = SystolicArray().search(current, reference, 16, 16, 16, 4)
        f_1d = required_frequency(one_d.cycles, architecture="1d").required_frequency_hz
        f_2d = required_frequency(two_d.cycles, architecture="2d").required_frequency_hz
        assert f_1d > 3.9 * f_2d
