"""Tests of the SAD matching criterion."""

import numpy as np
import pytest

from repro.me.sad import (
    block_at,
    mean_absolute_difference,
    sad,
    sad_at,
    sad_bit_width,
    saturated_sad,
)


class TestSad:
    def test_identical_blocks_have_zero_sad(self, rng):
        block = rng.integers(0, 256, (16, 16))
        assert sad(block, block) == 0

    def test_sad_matches_numpy_formula(self, rng):
        a = rng.integers(0, 256, (8, 8))
        b = rng.integers(0, 256, (8, 8))
        assert sad(a, b) == int(np.sum(np.abs(a.astype(int) - b.astype(int))))

    def test_sad_is_symmetric(self, rng):
        a = rng.integers(0, 256, (8, 8))
        b = rng.integers(0, 256, (8, 8))
        assert sad(a, b) == sad(b, a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sad(np.zeros((8, 8)), np.zeros((16, 16)))

    def test_saturated_sad_is_the_upper_bound(self):
        worst = sad(np.zeros((16, 16)), np.full((16, 16), 255))
        assert worst == saturated_sad(16)

    def test_bit_width_covers_the_block_sizes_of_the_paper(self):
        # Sec. 4: block size "could be 8, 16 or 32"; the ME array's 16-bit
        # accumulators must cover the 16x16 macroblock case.
        assert sad_bit_width(8) <= 16
        assert sad_bit_width(16) == 16
        assert sad_bit_width(32) == 18

    def test_mean_absolute_difference(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 10)
        assert mean_absolute_difference(a, b) == 10.0


class TestBlockAccess:
    def test_block_at_extracts_expected_region(self, rng):
        frame = rng.integers(0, 256, (32, 32))
        block = block_at(frame, 8, 4, 16)
        assert np.array_equal(block, frame[8:24, 4:20])

    def test_block_at_rejects_out_of_frame(self, rng):
        frame = rng.integers(0, 256, (32, 32))
        with pytest.raises(ValueError):
            block_at(frame, 20, 20, 16)

    def test_sad_at_zero_displacement(self, frame_pair):
        reference, current = frame_pair
        value = sad_at(current, reference, 16, 16, 0, 0, 16)
        assert value == sad(current[16:32, 16:32], reference[16:32, 16:32])

    def test_sad_at_saturates_outside_the_frame(self, frame_pair):
        reference, current = frame_pair
        assert sad_at(current, reference, 0, 0, -10, -10, 16) == saturated_sad(16)
