"""Tests of the full-search block-matching reference."""

import numpy as np
import pytest

from repro.me.full_search import (
    candidate_displacements,
    full_search,
    full_search_frame,
    motion_field,
)
from repro.me.sad import sad_at
from repro.video.frames import panning_sequence


class TestCandidates:
    def test_window_size_without_upper_edge(self):
        assert len(candidate_displacements(8)) == 16 * 16

    def test_window_size_with_upper_edge(self):
        assert len(candidate_displacements(8, include_upper=True)) == 17 * 17

    def test_zero_displacement_always_included(self):
        assert (0, 0) in candidate_displacements(4)


class TestSingleBlock:
    def test_recovers_known_global_motion(self, small_sequence):
        reference, current = small_sequence.frame(0), small_sequence.frame(1)
        result = full_search(current, reference, 16, 16, 16, 4)
        assert result.motion_vector == small_sequence.ground_truth_background_vector()
        assert result.best.sad == 0

    def test_static_scene_returns_zero_vector(self):
        sequence = panning_sequence(height=64, width=64, pan=(0, 0), seed=2)
        reference, current = sequence.frame(0), sequence.frame(1)
        result = full_search(current, reference, 16, 16, 16, 4)
        assert result.motion_vector == (0, 0)

    def test_best_sad_is_truly_the_minimum(self, frame_pair):
        reference, current = frame_pair
        result = full_search(current, reference, 16, 16, 16, 3)
        for dy, dx in candidate_displacements(3):
            assert result.best.sad <= sad_at(current, reference, 16, 16, dy, dx, 16)

    def test_operation_count_matches_window(self, frame_pair):
        reference, current = frame_pair
        result = full_search(current, reference, 16, 16, 16, 2)
        assert result.candidates_evaluated == 16
        assert result.sad_operations == 16 * 256

    def test_larger_search_range_never_worsens_the_match(self, frame_pair):
        reference, current = frame_pair
        small = full_search(current, reference, 16, 16, 16, 2)
        large = full_search(current, reference, 16, 16, 16, 6)
        assert large.best.sad <= small.best.sad


class TestFrameSearch:
    def test_motion_field_shape(self, frame_pair):
        reference, current = frame_pair
        results = full_search_frame(current, reference, block_size=16, search_range=2)
        field = motion_field(results)
        assert field.shape == (4, 4, 2)

    def test_interior_blocks_follow_the_pan(self, small_sequence):
        # Border macroblocks see new content entering the frame, so only the
        # interior blocks are required to recover the global pan exactly.
        reference, current = small_sequence.frame(0), small_sequence.frame(1)
        results = full_search_frame(current, reference, block_size=16, search_range=4)
        field = motion_field(results)
        expected = np.array(small_sequence.ground_truth_background_vector())
        interior = field[1:-1, 1:-1]
        assert np.all(interior == expected)
