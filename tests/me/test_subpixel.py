"""Tests of the half-pel motion-vector refinement."""

import numpy as np
import pytest

from repro.me.full_search import full_search
from repro.me.subpixel import HALF_PEL_OFFSETS, half_pel_refine
from repro.video.frames import panning_sequence
from repro.video.motion_compensation import predict_block


class TestHalfPelRefinement:
    def test_refinement_never_worsens_the_sad(self, frame_pair):
        reference, current = frame_pair
        integer = full_search(current, reference, 16, 16, 16, 3)
        refined = half_pel_refine(current, reference, 16, 16, integer)
        assert refined.refined_sad <= refined.integer_sad

    def test_integer_motion_keeps_the_integer_vector(self, small_sequence):
        # The synthetic pan is an exact integer translation, so no half-pel
        # candidate can beat the SAD-0 integer match.
        reference, current = small_sequence.frame(0), small_sequence.frame(1)
        integer = full_search(current, reference, 16, 16, 16, 4)
        refined = half_pel_refine(current, reference, 16, 16, integer)
        assert refined.refined_vector == tuple(map(float, integer.motion_vector))
        assert not refined.improved

    def test_true_half_pel_motion_is_recovered(self):
        # Build a current frame that genuinely sits half a pixel away from
        # the reference by averaging horizontally shifted copies.
        rng = np.random.default_rng(3)
        base = rng.integers(0, 256, (48, 64)).astype(float)
        smooth = (base + np.roll(base, 1, axis=1) + np.roll(base, -1, axis=1)) / 3.0
        reference = np.rint(smooth).astype(np.int64)
        current = np.rint((smooth + np.roll(smooth, -1, axis=1)) / 2.0).astype(np.int64)
        integer = full_search(current, reference, 16, 16, 16, 2)
        refined = half_pel_refine(current, reference, 16, 16, integer)
        assert refined.improved
        assert refined.refined_vector[1] % 1 == 0.5

    def test_candidate_and_interpolation_accounting(self, frame_pair):
        reference, current = frame_pair
        integer = full_search(current, reference, 16, 16, 16, 2)
        refined = half_pel_refine(current, reference, 16, 16, integer)
        assert 1 <= refined.candidates_evaluated <= len(HALF_PEL_OFFSETS)
        assert refined.interpolation_operations > 0

    def test_refined_vector_prediction_is_valid(self, frame_pair):
        reference, current = frame_pair
        integer = full_search(current, reference, 16, 16, 16, 3)
        refined = half_pel_refine(current, reference, 16, 16, integer)
        prediction = predict_block(reference, 16, 16, refined.refined_vector, 16)
        assert prediction.shape == (16, 16)
