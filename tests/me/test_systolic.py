"""Tests of the 4x16 systolic motion-estimation array (Fig. 11)."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.me.full_search import full_search
from repro.me.systolic import PEModule, SystolicArray


class TestPEModule:
    def test_computes_block_sad_row_by_row(self, rng):
        current = rng.integers(0, 256, (4, 4))
        reference = rng.integers(0, 256, (4, 4))
        module = PEModule(pe_count=4)
        for row in range(4):
            module.feed_row(current[row], reference[row])
        expected = int(np.sum(np.abs(current.astype(int) - reference.astype(int))))
        assert module.sad == expected
        assert module.cycles == 4

    def test_reset_between_candidates(self, rng):
        module = PEModule(pe_count=4)
        module.feed_row([255, 255, 255, 255], [0, 0, 0, 0])
        module.reset()
        assert module.sad == 0

    def test_mismatched_row_lengths_rejected(self):
        module = PEModule(pe_count=8)
        with pytest.raises(ConfigurationError):
            module.feed_row([1, 2, 3], [1, 2])

    def test_row_wider_than_module_rejected(self):
        module = PEModule(pe_count=2)
        with pytest.raises(ConfigurationError):
            module.feed_row([1, 2, 3], [1, 2, 3])

    def test_narrow_row_uses_leading_pes(self):
        module = PEModule(pe_count=8)
        module.feed_row([10, 20], [0, 0])
        assert module.sad == 30

    def test_invalid_pe_count_rejected(self):
        with pytest.raises(ConfigurationError):
            PEModule(pe_count=0)


class TestSystolicArray:
    def test_default_geometry_is_4x16(self):
        array = SystolicArray()
        assert array.module_count == 4
        assert array.pes_per_module == 16
        assert array.pe_count == 64

    def test_first_sad_after_16_cycles(self, frame_pair):
        # The paper: "The first round of SAD calculations would take 16
        # clock cycles."
        reference, current = frame_pair
        result = SystolicArray().search(current, reference, 16, 16,
                                        block_size=16, search_range=2)
        assert result.first_sad_cycle == 16

    def test_motion_vector_matches_full_search_reference(self, frame_pair):
        reference, current = frame_pair
        systolic = SystolicArray().search(current, reference, 16, 16,
                                          block_size=16, search_range=3)
        software = full_search(current, reference, 16, 16, 16, 3)
        assert systolic.motion_vector == software.motion_vector
        assert systolic.best.sad == software.best.sad

    def test_recovers_known_global_motion(self, small_sequence):
        reference, current = small_sequence.frame(0), small_sequence.frame(1)
        result = SystolicArray().search(current, reference, 16, 16,
                                        block_size=16, search_range=4)
        assert result.motion_vector == small_sequence.ground_truth_background_vector()

    def test_cycle_count_scales_with_candidate_count(self, frame_pair):
        reference, current = frame_pair
        array = SystolicArray()
        small = array.search(current, reference, 16, 16, 16, 2)
        large = SystolicArray().search(current, reference, 16, 16, 16, 4)
        assert small.candidates_evaluated == 16
        assert large.candidates_evaluated == 64
        assert large.cycles > small.cycles

    def test_four_candidates_processed_per_round(self, frame_pair):
        reference, current = frame_pair
        result = SystolicArray().search(current, reference, 16, 16, 16, 2)
        assert result.rounds == -(-result.candidates_evaluated // 4)
        assert result.cycles == result.rounds * 16

    def test_broadcast_reduces_memory_traffic(self, frame_pair):
        reference, current = frame_pair
        result = SystolicArray().search(current, reference, 16, 16, 16, 4)
        assert result.broadcast_pixel_fetches < result.reference_pixel_fetches
        assert 0.0 < result.memory_bandwidth_reduction < 1.0

    def test_smaller_block_size_supported(self, frame_pair):
        reference, current = frame_pair
        systolic = SystolicArray().search(current, reference, 16, 16,
                                          block_size=8, search_range=2)
        software = full_search(current, reference, 16, 16, 8, 2)
        assert systolic.motion_vector == software.motion_vector

    def test_activity_counters_accumulate(self, frame_pair):
        reference, current = frame_pair
        array = SystolicArray()
        array.search(current, reference, 16, 16, 16, 2)
        assert array.total_toggles() > 0

    def test_misaligned_block_size_rejected(self, frame_pair):
        reference, current = frame_pair
        with pytest.raises(ConfigurationError):
            SystolicArray().search(current, reference, 16, 16,
                                   block_size=24, search_range=2)

    def test_block_outside_frame_rejected(self, frame_pair):
        reference, current = frame_pair
        with pytest.raises(ConfigurationError):
            SystolicArray().search(current, reference, 60, 60,
                                   block_size=16, search_range=2)
