"""Tests of the fast (three-step, diamond) search algorithms."""

import pytest

from repro.me.fast_search import diamond_search, search_by_name, three_step_search
from repro.me.full_search import full_search


class TestThreeStep:
    def test_recovers_known_global_motion(self, small_sequence):
        reference, current = small_sequence.frame(0), small_sequence.frame(1)
        result = three_step_search(current, reference, 16, 16, 16, 4)
        assert result.motion_vector == small_sequence.ground_truth_background_vector()

    def test_evaluates_fewer_candidates_than_full_search(self, frame_pair):
        reference, current = frame_pair
        fast = three_step_search(current, reference, 16, 16, 16, 8)
        full = full_search(current, reference, 16, 16, 16, 8)
        assert fast.candidates_evaluated < full.candidates_evaluated
        assert fast.sad_operations < full.sad_operations

    def test_never_better_than_full_search(self, frame_pair):
        reference, current = frame_pair
        fast = three_step_search(current, reference, 32, 16, 16, 8)
        full = full_search(current, reference, 32, 16, 16, 8)
        assert fast.best.sad >= full.best.sad

    def test_stays_within_the_search_window(self, frame_pair):
        reference, current = frame_pair
        result = three_step_search(current, reference, 16, 16, 16, 4)
        dy, dx = result.motion_vector
        assert abs(dy) <= 4 and abs(dx) <= 4


class TestDiamond:
    def test_recovers_known_global_motion(self, small_sequence):
        reference, current = small_sequence.frame(0), small_sequence.frame(1)
        result = diamond_search(current, reference, 16, 16, 16, 4)
        assert result.motion_vector == small_sequence.ground_truth_background_vector()

    def test_evaluates_fewer_candidates_than_full_search(self, frame_pair):
        reference, current = frame_pair
        fast = diamond_search(current, reference, 16, 16, 16, 8)
        full = full_search(current, reference, 16, 16, 16, 8)
        assert fast.candidates_evaluated < full.candidates_evaluated

    def test_never_better_than_full_search(self, frame_pair):
        reference, current = frame_pair
        fast = diamond_search(current, reference, 32, 16, 16, 8)
        full = full_search(current, reference, 32, 16, 16, 8)
        assert fast.best.sad >= full.best.sad


class TestRegistry:
    def test_lookup_by_name(self):
        assert search_by_name("three_step") is three_step_search
        assert search_by_name("diamond") is diamond_search
        assert search_by_name("full") is full_search

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            search_by_name("exhaustive")
