"""Tests of the Distributed-Arithmetic FIR filter."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.distributed_arithmetic import DAQuantisation
from repro.filters.fir import DistributedArithmeticFIR, symmetric_lowpass


class TestLowpassPrototype:
    def test_unit_dc_gain(self):
        taps = symmetric_lowpass(8)
        assert sum(taps) == pytest.approx(1.0)

    def test_symmetry(self):
        taps = symmetric_lowpass(9)
        assert np.allclose(taps, taps[::-1])

    def test_too_few_taps_rejected(self):
        with pytest.raises(ValueError):
            symmetric_lowpass(1)


class TestFiltering:
    def test_matches_numpy_convolution_within_quantisation(self, rng):
        fir = DistributedArithmeticFIR(symmetric_lowpass(6))
        signal = rng.integers(-2000, 2000, 64)
        got = fir.filter(signal)
        want = fir.filter_reference(signal)
        bound = fir.tap_count * 2048 * fir.quantisation.output_scale + 1.0
        assert np.max(np.abs(got - want)) <= bound

    def test_exact_for_exactly_representable_taps(self):
        fir = DistributedArithmeticFIR([0.5, -0.25, 0.125],
                                       DAQuantisation(input_bits=10, coeff_frac_bits=6,
                                                      accumulator_bits=24))
        signal = [64, -32, 16, 8]
        assert np.allclose(fir.filter(signal), fir.filter_reference(signal))

    def test_constant_input_settles_to_dc_gain(self):
        fir = DistributedArithmeticFIR(symmetric_lowpass(4))
        outputs = fir.filter([100] * 20)
        assert outputs[-1] == pytest.approx(100.0, abs=2.0)

    def test_impulse_response_recovers_the_taps(self):
        taps = [0.5, 0.25, -0.125]
        fir = DistributedArithmeticFIR(taps, DAQuantisation(input_bits=10))
        impulse = [128] + [0] * 5
        response = fir.filter(impulse) / 128.0
        assert np.allclose(response[:3], taps, atol=0.02)

    def test_empty_taps_rejected(self):
        with pytest.raises(ValueError):
            DistributedArithmeticFIR([])


class TestStructure:
    def test_netlist_resources_scale_with_taps(self):
        small = DistributedArithmeticFIR(symmetric_lowpass(4)).build_netlist()
        large = DistributedArithmeticFIR(symmetric_lowpass(8)).build_netlist()
        assert (large.cluster_usage().shift_registers
                > small.cluster_usage().shift_registers)
        assert small.cluster_usage().memory_clusters == 1
        assert large.cluster_usage().memory_clusters == 1

    def test_rom_depth_is_two_to_the_taps(self):
        fir = DistributedArithmeticFIR(symmetric_lowpass(5))
        rom_nodes = fir.build_netlist().nodes_of_kind(ClusterKind.MEMORY)
        assert rom_nodes[0].depth_words == 32

    def test_fits_on_the_da_array(self):
        from repro.arrays import build_da_array
        from repro.core.mapper import GreedyPlacer
        from repro.core.router import MeshRouter
        fir = DistributedArithmeticFIR(symmetric_lowpass(8))
        fabric = build_da_array()
        netlist = fir.build_netlist()
        placement = GreedyPlacer(fabric).place(netlist)
        routing = MeshRouter(fabric).route(netlist, placement)
        assert routing.total_hops > 0

    def test_cycles_per_sample_is_input_bits(self):
        fir = DistributedArithmeticFIR(symmetric_lowpass(4))
        assert fir.cycles_per_sample == fir.quantisation.input_bits
