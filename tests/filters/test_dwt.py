"""Tests of the 5/3 lifting DWT on the Add-Shift clusters."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.filters.dwt import (
    build_dwt_netlist,
    dwt53_2d,
    dwt53_2d_inverse,
    dwt53_forward,
    dwt53_inverse,
    dwt53_multilevel,
    dwt53_multilevel_inverse,
)


class TestOneLevel:
    def test_perfect_reconstruction(self, rng):
        signal = rng.integers(0, 256, 64)
        approximation, detail = dwt53_forward(signal)
        assert np.array_equal(dwt53_inverse(approximation, detail), signal)

    def test_subband_lengths(self, rng):
        signal = rng.integers(0, 256, 32)
        approximation, detail = dwt53_forward(signal)
        assert len(approximation) == len(detail) == 16

    def test_constant_signal_has_zero_detail(self):
        approximation, detail = dwt53_forward([100] * 16)
        assert np.all(detail == 0)
        assert np.all(approximation == 100)

    def test_smooth_signal_concentrates_energy_in_approximation(self):
        signal = np.arange(0, 64, 2)
        approximation, detail = dwt53_forward(signal)
        assert np.sum(approximation.astype(float) ** 2) \
            > 10 * np.sum(detail.astype(float) ** 2)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            dwt53_forward([1, 2, 3])

    def test_mismatched_subbands_rejected(self):
        with pytest.raises(ValueError):
            dwt53_inverse([1, 2], [1, 2, 3])


class TestMultiLevel:
    def test_round_trip_over_three_levels(self, rng):
        signal = rng.integers(0, 256, 64)
        bands = dwt53_multilevel(signal, levels=3)
        assert len(bands) == 4
        assert np.array_equal(dwt53_multilevel_inverse(bands), signal)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            dwt53_multilevel([1, 2, 3, 4], levels=0)
        with pytest.raises(ValueError):
            dwt53_multilevel_inverse([np.array([1, 2])])


class TestTwoDimensional:
    def test_round_trip_on_image_block(self, rng):
        block = rng.integers(0, 256, (16, 16))
        assert np.array_equal(dwt53_2d_inverse(dwt53_2d(block)), block)

    def test_odd_dimensions_rejected(self):
        with pytest.raises(ValueError):
            dwt53_2d(np.zeros((15, 16)))

    def test_ll_band_of_flat_block_is_flat(self):
        block = np.full((8, 8), 50)
        coefficients = dwt53_2d(block)
        assert np.all(coefficients[:4, :4] == 50)
        assert np.all(coefficients[4:, 4:] == 0)


class TestNetlist:
    def test_uses_only_add_shift_clusters(self):
        netlist = build_dwt_netlist(16)
        kinds = {node.kind for node in netlist.nodes}
        assert kinds == {ClusterKind.ADD_SHIFT}
        assert netlist.cluster_usage().memory_clusters == 0

    def test_resources_scale_with_block_size(self):
        small = build_dwt_netlist(8).cluster_usage().total_clusters
        large = build_dwt_netlist(32).cluster_usage().total_clusters
        assert large == 4 * small

    def test_fits_on_the_da_array(self):
        from repro.arrays import build_da_array
        from repro.core.mapper import GreedyPlacer
        fabric = build_da_array()
        placement = GreedyPlacer(fabric).place(build_dwt_netlist(16))
        assert len(placement) == 32

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            build_dwt_netlist(7)
