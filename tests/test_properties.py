"""Property-based tests (hypothesis) of the core invariants.

These complement the example-based unit tests with randomised coverage of
the arithmetic and data-structure invariants the whole reproduction leans
on: fixed-point helpers, Distributed Arithmetic exactness in the quantised
domain, CORDIC rotation accuracy, SAD properties, search optimality and
quantiser reconstruction bounds.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import AddAccCluster, to_signed, to_unsigned
from repro.dct.cordic import CordicRotator
from repro.dct.distributed_arithmetic import DALookupTable, DAQuantisation
from repro.dct.quantization import dequantise, quantise
from repro.dct.reference import dct_1d, idct_1d
from repro.me.sad import sad
from repro.video.blocks import merge_transform_blocks, split_macroblock_into_transform_blocks

# Keep hypothesis run times compatible with a fast unit-test suite.
SETTINGS = settings(max_examples=50, deadline=None)


class TestFixedPointHelpers:
    @SETTINGS
    @given(value=st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1),
           width=st.integers(min_value=2, max_value=16))
    def test_signed_unsigned_round_trip_within_range(self, value, width):
        limit = 1 << (width - 1)
        if -limit <= value < limit:
            assert to_signed(to_unsigned(value, width), width) == value

    @SETTINGS
    @given(values=st.lists(st.integers(min_value=0, max_value=255),
                           min_size=1, max_size=30))
    def test_accumulator_matches_python_sum_modulo_width(self, values):
        acc = AddAccCluster(width_bits=16)
        for value in values:
            acc.accumulate(value)
        assert acc.accumulator == sum(values) % (1 << 16)


class TestDistributedArithmetic:
    @SETTINGS
    @given(inputs=st.lists(st.integers(min_value=-2048, max_value=2047),
                           min_size=4, max_size=4),
           raw_coefficients=st.lists(st.integers(min_value=-63, max_value=63),
                                     min_size=4, max_size=4))
    def test_da_is_exact_for_exactly_representable_coefficients(self, inputs,
                                                                raw_coefficients):
        # Coefficients that are multiples of 2**-6 are stored without
        # rounding, so the bit-serial DA result must equal the exact dot
        # product — this nails the sign handling and the bit-plane weights.
        quantisation = DAQuantisation(input_bits=12, coeff_frac_bits=6,
                                      accumulator_bits=32)
        coefficients = [c / 64.0 for c in raw_coefficients]
        lut = DALookupTable(coefficients, quantisation)
        expected = sum(c * x for c, x in zip(coefficients, inputs))
        assert lut.dot_float(inputs) == pytest.approx(expected, abs=1e-9)

    @SETTINGS
    @given(inputs=st.lists(st.integers(min_value=-2048, max_value=2047),
                           min_size=8, max_size=8))
    def test_da_dct_error_is_bounded_by_quantisation(self, inputs):
        from repro.dct.da_dct import DistributedArithmeticDCT
        transform = DistributedArithmeticDCT()
        bound = 8 * 2048 * transform.quantisation.output_scale + 1.0
        error = np.max(np.abs(transform.forward(inputs) - dct_1d(inputs)))
        assert error <= bound


class TestReferenceDCT:
    @SETTINGS
    @given(samples=st.lists(st.floats(min_value=-1000, max_value=1000,
                                      allow_nan=False, allow_infinity=False),
                            min_size=8, max_size=8))
    def test_round_trip_and_energy_preservation(self, samples):
        vector = np.array(samples)
        coefficients = dct_1d(vector)
        assert np.allclose(idct_1d(coefficients), vector, atol=1e-6)
        assert np.sum(coefficients ** 2) == pytest.approx(np.sum(vector ** 2),
                                                          rel=1e-6, abs=1e-6)


class TestCordic:
    @SETTINGS
    @given(p=st.integers(min_value=-4000, max_value=4000),
           q=st.integers(min_value=-4000, max_value=4000),
           angle_index=st.integers(min_value=0, max_value=3))
    def test_rotation_error_is_small_for_dct_angles(self, p, q, angle_index):
        angle = (math.pi / 4, math.pi / 8, math.pi / 16, 3 * math.pi / 16)[angle_index]
        rotator = CordicRotator(angle, iterations=14, frac_bits=14)
        got = rotator.rotate(float(p), float(q))
        want = rotator.rotate_exact(float(p), float(q))
        assert abs(got[0] - want[0]) <= 2.0
        assert abs(got[1] - want[1]) <= 2.0


class TestSadProperties:
    @SETTINGS
    @given(data=st.data())
    def test_sad_triangle_inequality(self, data):
        shape = (4, 4)
        blocks = [np.array(data.draw(st.lists(st.integers(0, 255),
                                              min_size=16, max_size=16))).reshape(shape)
                  for _ in range(3)]
        a, b, c = blocks
        assert sad(a, c) <= sad(a, b) + sad(b, c)

    @SETTINGS
    @given(values=st.lists(st.integers(0, 255), min_size=16, max_size=16),
           offset=st.integers(min_value=-50, max_value=50))
    def test_sad_of_uniform_offset(self, values, offset):
        block = np.array(values).reshape(4, 4)
        shifted = np.clip(block + offset, 0, 510)
        assert sad(block, shifted) == int(np.sum(np.abs(shifted - block)))


class TestQuantiserProperties:
    @SETTINGS
    @given(values=st.lists(st.floats(min_value=-500, max_value=500,
                                     allow_nan=False, allow_infinity=False),
                           min_size=64, max_size=64),
           qp=st.integers(min_value=1, max_value=31))
    def test_reconstruction_error_bounded_by_two_steps(self, values, qp):
        coefficients = np.array(values).reshape(8, 8)
        reconstructed = dequantise(quantise(coefficients, qp), qp)
        assert np.max(np.abs(reconstructed - coefficients)[1:, 1:]) <= 2 * qp + 1e-9


class TestBlockSplitting:
    @SETTINGS
    @given(values=st.lists(st.integers(0, 255), min_size=256, max_size=256))
    def test_split_merge_round_trip(self, values):
        macroblock = np.array(values).reshape(16, 16)
        pieces = split_macroblock_into_transform_blocks(macroblock)
        assert np.array_equal(merge_transform_blocks(pieces), macroblock)
