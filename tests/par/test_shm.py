"""Shared-memory frame buffers: create/attach/unlink lifecycle and leaks."""

import numpy as np
import pytest

from repro.par import (
    SHM_PREFIX,
    SharedArray,
    SharedArraySpec,
    attached_view,
    leaked_segments,
)


@pytest.fixture(autouse=True)
def no_leaks_before_or_after():
    assert leaked_segments() == []
    yield
    assert leaked_segments() == []


class TestSharedArray:
    def test_round_trip_preserves_bytes(self):
        data = np.arange(3 * 4 * 5, dtype=np.int16).reshape(3, 4, 5)
        with SharedArray.create(data) as shared:
            with attached_view(shared.spec) as view:
                assert view.shape == data.shape
                assert view.dtype == data.dtype
                assert np.array_equal(view, data)

    def test_spec_names_the_segment(self):
        data = np.zeros((2, 2), dtype=np.uint8)
        with SharedArray.create(data) as shared:
            spec = shared.spec
            assert isinstance(spec, SharedArraySpec)
            assert spec.name.startswith(SHM_PREFIX)
            assert spec.shape == (2, 2)
            assert leaked_segments() == [spec.name]

    def test_view_is_read_only(self):
        with SharedArray.create(np.ones(4)) as shared:
            with attached_view(shared.spec) as view:
                with pytest.raises(ValueError):
                    view[0] = 2.0

    def test_creator_copy_is_independent(self):
        source = np.arange(6).reshape(2, 3)
        with SharedArray.create(source) as shared:
            source[0, 0] = 99
            with attached_view(shared.spec) as view:
                assert view[0, 0] == 0

    def test_close_and_unlink_is_idempotent(self):
        shared = SharedArray.create(np.zeros(3))
        shared.close_and_unlink()
        shared.close_and_unlink()
        assert leaked_segments() == []

    def test_attach_after_unlink_fails(self):
        shared = SharedArray.create(np.zeros(3))
        spec = shared.spec
        shared.close_and_unlink()
        with pytest.raises(FileNotFoundError):
            with attached_view(spec):
                pass

    def test_attached_view_never_unlinks(self):
        shared = SharedArray.create(np.zeros(3))
        try:
            with attached_view(shared.spec):
                pass
            # The segment must survive a reader detaching.
            assert leaked_segments() == [shared.spec.name]
        finally:
            shared.close_and_unlink()
