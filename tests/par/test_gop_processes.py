"""The processes GOP strategy: bit-identity, reassembly, failure context."""

import numpy as np
import pytest

from repro.par import WorkerFailure, WorkerTimeout, leaked_segments
from repro.par.gop import _encode_gop_shard, _share_frames
from repro.video import EncoderConfiguration
from repro.video.frames import panning_sequence
from repro.video.gop import (
    Gop,
    encode_sequence_parallel,
    split_into_gops,
    stream_digest,
)
from repro.video.rate_control import RateController, RateControlSettings

from tests.video.test_gop import assert_statistics_identical

CONFIGURATION = EncoderConfiguration(search_range=4)


@pytest.fixture(scope="module")
def frames():
    sequence = panning_sequence(height=48, width=64, pan=(1, 2), seed=11)
    return [sequence.frame(index) for index in range(10)]


@pytest.fixture(scope="module")
def serial_outcome(frames):
    return encode_sequence_parallel(frames, CONFIGURATION, gop_size=3,
                                    strategy="serial")


class TestBitIdentity:
    def test_processes_matches_serial(self, frames, serial_outcome,
                                      process_backend):
        outcome = encode_sequence_parallel(frames, CONFIGURATION, gop_size=3,
                                           strategy="processes", workers=2,
                                           backend=process_backend)
        assert outcome.strategy == "processes"
        assert_statistics_identical(serial_outcome.statistics,
                                    outcome.statistics)
        assert stream_digest(outcome.statistics) \
            == stream_digest(serial_outcome.statistics)
        assert np.array_equal(outcome.final_reference,
                              serial_outcome.final_reference)
        assert leaked_segments() == []

    def test_rate_control_composes(self, frames, process_backend):
        def controller():
            return RateController(RateControlSettings(target_bits_per_frame=
                                                      9_000))
        serial = encode_sequence_parallel(frames, CONFIGURATION, gop_size=3,
                                          strategy="serial",
                                          rate_controller=controller())
        parallel = encode_sequence_parallel(frames, CONFIGURATION, gop_size=3,
                                            strategy="processes", workers=2,
                                            rate_controller=controller(),
                                            backend=process_backend)
        assert_statistics_identical(serial.statistics, parallel.statistics)
        assert serial.qp_trajectories == parallel.qp_trajectories

    def test_odd_gop_to_worker_ratios(self, frames, serial_outcome,
                                      process_backend):
        # 4 GOPs over 3 workers and over more workers than GOPs: shards
        # must reassemble in GOP order either way.
        for workers in (3, 8):
            outcome = encode_sequence_parallel(frames, CONFIGURATION,
                                               gop_size=3,
                                               strategy="processes",
                                               workers=workers,
                                               backend=process_backend)
            assert_statistics_identical(serial_outcome.statistics,
                                        outcome.statistics)


class TestWorkerBodies:
    """The shard body runs in-process too — same bits, coverage included."""

    def test_shard_body_with_shared_frames(self, frames, serial_outcome):
        shared, payload = _share_frames(frames)
        try:
            bounds = [(gop.index, gop.start, gop.stop)
                      for gop in split_into_gops(frames, 3)]
            shards = _encode_gop_shard(payload, bounds, CONFIGURATION, None)
        finally:
            shared.close_and_unlink()
        statistics = [stats for _, stats, _, _ in shards]
        assert_statistics_identical(
            serial_outcome.statistics,
            [stats for shard in statistics for stats in shard])

    def test_shard_body_with_pickled_fallback(self, frames, serial_outcome):
        bounds = [(gop.index, gop.start, gop.stop)
                  for gop in split_into_gops(frames, 3)]
        shards = _encode_gop_shard(frames, bounds, CONFIGURATION, None)
        statistics = [stats for shard in shards for stats in shard[1]]
        assert_statistics_identical(serial_outcome.statistics, statistics)

    def test_mixed_geometry_falls_back_to_pickling(self):
        frames = [np.zeros((16, 16), dtype=np.uint8),
                  np.zeros((32, 16), dtype=np.uint8)]
        shared, payload = _share_frames(frames)
        assert shared is None
        assert len(payload) == 2
        assert leaked_segments() == []


class TestFailureContext:
    def test_worker_failure_names_the_gop(self, frames):
        # A GOP past the end of the sequence makes the worker fail on a
        # frame lookup; the failure must name the GOP range, carry the
        # original error, and leave /dev/shm clean.
        bad_gops = [Gop(index=0, start=0, stop=5),
                    Gop(index=1, start=5, stop=len(frames) + 40)]
        with pytest.raises(WorkerFailure) as caught:
            encode_sequence_parallel(frames, CONFIGURATION,
                                     strategy="processes", workers=2,
                                     gops=bad_gops)
        assert "GOP 1..1" in str(caught.value)
        assert caught.value.original_type == "IndexError"
        assert caught.value.worker_traceback
        assert leaked_segments() == []

    def test_timeout_kwarg_fails_fast_and_cleans_up(self, frames):
        # Spawning a fresh pool alone takes longer than this deadline,
        # so the encode cannot finish: the timeout must surface as
        # WorkerTimeout and the shared segment must be unlinked anyway.
        with pytest.raises(WorkerTimeout):
            encode_sequence_parallel(frames, CONFIGURATION, gop_size=3,
                                     strategy="processes", workers=2,
                                     timeout=0.01)
        assert leaked_segments() == []
