"""Shared fixtures for the multiprocess-backend tests.

One warm :class:`~repro.par.ProcessBackend` serves every test that
dispatches healthy work: spawning a Python worker costs a few hundred
milliseconds, so the suite pays it once instead of once per call.
Destructive tests (poison jobs, timeouts) use their own ephemeral pools
— a broken pool must never leak into the shared backend.
"""

import pytest

from repro.par import ProcessBackend


@pytest.fixture(scope="session")
def process_backend():
    with ProcessBackend(workers=2) as backend:
        yield backend
