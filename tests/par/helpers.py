"""Module-level worker functions for the process-pool tests.

``spawn`` workers can only run importable module-level callables with
picklable arguments, so every task body the tests dispatch lives here
rather than inline in the test functions.
"""

from __future__ import annotations

import os
import time


def echo(value):
    """Return the argument unchanged (ordering and plumbing tests)."""
    return value


def slow_echo(value, seconds):
    """Return the argument after sleeping (timeout tests)."""
    time.sleep(seconds)
    return value


def raise_value_error(message):
    """Fail with a ValueError carrying ``message``."""
    raise ValueError(message)


def die(code):
    """Kill the worker process outright — no exception, no return value."""
    os._exit(code)


def compile_and_report(_token):
    """Compile a design through the worker's DEFAULT_CACHE.

    Returns the worker-side cache statistics, so the parent can assert
    whether the compile was served warm (a hit against the imported
    state) or cold (a miss the delta carries back).
    """
    from repro.dct import MixedRomDCT
    from repro.flow import cache as flow_cache

    flow_cache.compile(MixedRomDCT())
    return flow_cache.DEFAULT_CACHE.stats()
