"""FlowCache export/import: the cache-warmth wire format across spawn."""

import pickle


import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct import CordicDCT1, MixedRomDCT, SCCDirectDCT
from repro.flow import CACHE_STATE_VERSION, Flow, FlowCache
from repro.flow import compile as flow_compile
from repro.flow.cache import _STATE_FORMAT


def assert_results_identical(first, second):
    """Bit-identity of two FlowResults: bitstream, metrics, fingerprints."""
    assert first.design_name == second.design_name
    assert first.table_row() == second.table_row()
    assert first.bitstream.total_bits() == second.bitstream.total_bits()
    assert first.bitstream.serialize() == second.bitstream.serialize()
    assert first.metrics.summary() == second.metrics.summary()


@pytest.fixture(scope="module")
def warm_cache():
    cache = FlowCache()
    flow_compile(MixedRomDCT(), cache=cache)
    flow_compile(SCCDirectDCT(), cache=cache)
    return cache


class TestRoundTrip:
    def test_import_restores_bit_identical_entries(self, warm_cache):
        restored = FlowCache()
        imported = restored.import_state(warm_cache.export_state())
        assert imported == len(warm_cache) == 2
        assert restored.keys() == warm_cache.keys()
        for key in warm_cache.keys():
            original = warm_cache.get(key)
            copy = restored.get(key)
            assert_results_identical(original, copy)

    def test_imported_entries_serve_hits(self, warm_cache):
        restored = FlowCache()
        restored.import_state(warm_cache.export_state())
        result = flow_compile(MixedRomDCT(), cache=restored)
        assert result.cache_hit
        assert_results_identical(result, flow_compile(MixedRomDCT(),
                                                      cache=warm_cache))

    def test_import_is_bookkeeping_not_traffic(self, warm_cache):
        restored = FlowCache()
        restored.import_state(warm_cache.export_state())
        assert restored.stats()["hits"] == 0
        assert restored.stats()["misses"] == 0

    def test_subset_export_by_keys(self, warm_cache):
        keys = warm_cache.keys()
        chosen = {sorted(keys)[0]}
        restored = FlowCache()
        assert restored.import_state(warm_cache.export_state(keys=chosen)) == 1
        assert restored.keys() == chosen

    def test_reimport_skips_present_keys(self, warm_cache):
        restored = FlowCache()
        blob = warm_cache.export_state()
        assert restored.import_state(blob) == 2
        assert restored.import_state(blob) == 0
        assert restored.import_state(blob, replace=True) == 2


class TestCapacity:
    def test_import_respects_max_entries(self, warm_cache):
        small = FlowCache(max_entries=1)
        imported = small.import_state(warm_cache.export_state())
        assert imported == 2
        assert len(small) == 1

    def test_import_keeps_most_recent_entry(self, warm_cache):
        # Export order is least-recent first, so the survivor of an
        # oversized import is the exporting cache's most recent entry.
        donor = FlowCache()
        first = flow_compile(MixedRomDCT(), cache=donor)
        second = flow_compile(CordicDCT1(), cache=donor)
        assert first.design_name != second.design_name
        small = FlowCache(max_entries=1)
        small.import_state(donor.export_state())
        survivor = small.get(sorted(small.keys())[0])
        assert survivor.design_name == second.design_name


class TestRejection:
    def test_version_mismatch_rejected(self, warm_cache):
        envelope = pickle.loads(warm_cache.export_state())
        envelope["version"] = CACHE_STATE_VERSION + 1
        with pytest.raises(ConfigurationError, match="version mismatch"):
            FlowCache().import_state(pickle.dumps(envelope))

    def test_missing_format_marker_rejected(self):
        with pytest.raises(ConfigurationError, match="format marker"):
            FlowCache().import_state(pickle.dumps({"entries": []}))

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ConfigurationError, match="not a FlowCache"):
            FlowCache().import_state(b"\x00not a pickle")

    def test_format_marker_value(self, warm_cache):
        envelope = pickle.loads(warm_cache.export_state())
        assert envelope["format"] == _STATE_FORMAT
        assert envelope["version"] == CACHE_STATE_VERSION


class TestPickleSafety:
    def test_flow_result_pickles_bit_identically(self):
        result = flow_compile(MixedRomDCT(), cache=None)
        clone = pickle.loads(pickle.dumps(result))
        assert_results_identical(result, clone)
        assert clone.verification.passed == result.verification.passed

    def test_noc_flow_result_pickles(self):
        flow = Flow.with_noc()
        result = flow.compile(MixedRomDCT())
        clone = pickle.loads(pickle.dumps(result))
        assert_results_identical(result, clone)
        assert clone.noc is not None
