"""The run_tasks harness: dispatch, cache warmth, failures, timeouts."""

import time

import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct import MixedRomDCT
from repro.flow import FlowCache
from repro.flow import compile as flow_compile
from repro.par import (
    ProcessBackend,
    WorkerFailure,
    WorkerTimeout,
    available_cpus,
    leaked_segments,
    run_tasks,
    spawn_context,
)
from repro.par.pool import _run_shard
from tests.par import helpers


class TestPlumbing:
    def test_results_in_task_order(self, process_backend):
        values = list(range(7))
        results = run_tasks(helpers.echo, [(value,) for value in values],
                            [f"task {value}" for value in values],
                            backend=process_backend)
        assert results == values

    def test_empty_batch_spawns_nothing(self):
        assert run_tasks(helpers.echo, [], []) == []

    def test_label_count_must_match(self):
        with pytest.raises(ConfigurationError, match="labels"):
            run_tasks(helpers.echo, [(1,), (2,)], ["only one"])

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1

    def test_spawn_context_is_spawn(self):
        assert spawn_context().get_start_method() == "spawn"

    def test_backend_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(workers=0)


class TestCacheWarmth:
    def test_worker_starts_warm_from_parent_state(self, process_backend):
        cache = FlowCache()
        flow_compile(MixedRomDCT(), cache=cache)
        stats, = run_tasks(helpers.compile_and_report, [("warm",)],
                           ["warm compile"], cache=cache,
                           backend=process_backend)
        assert stats["hits"] >= 1

    def test_worker_delta_merges_back(self):
        # A cold private pool: the worker compiles fresh, and its new
        # entry must land in the parent cache after the call.
        cache = FlowCache()
        assert len(cache) == 0
        stats, = run_tasks(helpers.compile_and_report, [("cold",)],
                           ["cold compile"], workers=1, cache=cache)
        assert stats["misses"] >= 1
        assert len(cache) == 1
        result = flow_compile(MixedRomDCT(), cache=cache)
        assert result.cache_hit

    def test_run_shard_in_process_contract(self):
        # The worker body itself, without a process: ok tuples carry the
        # payload and a delta of added keys only.
        outcome = _run_shard(helpers.echo, "label", None, False, ("payload",))
        assert outcome[0] == "ok"
        assert outcome[1] == "payload"

    def test_run_shard_reports_errors_as_data(self):
        outcome = _run_shard(helpers.raise_value_error, "shard 3", None,
                             False, ("boom",))
        kind, label, error_type, message, worker_tb = outcome
        assert kind == "error"
        assert label == "shard 3"
        assert error_type == "ValueError"
        assert message == "boom"
        assert "raise_value_error" in worker_tb


class TestFailures:
    def test_raising_worker_surfaces_with_context(self):
        with pytest.raises(WorkerFailure) as caught:
            run_tasks(helpers.raise_value_error, [("kaboom",)],
                      ["shard A"], workers=1)
        failure = caught.value
        assert "shard A" in str(failure)
        assert failure.original_type == "ValueError"
        assert failure.original_message == "kaboom"
        assert "raise_value_error" in failure.worker_traceback

    def test_dead_worker_surfaces_as_failure_not_broken_pool(self):
        with pytest.raises(WorkerFailure) as caught:
            run_tasks(helpers.die, [(17,)], ["poison shard"], workers=1)
        assert "poison shard" in str(caught.value)
        assert "died" in caught.value.original_message

    def test_timeout_fails_fast(self):
        started = time.monotonic()
        with pytest.raises(WorkerTimeout) as caught:
            run_tasks(helpers.slow_echo, [(1, 120.0)], ["sleepy shard"],
                      workers=1, timeout=2.0)
        elapsed = time.monotonic() - started
        assert elapsed < 30.0
        assert "sleepy shard" in str(caught.value)
        assert caught.value.timeout == 2.0
        assert isinstance(caught.value, WorkerFailure)

    def test_broken_backend_recovers_on_next_use(self):
        with ProcessBackend(workers=1) as backend:
            with pytest.raises(WorkerFailure):
                run_tasks(helpers.die, [(1,)], ["poison"], backend=backend)
            results = run_tasks(helpers.echo, [(42,)], ["healthy"],
                                backend=backend)
            assert results == [42]

    def test_failures_leak_no_shared_memory(self):
        with pytest.raises(WorkerFailure):
            run_tasks(helpers.raise_value_error, [("x",)], ["s"], workers=1)
        assert leaked_segments() == []
