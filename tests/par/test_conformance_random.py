"""Randomized serial-vs-processes conformance: 54 drawn traces.

The multiprocess backend is a scheduling decision, never a semantic one:
for every drawn GOP-encode trace the processes strategy must reproduce
the serial statistics stream digest-for-digest, and for every drawn
fleet trace the partitioned processes run must reproduce the partitioned
serial run *and* the naive serial execution of the same jobs.  One warm
two-worker backend serves the whole suite, so worker startup is paid
once.
"""

import numpy as np
import pytest

from repro.fleet import (
    BALANCERS,
    FLEET_PATTERNS,
    FleetSettings,
    execute_fleet_serial,
    simulate_fleet_partitioned,
    synthetic_trace,
)
from repro.par import leaked_segments
from repro.video import EncoderConfiguration
from repro.video.gop import encode_sequence_parallel, stream_digest
from repro.video.rate_control import RateController, RateControlSettings
from repro.video.scenes import SCENE_KINDS, scene_frames

GOP_CASES = 24
FLEET_CASES = 30
POLICY_RING = ("fifo", "sjf", "affinity", "round_robin")
BALANCER_RING = tuple(sorted(BALANCERS))


def _draw_gop_case(case_index):
    rng = np.random.default_rng([2026, 8, case_index])
    kind = SCENE_KINDS[case_index % len(SCENE_KINDS)]
    frames = scene_frames(kind, count=int(rng.integers(5, 10)),
                          height=32, width=48, seed=case_index)
    configuration = EncoderConfiguration(
        search_range=4, qp=int(rng.integers(8, 25)))
    controller = None
    if case_index % 3 == 0:
        controller = RateController(RateControlSettings(
            target_bits_per_frame=int(rng.integers(4_000, 16_000)),
            base_qp=int(rng.integers(10, 30))))
    return {
        "frames": frames,
        "configuration": configuration,
        "gop_size": int(rng.integers(2, 5)),
        "rate_controller": controller,
        "workers": int(rng.integers(2, 5)),
    }


def _draw_fleet_case(case_index):
    rng = np.random.default_rng([2026, 9, case_index])
    pattern = FLEET_PATTERNS[case_index % len(FLEET_PATTERNS)]
    jobs = synthetic_trace(pattern, int(rng.integers(8, 25)),
                           seed=case_index,
                           mean_gap=int(rng.integers(300, 4_000)))
    partitions = int(rng.integers(2, 4))
    kwargs = {
        "balancer": BALANCER_RING[case_index % len(BALANCER_RING)],
        "policy": POLICY_RING[case_index % len(POLICY_RING)],
        "soc_count": int(rng.integers(partitions, 7)),
        "queue_capacity": int(rng.integers(4, 33)),
        "max_batch": int(rng.integers(1, 7)),
        "steal": bool(rng.integers(0, 2)),
        "predictive_prewarm": bool(rng.integers(0, 2)),
    }
    if case_index % 4 == 1:
        kwargs["autoscale"] = True
        kwargs["idle_timeout"] = int(rng.integers(5_000, 50_000))
    if case_index % 5 == 2:
        kwargs["slo_target_p99"] = int(rng.integers(200_000, 2_000_000))
    return jobs, FleetSettings(**kwargs), partitions


class TestGopConformance:
    def test_processes_digests_match_serial(self, process_backend):
        for case_index in range(GOP_CASES):
            case = _draw_gop_case(case_index)
            workers = case.pop("workers")
            controller = case.pop("rate_controller")

            def clone():
                return (RateController(controller.settings)
                        if controller is not None else None)

            serial = encode_sequence_parallel(
                strategy="serial", rate_controller=clone(), **case)
            parallel = encode_sequence_parallel(
                strategy="processes", workers=workers,
                rate_controller=clone(), backend=process_backend, **case)
            assert parallel.strategy == "processes"
            assert stream_digest(parallel.statistics) \
                == stream_digest(serial.statistics), (
                f"GOP case {case_index}: scheduling changed the stream")
            assert parallel.qp_trajectories == serial.qp_trajectories, (
                f"GOP case {case_index}: rate control diverged")
        assert leaked_segments() == []


class TestFleetConformance:
    def test_partitioned_processes_matches_serial(self, process_backend):
        for case_index in range(FLEET_CASES):
            jobs, settings, partitions = _draw_fleet_case(case_index)
            serial = simulate_fleet_partitioned(jobs, settings,
                                                partitions=partitions,
                                                parallel="serial")
            parallel = simulate_fleet_partitioned(jobs, settings,
                                                  partitions=partitions,
                                                  parallel="processes",
                                                  backend=process_backend)
            context = f"fleet case {case_index}"
            assert parallel.digests == serial.digests, context
            assert parallel.completion_order() \
                == serial.completion_order(), context
            assert parallel.makespan_cycles == serial.makespan_cycles, context
            serial_summary = serial.summary()
            parallel_summary = parallel.summary()
            # The backend name is the only legitimate difference.
            assert serial_summary.pop("parallel") == "serial"
            assert parallel_summary.pop("parallel") == "processes"
            assert parallel_summary == serial_summary, context
            assert parallel.conserved, context

            naive = {result.job_id: result.digest
                     for result in execute_fleet_serial(jobs)}
            digests = parallel.digests
            assert digests == {job_id: naive[job_id]
                               for job_id in digests}, context
