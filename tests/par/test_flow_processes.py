"""Process-backed compile_many: identical results, cache as-if-local."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct import CordicDCT1, MixedRomDCT, SCCDirectDCT
from repro.flow import COMPILE_BACKENDS, Flow, FlowCache, compile_many
from repro.par.flow import _compile_design_group, _contiguous_groups

from tests.par.test_cache_state import assert_results_identical

DESIGNS = (MixedRomDCT, SCCDirectDCT, CordicDCT1)


def make_designs():
    return [factory() for factory in DESIGNS]


class TestIdentity:
    def test_processes_matches_serial(self, process_backend):
        serial = compile_many(make_designs(), cache=None, parallel="serial")
        parallel = compile_many(make_designs(), cache=None,
                                parallel="processes",
                                backend=process_backend)
        assert len(parallel) == len(serial)
        for left, right in zip(serial, parallel):
            assert_results_identical(left, right)

    def test_results_in_input_order(self, process_backend):
        results = compile_many(make_designs(), cache=None,
                               parallel="processes", backend=process_backend)
        assert [result.design_name for result in results] \
            == [design.name for design in make_designs()]

    def test_empty_design_list(self):
        assert compile_many([], parallel="processes") == []


class TestCacheAsIfLocal:
    def test_parent_cache_warm_after_call(self, process_backend):
        cache = FlowCache()
        compile_many(make_designs(), cache=cache, parallel="processes",
                     backend=process_backend)
        assert len(cache) == len(DESIGNS)
        rerun = compile_many(make_designs(), cache=cache, parallel="serial")
        assert all(result.cache_hit for result in rerun)

    def test_matches_what_serial_compile_leaves(self, process_backend):
        serial_cache, process_cache = FlowCache(), FlowCache()
        compile_many(make_designs(), cache=serial_cache, parallel="serial")
        compile_many(make_designs(), cache=process_cache,
                     parallel="processes", backend=process_backend)
        assert serial_cache.keys() == process_cache.keys()


class TestWorkerBody:
    def test_compile_design_group_in_process(self):
        flow = Flow.default()
        results = _compile_design_group([MixedRomDCT()], None, flow)
        assert results[0].design_name == "mixed_rom"

    def test_contiguous_groups_cover_everything_in_order(self):
        items = list(range(7))
        for count in (1, 2, 3, 7, 9):
            groups = _contiguous_groups(items, count)
            assert [x for group in groups for x in group] == items
            assert all(group for group in groups)
            sizes = [len(group) for group in groups]
            assert max(sizes) - min(sizes) <= 1


class TestValidation:
    def test_backend_registry(self):
        assert COMPILE_BACKENDS == ("serial", "threads", "processes")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="parallel backend"):
            compile_many(make_designs(), parallel="fibers")
