"""Tests of the plain Distributed-Arithmetic DCT (Fig. 4)."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.da_dct import FIG4_ROM_WORDS, DistributedArithmeticDCT
from repro.dct.distributed_arithmetic import DAQuantisation
from repro.dct.reference import dct_1d, dct_2d


@pytest.fixture(scope="module")
def transform() -> DistributedArithmeticDCT:
    return DistributedArithmeticDCT()


def tolerance_for(transform, magnitude: float) -> float:
    # Worst-case LUT rounding accumulates over the 8 coefficients and the
    # bit-serial weighting; a magnitude-proportional bound with a safety
    # factor keeps the test meaningful without being brittle.
    return 8 * magnitude * transform.quantisation.output_scale + 1.0


class TestAccuracy:
    def test_matches_reference_on_random_vectors(self, transform, rng):
        for _ in range(20):
            x = rng.integers(-2048, 2048, 8)
            assert np.max(np.abs(transform.forward(x) - dct_1d(x))) \
                <= tolerance_for(transform, 2048)

    def test_matches_reference_on_pixel_blocks(self, transform, rng):
        block = rng.integers(0, 256, (8, 8))
        error = np.max(np.abs(transform.forward_2d(block) - dct_2d(block)))
        assert error <= 2 * tolerance_for(transform, 256)

    def test_dc_of_constant_input(self, transform):
        outputs = transform.forward([100] * 8)
        assert outputs[0] == pytest.approx(100 * 8 / np.sqrt(8), rel=0.01)
        assert np.max(np.abs(outputs[1:])) <= 1.0

    def test_zero_input_gives_zero_output(self, transform):
        assert np.allclose(transform.forward([0] * 8), 0.0)

    def test_wrong_length_rejected(self, transform):
        with pytest.raises(ValueError):
            transform.forward([1] * 7)
        with pytest.raises(ValueError):
            transform.forward_2d(np.zeros((4, 4)))


class TestStructure:
    def test_cycles_per_transform_is_input_bit_count(self, transform):
        assert transform.cycles_per_transform == transform.quantisation.input_bits

    def test_netlist_matches_fig4_resources(self, transform):
        usage = transform.build_netlist().cluster_usage()
        assert usage.shift_registers == 8
        assert usage.accumulators == 8
        assert usage.memory_clusters == 8
        assert usage.adders == 0 and usage.subtracters == 0

    def test_roms_have_256_words(self, transform):
        netlist = transform.build_netlist()
        for node in netlist.nodes_of_kind(ClusterKind.MEMORY):
            assert node.depth_words == FIG4_ROM_WORDS

    def test_address_broadcast_connects_every_register_to_every_rom(self, transform):
        netlist = transform.build_netlist()
        one_bit_nets = [net for net in netlist.nets if net.width_bits == 1]
        assert len(one_bit_nets) == 8 * 8

    def test_custom_quantisation_propagates(self):
        transform = DistributedArithmeticDCT(
            quantisation=DAQuantisation(input_bits=9, coeff_frac_bits=8,
                                        accumulator_bits=24))
        assert transform.cycles_per_transform == 9
