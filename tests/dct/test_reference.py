"""Tests of the floating-point reference DCT."""

import numpy as np
import pytest

from repro.dct.reference import (
    dct_1d,
    dct_2d,
    dct_matrix,
    idct_1d,
    idct_2d,
    normalisation_factors,
    reconstruction_error,
    unnormalised_dct_1d,
)


class TestMatrixProperties:
    def test_matrix_is_orthogonal(self):
        matrix = dct_matrix(8)
        assert np.allclose(matrix @ matrix.T, np.eye(8), atol=1e-12)

    def test_dc_row_is_constant(self):
        matrix = dct_matrix(8)
        assert np.allclose(matrix[0], matrix[0, 0])

    def test_rows_have_unit_norm(self):
        matrix = dct_matrix(8)
        assert np.allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            dct_matrix(0)


class TestTransforms:
    def test_round_trip_1d(self, random_vector):
        assert np.allclose(idct_1d(dct_1d(random_vector)), random_vector)

    def test_round_trip_2d(self, random_pixel_block):
        coefficients = dct_2d(random_pixel_block)
        assert np.allclose(idct_2d(coefficients), random_pixel_block)

    def test_constant_block_concentrates_in_dc(self):
        block = np.full((8, 8), 100.0)
        coefficients = dct_2d(block)
        assert coefficients[0, 0] == pytest.approx(800.0)
        assert np.allclose(np.delete(coefficients.ravel(), 0), 0.0, atol=1e-9)

    def test_parseval_energy_preserved(self, random_vector):
        coefficients = dct_1d(random_vector)
        assert np.sum(coefficients ** 2) == pytest.approx(
            np.sum(np.asarray(random_vector, dtype=float) ** 2))

    def test_unnormalised_matches_paper_equation(self, random_vector):
        raw = unnormalised_dct_1d(random_vector)
        assert np.allclose(raw * normalisation_factors(), dct_1d(random_vector))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            dct_1d(np.zeros(7))
        with pytest.raises(ValueError):
            dct_2d(np.zeros((4, 8)))

    def test_reconstruction_error_zero_for_exact_coefficients(self, random_pixel_block):
        coefficients = dct_2d(random_pixel_block)
        assert reconstruction_error(random_pixel_block, coefficients) < 1e-9

    def test_linearity(self, rng):
        x = rng.normal(size=8)
        y = rng.normal(size=8)
        assert np.allclose(dct_1d(x + 2 * y), dct_1d(x) + 2 * dct_1d(y))
