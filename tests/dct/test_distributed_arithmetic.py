"""Tests of the Distributed-Arithmetic primitives."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct.distributed_arithmetic import (
    DAChannel,
    DALookupTable,
    DAQuantisation,
    da_dot_product,
)


class TestQuantisation:
    def test_output_scale_inverse_of_frac_bits(self):
        q = DAQuantisation(input_bits=8, coeff_frac_bits=6, accumulator_bits=24)
        assert q.output_scale == pytest.approx(1 / 64)

    def test_narrow_accumulator_rejected(self):
        with pytest.raises(ConfigurationError):
            DAQuantisation(input_bits=12, coeff_frac_bits=8, accumulator_bits=16)

    def test_minimum_input_bits(self):
        with pytest.raises(ConfigurationError):
            DAQuantisation(input_bits=1)


class TestLookupTable:
    def test_depth_is_two_to_the_inputs(self):
        lut = DALookupTable([0.5, -0.25, 0.75])
        assert lut.depth_words == 8

    def test_word_zero_is_zero(self):
        lut = DALookupTable([0.5, -0.25, 0.75])
        assert lut.read(0) == 0

    def test_word_contents_are_partial_sums(self):
        q = DAQuantisation(input_bits=8, coeff_frac_bits=4, accumulator_bits=24)
        lut = DALookupTable([0.5, 0.25], q)
        # address 0b11 selects both coefficients: (0.5 + 0.25) * 16 = 12.
        assert lut.read(3) == 12

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            DALookupTable([])

    def test_dot_matches_float_dot_product(self, rng):
        coefficients = rng.normal(scale=0.4, size=8)
        lut = DALookupTable(coefficients, DAQuantisation(input_bits=12))
        inputs = rng.integers(-2048, 2048, 8)
        expected = float(np.dot(coefficients, inputs))
        tolerance = 8 * 2048 * lut.quantisation.output_scale  # worst-case rounding
        assert abs(lut.dot_float(inputs) - expected) <= tolerance

    def test_dot_handles_negative_inputs_exactly_with_exact_coefficients(self):
        # Coefficients representable exactly in the fixed-point LUT make the
        # DA result exact, which isolates the sign handling of the MSB.
        q = DAQuantisation(input_bits=8, coeff_frac_bits=4, accumulator_bits=24)
        lut = DALookupTable([0.5, -0.25], q)
        assert lut.dot_float([-4, 8]) == pytest.approx(0.5 * -4 + -0.25 * 8)

    def test_input_count_mismatch_rejected(self):
        lut = DALookupTable([0.5, 0.5])
        with pytest.raises(ConfigurationError):
            lut.dot([1, 2, 3])

    def test_one_shot_helper(self):
        assert da_dot_product([1.0], [5],
                              DAQuantisation(input_bits=8)) == pytest.approx(5.0)


class TestDAChannel:
    def test_channel_matches_lookup_table(self, rng):
        coefficients = rng.normal(scale=0.4, size=4)
        quantisation = DAQuantisation(input_bits=10)
        channel = DAChannel(coefficients, quantisation)
        lut = DALookupTable(coefficients, quantisation)
        inputs = rng.integers(-512, 512, 4)
        assert channel.compute(inputs) == lut.dot(inputs)

    def test_channel_accumulates_activity(self):
        channel = DAChannel([0.5, -0.5], DAQuantisation(input_bits=8))
        channel.compute([100, -100])
        assert channel.total_toggles() > 0

    def test_cycles_per_transform_equals_input_bits(self):
        channel = DAChannel([0.5, -0.5], DAQuantisation(input_bits=10))
        assert channel.cycles_per_transform == 10

    def test_wrong_input_count_rejected(self):
        channel = DAChannel([0.5, -0.5])
        with pytest.raises(ConfigurationError):
            channel.compute([1, 2, 3])
