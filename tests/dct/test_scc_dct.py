"""Tests of the skew-circular-convolution DCT implementations (Figs. 8/9)."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.mixed_rom import odd_matrix
from repro.dct.reference import dct_1d
from repro.dct.scc_dct import (
    FIG8_ROM_WORDS,
    FIG9_ROM_WORDS,
    SCCDirectDCT,
    SCCEvenOddDCT,
    convolution_kernel,
    generator_exponents,
    odd_scc_matrix,
)


class TestNumberTheory:
    def test_generator_exponents_for_8_point(self):
        exponents = generator_exponents(8)
        assert exponents[1] == 0
        assert exponents[3] == 1
        assert exponents[5] == 3
        assert exponents[7] == 6

    def test_every_odd_index_has_an_exponent(self):
        exponents = generator_exponents(8)
        for odd in (1, 3, 5, 7, 9, 11, 13, 15):
            assert odd in exponents

    def test_kernel_values_are_cosines_of_power_of_three_angles(self):
        kernel = convolution_kernel(8)
        assert kernel[0] == pytest.approx(np.cos(np.pi / 16))
        assert kernel[1] == pytest.approx(np.cos(3 * np.pi / 16))
        assert kernel[4] == pytest.approx(np.cos(17 * np.pi / 16))

    def test_scc_odd_matrix_equals_direct_odd_matrix(self):
        # The reordered-kernel construction must produce numerically the
        # same odd-output matrix as the direct definition — this is the
        # heart of Li's algorithm.
        assert np.allclose(odd_scc_matrix(8), odd_matrix(8))


class TestEvenOddImplementation:
    @pytest.fixture(scope="class")
    def transform(self) -> SCCEvenOddDCT:
        return SCCEvenOddDCT()

    def test_matches_reference(self, transform, rng):
        for _ in range(20):
            x = rng.integers(-2048, 2048, 8)
            error = np.max(np.abs(transform.forward(x) - dct_1d(x)))
            assert error <= 8 * 4096 * transform.quantisation.output_scale + 1.0

    def test_netlist_matches_table1_column(self, transform):
        row = transform.build_netlist().cluster_usage().as_table_row()
        assert row == PAPER_TABLE1["scc_even_odd"]

    def test_roms_are_16_words(self, transform):
        for node in transform.build_netlist().nodes_of_kind(ClusterKind.MEMORY):
            assert node.depth_words == FIG8_ROM_WORDS

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            SCCEvenOddDCT(size=5)


class TestDirectImplementation:
    @pytest.fixture(scope="class")
    def transform(self) -> SCCDirectDCT:
        return SCCDirectDCT()

    def test_matches_reference(self, transform, rng):
        for _ in range(20):
            x = rng.integers(-2048, 2048, 8)
            error = np.max(np.abs(transform.forward(x) - dct_1d(x)))
            assert error <= 8 * 2048 * transform.quantisation.output_scale + 1.0

    def test_netlist_matches_table1_column(self, transform):
        row = transform.build_netlist().cluster_usage().as_table_row()
        assert row == PAPER_TABLE1["scc_direct"]

    def test_no_input_adders_or_subtracters(self, transform):
        usage = transform.build_netlist().cluster_usage()
        assert usage.adders == 0
        assert usage.subtracters == 0

    def test_roms_are_16_times_larger_than_even_odd(self, transform):
        for node in transform.build_netlist().nodes_of_kind(ClusterKind.MEMORY):
            assert node.depth_words == FIG9_ROM_WORDS
        assert FIG9_ROM_WORDS == 16 * FIG8_ROM_WORDS

    def test_no_butterfly_cycle_in_latency(self, transform):
        even_odd = SCCEvenOddDCT()
        assert transform.cycles_per_transform < even_odd.cycles_per_transform


class TestCrossImplementationAgreement:
    def test_fig8_and_fig9_agree_on_the_same_block(self, rng):
        even_odd = SCCEvenOddDCT()
        direct = SCCDirectDCT()
        x = rng.integers(0, 256, 8)
        assert np.max(np.abs(even_odd.forward(x) - direct.forward(x))) <= 4.0
