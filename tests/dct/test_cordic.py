"""Tests of the CORDIC rotator primitive."""

import math

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.dct.cordic import (
    CordicRotator,
    cordic_gain,
    micro_rotation_angles,
)


class TestConstants:
    def test_gain_converges_near_1_647(self):
        assert cordic_gain(16) == pytest.approx(1.6468, abs=1e-3)

    def test_gain_is_monotone_in_iterations(self):
        assert cordic_gain(4) < cordic_gain(8) <= cordic_gain(16) * (1 + 1e-9)

    def test_angle_rom_is_arctan_powers_of_two(self):
        angles = micro_rotation_angles(4)
        assert angles[0] == pytest.approx(math.pi / 4)
        assert angles[1] == pytest.approx(math.atan(0.5))
        assert len(angles) == 4


class TestRotation:
    @pytest.mark.parametrize("angle", [math.pi / 4, math.pi / 8, math.pi / 16,
                                       3 * math.pi / 16, 0.1, -0.3])
    def test_rotation_matches_ideal_within_precision(self, angle, rng):
        rotator = CordicRotator(angle, iterations=14, frac_bits=14)
        for _ in range(10):
            p, q = rng.integers(-2000, 2000, 2)
            got = rotator.rotate(float(p), float(q))
            want = rotator.rotate_exact(float(p), float(q))
            assert abs(got[0] - want[0]) <= 1.0
            assert abs(got[1] - want[1]) <= 1.0

    def test_gain_compensation_preserves_magnitude(self):
        rotator = CordicRotator(math.pi / 8, iterations=14, frac_bits=14)
        x, y = rotator.rotate(1000.0, 0.0)
        assert math.hypot(x, y) == pytest.approx(1000.0, rel=5e-3)

    def test_uncompensated_rotation_carries_the_gain(self):
        rotator = CordicRotator(math.pi / 8, iterations=12, frac_bits=14,
                                compensate_gain=False)
        x, y = rotator.rotate(1000.0, 0.0)
        assert math.hypot(x, y) == pytest.approx(1000.0 * rotator.gain, rel=5e-3)
        assert rotator.output_scale == pytest.approx(rotator.gain)

    def test_extra_scale_is_applied(self):
        rotator = CordicRotator(0.0, iterations=12, frac_bits=14,
                                extra_scale=math.sqrt(2.0))
        x, _ = rotator.rotate(100.0, 0.0)
        assert x == pytest.approx(100.0 * math.sqrt(2.0), rel=5e-3)

    def test_zero_angle_is_identity(self):
        rotator = CordicRotator(0.0, iterations=14, frac_bits=14)
        x, y = rotator.rotate(123.0, -45.0)
        assert x == pytest.approx(123.0, abs=0.5)
        assert y == pytest.approx(-45.0, abs=0.5)

    def test_more_iterations_reduce_error(self):
        angle = math.pi / 8
        coarse = CordicRotator(angle, iterations=6, frac_bits=14)
        fine = CordicRotator(angle, iterations=16, frac_bits=14)
        p, q = 1500.0, -700.0
        exact = coarse.rotate_exact(p, q)
        coarse_err = abs(coarse.rotate(p, q)[0] - exact[0])
        fine_err = abs(fine.rotate(p, q)[0] - exact[0])
        assert fine_err <= coarse_err + 1e-6


class TestValidation:
    def test_rejects_angles_beyond_convergence_range(self):
        with pytest.raises(ConfigurationError):
            CordicRotator(2.0)

    def test_rejects_non_positive_iterations(self):
        with pytest.raises(ConfigurationError):
            CordicRotator(0.1, iterations=0)

    def test_rejects_non_positive_frac_bits(self):
        with pytest.raises(ConfigurationError):
            CordicRotator(0.1, frac_bits=0)

    def test_resource_constants_match_paper(self):
        # One rotator = two shift-accumulators + two small ROMs on the array,
        # with the paper's "fix size of 4 words" angle ROM.
        assert CordicRotator.SHIFT_ACC_CLUSTERS == 2
        assert CordicRotator.MEMORY_CLUSTERS == 2
        assert CordicRotator.ROM_WORDS == 4
