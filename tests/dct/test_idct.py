"""Tests of the inverse-DCT implementations (decoder path)."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.idct import DistributedArithmeticIDCT, MixedRomIDCT
from repro.dct.reference import dct_1d, dct_2d, idct_1d


@pytest.fixture(scope="module", params=[DistributedArithmeticIDCT, MixedRomIDCT])
def inverse_transform(request):
    return request.param()


def error_bound(transform, magnitude: float) -> float:
    return 8 * magnitude * transform.quantisation.output_scale + 1.0


class TestAccuracy:
    def test_inverse_matches_reference_on_random_coefficients(self, inverse_transform, rng):
        for _ in range(10):
            coefficients = np.rint(dct_1d(rng.integers(-255, 256, 8)))
            expected = idct_1d(coefficients)
            got = inverse_transform.inverse(coefficients)
            assert np.max(np.abs(got - expected)) <= error_bound(inverse_transform, 2048)

    def test_forward_then_inverse_recovers_pixels(self, inverse_transform, rng):
        block = rng.integers(0, 256, (8, 8))
        coefficients = np.rint(dct_2d(block))
        reconstructed = inverse_transform.inverse_2d(coefficients)
        # Two quantised passes: allow a loose but non-trivial bound.
        assert np.max(np.abs(reconstructed - block)) <= 16.0

    def test_dc_only_coefficients_give_flat_block(self, inverse_transform):
        coefficients = np.zeros(8)
        coefficients[0] = 800.0 / np.sqrt(8)   # DC of a flat 100-level row
        samples = inverse_transform.inverse(coefficients)
        assert np.allclose(samples, samples[0], atol=2.0)

    def test_zero_coefficients_give_zero_samples(self, inverse_transform):
        assert np.allclose(inverse_transform.inverse(np.zeros(8)), 0.0, atol=1e-9)

    def test_wrong_length_rejected(self, inverse_transform):
        with pytest.raises(ValueError):
            inverse_transform.inverse(np.zeros(7))
        with pytest.raises(ValueError):
            inverse_transform.inverse_2d(np.zeros((4, 8)))


class TestStructure:
    def test_da_idct_netlist_mirrors_fig4(self):
        netlist = DistributedArithmeticIDCT().build_netlist()
        usage = netlist.cluster_usage()
        assert usage.shift_registers == 8
        assert usage.accumulators == 8
        assert usage.memory_clusters == 8
        assert usage.adders == 0 and usage.subtracters == 0

    def test_mixed_rom_idct_uses_output_butterfly(self):
        netlist = MixedRomIDCT().build_netlist()
        usage = netlist.cluster_usage()
        assert usage.adders == 4 and usage.subtracters == 4
        assert usage.memory_clusters == 8
        # Small ROMs: 16 words for the 4-input halves.
        for node in netlist.nodes_of_kind(ClusterKind.MEMORY):
            assert node.depth_words == 16

    def test_mixed_rom_idct_is_smaller_in_memory_than_da_idct(self):
        from repro.core.metrics import memory_bits
        assert (memory_bits(MixedRomIDCT().build_netlist())
                < memory_bits(DistributedArithmeticIDCT().build_netlist()))

    def test_odd_size_rejected_for_mixed_rom(self):
        with pytest.raises(ValueError):
            MixedRomIDCT(size=5)

    def test_cycles_per_transform(self):
        assert DistributedArithmeticIDCT().cycles_per_transform == 12
        assert MixedRomIDCT().cycles_per_transform == 13
