"""Tests of the Mixed-ROM (4x4 matrix) DCT (Fig. 5)."""

import numpy as np
import pytest

from repro.core.clusters import ClusterKind
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.mixed_rom import FIG5_ROM_WORDS, MixedRomDCT, even_matrix, odd_matrix
from repro.dct.reference import dct_1d, dct_matrix


@pytest.fixture(scope="module")
def transform() -> MixedRomDCT:
    return MixedRomDCT()


class TestDecomposition:
    def test_even_odd_matrices_rebuild_the_full_matrix(self):
        full = dct_matrix(8)
        even = even_matrix(8)
        odd = odd_matrix(8)
        # Even rows act on x_i + x_{7-i}: full[2k, i] == even[k, i] for i < 4
        # and mirrored for i >= 4.
        for k in range(4):
            assert np.allclose(full[2 * k, :4], even[k])
            assert np.allclose(full[2 * k, 4:], even[k][::-1])
            assert np.allclose(full[2 * k + 1, :4], odd[k])
            assert np.allclose(full[2 * k + 1, 4:], -odd[k][::-1])

    def test_matrices_are_4x4(self):
        assert even_matrix().shape == (4, 4)
        assert odd_matrix().shape == (4, 4)


class TestAccuracy:
    def test_matches_reference_on_random_vectors(self, transform, rng):
        for _ in range(20):
            x = rng.integers(-2048, 2048, 8)
            error = np.max(np.abs(transform.forward(x) - dct_1d(x)))
            assert error <= 8 * 4096 * transform.quantisation.output_scale + 1.0

    def test_matches_plain_da_implementation(self, transform, rng):
        from repro.dct.da_dct import DistributedArithmeticDCT
        plain = DistributedArithmeticDCT()
        x = rng.integers(0, 256, 8)
        assert np.max(np.abs(transform.forward(x) - plain.forward(x))) <= 4.0

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            MixedRomDCT(size=7)

    def test_wrong_length_rejected(self, transform):
        with pytest.raises(ValueError):
            transform.forward([0] * 9)


class TestStructure:
    def test_netlist_matches_table1_column(self, transform):
        row = transform.build_netlist().cluster_usage().as_table_row()
        assert row == PAPER_TABLE1["mixed_rom"]

    def test_roms_are_16_words(self, transform):
        netlist = transform.build_netlist()
        for node in netlist.nodes_of_kind(ClusterKind.MEMORY):
            assert node.depth_words == FIG5_ROM_WORDS

    def test_rom_reduction_versus_fig4_is_16x(self, transform):
        from repro.dct.da_dct import FIG4_ROM_WORDS
        assert FIG4_ROM_WORDS // FIG5_ROM_WORDS == 16

    def test_butterfly_needs_one_extra_cycle(self, transform):
        assert transform.cycles_per_transform == transform.quantisation.input_bits + 1
