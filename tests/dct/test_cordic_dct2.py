"""Tests of the scaled CORDIC DCT implementation #2 (Fig. 7)."""

import numpy as np
import pytest

from repro.dct.cordic_dct2 import CordicDCT2
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.quantization import fold_scale_factors, quantisation_matrix, quantise, quantise_with_matrix
from repro.dct.reference import dct_1d, dct_2d


@pytest.fixture(scope="module")
def transform() -> CordicDCT2:
    return CordicDCT2()


class TestAccuracy:
    def test_normalised_output_matches_reference(self, transform, rng):
        for _ in range(20):
            x = rng.integers(-2048, 2048, 8)
            error = np.max(np.abs(transform.forward_normalised(x) - dct_1d(x)))
            assert error <= 1.5

    def test_raw_output_is_scaled_not_normalised(self, transform, rng):
        x = rng.integers(-255, 256, 8)
        raw = transform.forward(x)
        reference = dct_1d(x)
        assert not np.allclose(raw, reference, atol=1.0)
        assert np.allclose(raw * transform.scale_factors, reference, atol=1.5)

    def test_scale_factors_absorb_into_quantiser(self, transform, rng):
        # Quantising the scaled coefficients with a folded step matrix gives
        # the same levels as quantising the true coefficients — the paper's
        # "combined with the quantization constants" argument, here for a
        # 1-D row of coefficients.
        x = rng.integers(0, 256, 8)
        true_row = dct_1d(x)
        scaled_row = transform.forward(x)
        steps = np.full(8, 16.0)
        folded = steps / transform.scale_factors
        levels_true = np.trunc(true_row / steps)
        levels_scaled = np.trunc(scaled_row / folded)
        assert np.array_equal(levels_true, levels_scaled)

    def test_forward_2d_matches_reference(self, transform, rng):
        block = rng.integers(0, 256, (8, 8))
        assert np.max(np.abs(transform.forward_2d(block) - dct_2d(block))) <= 2.5

    def test_only_8_point_supported(self):
        with pytest.raises(ValueError):
            CordicDCT2(size=4)


class TestStructure:
    def test_declared_rotator_and_butterfly_counts(self, transform):
        assert transform.rotator_count == 3
        assert transform.butterfly_adder_count == 20

    def test_differences_from_cordic1_match_paper(self, transform):
        # Sec. 3.4: "Uses 20 butterfly adders instead of 16" and "3 CORDIC
        # rotators instead of 6".
        from repro.dct.cordic_dct1 import CordicDCT1
        first = CordicDCT1()
        assert transform.butterfly_adder_count == first.butterfly_adder_count + 4
        assert transform.rotator_count == first.rotator_count // 2

    def test_netlist_matches_table1_column(self, transform):
        row = transform.build_netlist().cluster_usage().as_table_row()
        assert row == PAPER_TABLE1["cordic_2"]

    def test_time_shared_rotators_cost_extra_latency(self, transform):
        from repro.dct.cordic_dct1 import CordicDCT1
        assert transform.cycles_per_transform > CordicDCT1().cycles_per_transform
