"""Tests of the CORDIC DCT implementation #1 (Fig. 6)."""

import numpy as np
import pytest

from repro.dct.cordic_dct1 import CordicDCT1
from repro.dct.mapping import PAPER_TABLE1
from repro.dct.reference import dct_1d, dct_2d


@pytest.fixture(scope="module")
def transform() -> CordicDCT1:
    return CordicDCT1()


class TestAccuracy:
    def test_matches_reference_on_random_vectors(self, transform, rng):
        for _ in range(20):
            x = rng.integers(-2048, 2048, 8)
            assert np.max(np.abs(transform.forward(x) - dct_1d(x))) <= 1.5

    def test_matches_reference_on_pixel_blocks(self, transform, rng):
        block = rng.integers(0, 256, (8, 8))
        assert np.max(np.abs(transform.forward_2d(block) - dct_2d(block))) <= 2.5

    def test_more_accurate_than_the_da_implementations(self, transform, rng):
        # The CORDIC datapath carries more fractional bits than the 6-bit DA
        # LUTs, so its error on the same inputs should be smaller.
        from repro.dct.da_dct import DistributedArithmeticDCT
        da = DistributedArithmeticDCT()
        worst_cordic, worst_da = 0.0, 0.0
        for _ in range(10):
            x = rng.integers(-2048, 2048, 8)
            reference = dct_1d(x)
            worst_cordic = max(worst_cordic,
                               float(np.max(np.abs(transform.forward(x) - reference))))
            worst_da = max(worst_da,
                           float(np.max(np.abs(da.forward(x) - reference))))
        assert worst_cordic < worst_da

    def test_dc_of_constant_input(self, transform):
        outputs = transform.forward([50] * 8)
        assert outputs[0] == pytest.approx(50 * 8 / np.sqrt(8), rel=0.01)

    def test_wrong_length_rejected(self, transform):
        with pytest.raises(ValueError):
            transform.forward([0] * 5)

    def test_only_8_point_supported(self):
        with pytest.raises(ValueError):
            CordicDCT1(size=16)


class TestStructure:
    def test_declared_rotator_and_butterfly_counts(self, transform):
        assert transform.rotator_count == 6
        assert transform.butterfly_adder_count == 16

    def test_netlist_matches_table1_column(self, transform):
        row = transform.build_netlist().cluster_usage().as_table_row()
        assert row == PAPER_TABLE1["cordic_1"]

    def test_rotator_roms_are_small_and_fixed(self, transform):
        from repro.core.clusters import ClusterKind
        netlist = transform.build_netlist()
        for node in netlist.nodes_of_kind(ClusterKind.MEMORY):
            assert node.depth_words == 4

    def test_latency_grows_with_iterations(self):
        fast = CordicDCT1(iterations=8)
        slow = CordicDCT1(iterations=16)
        assert slow.cycles_per_transform > fast.cycles_per_transform
