"""Tests that the mapping flow regenerates Table 1 of the paper."""

import pytest

from repro.arrays.da_array import build_da_array
from repro.dct.mapping import (
    PAPER_TABLE1,
    TABLE1_ORDER,
    dct_implementations,
    generate_table1,
    map_implementation,
    table1_as_rows,
)


@pytest.fixture(scope="module")
def table1():
    # Exercises the deprecated shim on purpose (internal code goes through
    # repro.flow.compile_many); the warning is expected.
    with pytest.warns(DeprecationWarning):
        return generate_table1()


class TestTable1:
    def test_all_five_implementations_present(self, table1):
        assert set(table1) == set(TABLE1_ORDER)

    @pytest.mark.parametrize("name", list(TABLE1_ORDER))
    def test_every_row_matches_the_paper(self, table1, name):
        assert table1[name].table_row() == PAPER_TABLE1[name]

    def test_cordic1_is_the_largest_implementation(self, table1):
        totals = {name: mapped.usage.total_clusters for name, mapped in table1.items()}
        assert max(totals, key=totals.get) == "cordic_1"

    def test_scc_direct_is_the_smallest_implementation(self, table1):
        totals = {name: mapped.usage.total_clusters for name, mapped in table1.items()}
        assert min(totals, key=totals.get) == "scc_direct"

    def test_every_implementation_places_and_routes_on_the_default_array(self, table1):
        for mapped in table1.values():
            assert mapped.placement is not None
            assert mapped.routing is not None
            assert len(mapped.placement) == len(mapped.netlist)

    def test_rows_are_formatted_in_paper_order(self, table1):
        rows = table1_as_rows(table1)
        assert [row["implementation"] for row in rows] == [
            "MIX ROM", "CORDIC 1", "CORDIC 2", "SCC EVEN/ODD", "SCC"]

    def test_memory_bits_differ_even_when_cluster_counts_match(self, table1):
        # MIX ROM and SCC EVEN/ODD both use 32 clusters but Fig. 9's larger
        # ROMs mean SCC direct carries more memory bits per cluster; the
        # metrics model must see through the cluster count.
        assert (table1["scc_direct"].metrics.memory_bits
                > table1["scc_even_odd"].metrics.memory_bits)

    def test_plain_da_variant_available_on_request(self):
        implementations = dct_implementations(include_plain_da=True)
        names = [impl.name for impl in implementations]
        assert "da_simple" in names

    def test_mapping_without_place_and_route_still_counts_clusters(self):
        implementation = dct_implementations()[0]
        with pytest.warns(DeprecationWarning):
            mapped = map_implementation(implementation, build_da_array(),
                                        run_place_and_route=False)
        assert mapped.placement is None
        assert mapped.table_row() == PAPER_TABLE1[implementation.name]
