"""Tests of the quantiser and the scale-factor folding."""

import numpy as np
import pytest

from repro.dct.cordic_dct2 import CordicDCT2
from repro.dct.quantization import (
    dequantise,
    fold_scale_factors,
    quantisation_matrix,
    quantise,
    quantise_with_matrix,
)
from repro.dct.reference import dct_2d, idct_2d


class TestUniformQuantiser:
    def test_round_trip_error_bounded_by_step(self, rng):
        coefficients = rng.normal(scale=200, size=(8, 8))
        qp = 6
        reconstructed = dequantise(quantise(coefficients, qp), qp)
        # AC coefficients reconstruct within one quantiser step.
        assert np.max(np.abs(reconstructed - coefficients)[1:, 1:]) <= 2 * qp + 1

    def test_zero_levels_reconstruct_to_zero(self):
        levels = quantise(np.full((8, 8), 0.4), qp=8)
        assert np.all(dequantise(levels, qp=8)[1:, 1:] == 0)

    def test_higher_qp_gives_coarser_levels(self, rng):
        coefficients = rng.normal(scale=300, size=(8, 8))
        fine = np.count_nonzero(quantise(coefficients, qp=2))
        coarse = np.count_nonzero(quantise(coefficients, qp=20))
        assert coarse <= fine

    def test_invalid_qp_rejected(self):
        with pytest.raises(ValueError):
            quantise(np.zeros((8, 8)), qp=0)
        with pytest.raises(ValueError):
            dequantise(np.zeros((8, 8)), qp=40)

    def test_intra_dc_uses_fixed_step(self):
        coefficients = np.zeros((8, 8))
        coefficients[0, 0] = 80.0
        levels = quantise(coefficients, qp=20, intra_dc_step=8)
        assert levels[0, 0] == 10


class TestScaleFactorFolding:
    def test_folded_steps_quantise_scaled_coefficients_identically(self, rng):
        transform = CordicDCT2()
        block = rng.integers(0, 256, (8, 8)).astype(float)
        true_coefficients = dct_2d(block)
        scales = transform.scale_factors
        # Scaled coefficients as the hardware would produce them: divide the
        # true ones by the row/column scale product.
        scaled = true_coefficients / np.outer(scales, scales)
        steps = quantisation_matrix(qp=8)
        folded = fold_scale_factors(steps, scales)
        assert np.array_equal(quantise_with_matrix(true_coefficients, steps),
                              quantise_with_matrix(scaled, folded))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fold_scale_factors(np.ones((8, 8)), np.ones(4))
        with pytest.raises(ValueError):
            quantise_with_matrix(np.ones((8, 8)), np.ones((4, 4)))

    def test_quantisation_matrix_dc_entry(self):
        steps = quantisation_matrix(qp=10, intra_dc_step=8)
        assert steps[0, 0] == 8
        assert steps[3, 3] == 20


class TestEndToEndCoding:
    def test_quantised_reconstruction_quality_improves_with_lower_qp(self, rng):
        block = rng.integers(0, 256, (8, 8)).astype(float)
        coefficients = dct_2d(block)
        errors = []
        for qp in (2, 16):
            reconstructed = idct_2d(dequantise(quantise(coefficients, qp), qp))
            errors.append(float(np.mean((block - reconstructed) ** 2)))
        assert errors[0] < errors[1]
