"""Tests of the quantiser and the scale-factor folding."""

import numpy as np
import pytest

from repro.dct.cordic_dct2 import CordicDCT2
from repro.dct.quantization import (
    MAX_QP,
    MIN_QP,
    dequantise,
    fold_scale_factors,
    quantisation_matrix,
    quantise,
    quantise_with_matrix,
)
from repro.dct.reference import dct_2d, idct_2d


class TestUniformQuantiser:
    def test_round_trip_error_bounded_by_step(self, rng):
        coefficients = rng.normal(scale=200, size=(8, 8))
        qp = 6
        reconstructed = dequantise(quantise(coefficients, qp), qp)
        # AC coefficients reconstruct within one quantiser step.
        assert np.max(np.abs(reconstructed - coefficients)[1:, 1:]) <= 2 * qp + 1

    def test_zero_levels_reconstruct_to_zero(self):
        levels = quantise(np.full((8, 8), 0.4), qp=8)
        assert np.all(dequantise(levels, qp=8)[1:, 1:] == 0)

    def test_higher_qp_gives_coarser_levels(self, rng):
        coefficients = rng.normal(scale=300, size=(8, 8))
        fine = np.count_nonzero(quantise(coefficients, qp=2))
        coarse = np.count_nonzero(quantise(coefficients, qp=20))
        assert coarse <= fine

    def test_invalid_qp_rejected(self):
        with pytest.raises(ValueError):
            quantise(np.zeros((8, 8)), qp=0)
        with pytest.raises(ValueError):
            dequantise(np.zeros((8, 8)), qp=40)

    def test_intra_dc_uses_fixed_step(self):
        coefficients = np.zeros((8, 8))
        coefficients[0, 0] = 80.0
        levels = quantise(coefficients, qp=20, intra_dc_step=8)
        assert levels[0, 0] == 10


class TestScaleFactorFolding:
    def test_folded_steps_quantise_scaled_coefficients_identically(self, rng):
        transform = CordicDCT2()
        block = rng.integers(0, 256, (8, 8)).astype(float)
        true_coefficients = dct_2d(block)
        scales = transform.scale_factors
        # Scaled coefficients as the hardware would produce them: divide the
        # true ones by the row/column scale product.
        scaled = true_coefficients / np.outer(scales, scales)
        steps = quantisation_matrix(qp=8)
        folded = fold_scale_factors(steps, scales)
        assert np.array_equal(quantise_with_matrix(true_coefficients, steps),
                              quantise_with_matrix(scaled, folded))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fold_scale_factors(np.ones((8, 8)), np.ones(4))
        with pytest.raises(ValueError):
            quantise_with_matrix(np.ones((8, 8)), np.ones((4, 4)))

    def test_quantisation_matrix_dc_entry(self):
        steps = quantisation_matrix(qp=10, intra_dc_step=8)
        assert steps[0, 0] == 8
        assert steps[3, 3] == 20


class TestEndToEndCoding:
    def test_quantised_reconstruction_quality_improves_with_lower_qp(self, rng):
        block = rng.integers(0, 256, (8, 8)).astype(float)
        coefficients = dct_2d(block)
        errors = []
        for qp in (2, 16):
            reconstructed = idct_2d(dequantise(quantise(coefficients, qp), qp))
            errors.append(float(np.mean((block - reconstructed) ** 2)))
        assert errors[0] < errors[1]


class TestQuantiserEdgeCases:
    """Regression tests for QP bounds, degenerate blocks and bad shapes."""

    @pytest.mark.parametrize("qp", [MIN_QP, MAX_QP])
    def test_qp_bounds_round_trip(self, rng, qp):
        coefficients = rng.normal(scale=400, size=(8, 8))
        reconstructed = dequantise(quantise(coefficients, qp), qp)
        # Mid-rise reconstruction stays within one step of the input.
        assert np.max(np.abs(reconstructed
                             - coefficients)[1:, 1:]) <= 2 * qp + 1

    @pytest.mark.parametrize("qp", [0, MAX_QP + 1, -3])
    def test_out_of_range_qp_rejected(self, qp):
        with pytest.raises(ValueError):
            quantise(np.zeros((8, 8)), qp)
        with pytest.raises(ValueError):
            dequantise(np.zeros((8, 8)), qp)

    def test_all_zero_block_round_trips_to_zero(self):
        for qp in (MIN_QP, 8, MAX_QP):
            levels = quantise(np.zeros((8, 8)), qp)
            assert not levels.any()
            assert not dequantise(levels, qp).any()

    @pytest.mark.parametrize("value", [32767, -32768])
    def test_saturating_int16_blocks(self, value):
        """int16-saturating coefficients survive the coarsest quantiser."""
        coefficients = np.full((8, 8), float(value))
        levels = quantise(coefficients, MAX_QP)
        reconstructed = dequantise(levels, MAX_QP)
        assert np.max(np.abs(reconstructed
                             - coefficients)[1:, 1:]) <= 2 * MAX_QP + 1
        # The batched path agrees on the same extreme input.
        batch = np.stack([coefficients, coefficients])
        assert np.array_equal(quantise(batch, MAX_QP)[0], levels)

    def test_saturating_pixel_block_round_trip_clipping(self):
        """A saturated pixel block decodes back inside [0, 255]."""
        block = np.full((8, 8), 255.0)
        coefficients = dct_2d(block)
        decoded = idct_2d(dequantise(quantise(coefficients, 8), 8))
        clipped = np.clip(np.rint(decoded), 0, 255)
        assert clipped.min() >= 0 and clipped.max() <= 255
        assert np.abs(clipped - block).max() <= 8

    @pytest.mark.parametrize("shape", [(64,), (2, 2, 8, 8), ()])
    def test_unsupported_shapes_rejected(self, shape):
        # These used to pass through silently with the DC rule skipped.
        with pytest.raises(ValueError):
            quantise(np.zeros(shape), 8)
        with pytest.raises(ValueError):
            dequantise(np.zeros(shape), 8)

    def test_empty_batch_round_trips(self):
        levels = quantise(np.zeros((0, 8, 8)), 8)
        assert levels.shape == (0, 8, 8)
        assert dequantise(levels, 8).shape == (0, 8, 8)

    def test_dc_rounding_matches_between_scalar_and_batch(self):
        # Half-integer DC ratios: both paths must round half to even.
        coefficients = np.zeros((8, 8))
        for dc in (12.0, -12.0, 20.0, -20.0):
            coefficients[0, 0] = dc       # dc / 8 = +-1.5, +-2.5
            scalar = quantise(coefficients, 8)[0, 0]
            batch = quantise(coefficients[None], 8)[0, 0, 0]
            assert scalar == batch
